//! Property-based end-to-end tests: for randomized frame sizes and rates
//! within the machine's feasible envelope, the compiled (buffered, aligned,
//! parallelized) applications stay bit-identical to their golden models.
//!
//! Seeded randomized sweeps (hermetic replacement for the original
//! `proptest` strategies; same parameter ranges, fixed seeds).

use bp_apps::{apps, reference};
use bp_compiler::{compile, CompileOptions};
use bp_core::{Dim2, Rng64};
use bp_sim::FunctionalExecutor;

/// The Fig. 1(b) pipeline matches its golden model at any feasible
/// size/rate, whatever parallelization the compiler chooses.
#[test]
fn fig1b_matches_golden_for_any_config() {
    let mut rng = Rng64::seed_from_u64(0xe2e1);
    for _ in 0..24 {
        let w = rng.gen_range_u32(10, 36);
        let h = rng.gen_range_u32(8, 24);
        let rate = rng.gen_range_f64(20.0, 220.0);
        let dim = Dim2::new(w, h);
        let app = apps::fig1b(dim, rate);
        let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
        let mut ex = FunctionalExecutor::new(&compiled.graph).unwrap();
        ex.run_frames(2).unwrap();
        assert_eq!(ex.residual_items(), 0);
        let frames = app.sinks[0].1.frames();
        assert_eq!(frames.len(), 2);
        for (f, counts) in frames.iter().enumerate() {
            let expected = reference::fig1b_expected(w, h, f as u32, 32, -128.0, 128.0);
            assert_eq!(counts, &expected, "frame {f} at {w}x{h} @ {rate:.0}Hz");
        }
    }
}

/// Histogram totals are conserved: however the compiler splits the
/// counting, every input sample lands in exactly one bin.
#[test]
fn histogram_conserves_samples() {
    let mut rng = Rng64::seed_from_u64(0xe2e2);
    for _ in 0..24 {
        let w = rng.gen_range_u32(6, 40);
        let h = rng.gen_range_u32(4, 30);
        let rate = rng.gen_range_f64(20.0, 400.0);
        let bins = rng.gen_range_u32(4, 64);
        let dim = Dim2::new(w, h);
        let app = apps::histogram_app(dim, rate, bins);
        let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
        let mut ex = FunctionalExecutor::new(&compiled.graph).unwrap();
        ex.run_frames(2).unwrap();
        for counts in app.sinks[0].1.frames() {
            let total: f64 = counts.iter().sum();
            assert_eq!(total, (w * h) as f64);
        }
    }
}

/// The multi-convolution pipeline equals repeated reference convolution
/// regardless of stage count (each stage re-buffers automatically).
#[test]
fn multi_conv_matches_iterated_reference() {
    let mut rng = Rng64::seed_from_u64(0xe2e3);
    for _ in 0..8 {
        let stages = rng.gen_index(4) + 1;
        let rate = rng.gen_range_f64(20.0, 120.0);
        let dim = Dim2::new(20, 14);
        let app = apps::multi_conv(dim, rate, stages);
        let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
        let mut ex = FunctionalExecutor::new(&compiled.graph).unwrap();
        ex.run_frames(1).unwrap();
        let k3: Vec<Vec<f64>> = {
            let w = bp_kernels::binomial_coefficients(3);
            (0..3)
                .map(|y| (0..3).map(|x| w.get(x, y)).collect())
                .collect()
        };
        let mut img = reference::pattern_frame(dim.w, dim.h, 0);
        for _ in 0..stages {
            img = reference::conv2d_valid(&img, &k3);
        }
        let expected: Vec<f64> = img.into_iter().flatten().collect();
        let got = &app.sinks[0].1.frames()[0];
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}

/// Compilation is deterministic: two runs yield identical structure.
#[test]
fn compilation_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xe2e4);
    for _ in 0..24 {
        let w = rng.gen_range_u32(10, 30);
        let h = rng.gen_range_u32(8, 20);
        let rate = rng.gen_range_f64(20.0, 200.0);
        let dim = Dim2::new(w, h);
        let a = compile(&apps::fig1b(dim, rate).graph, &CompileOptions::default()).unwrap();
        let b = compile(&apps::fig1b(dim, rate).graph, &CompileOptions::default()).unwrap();
        assert_eq!(a.report.census.nodes, b.report.census.nodes);
        assert_eq!(a.report.census.channels, b.report.census.channels);
        assert_eq!(a.mapping.pe_of_node, b.mapping.pe_of_node);
        assert_eq!(a.report.pes_used, b.report.pes_used);
    }
}
