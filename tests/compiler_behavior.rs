//! Integration tests for compiler-level behaviours that span passes:
//! pipeline dependency edges, policy effects, diagnostics on misaligned
//! graphs, and dot/report output.

use bp_apps::{apps, presets};
use bp_compiler::{compile, to_dot, AlignPolicy, CompileOptions, MappingKind};
use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, GraphBuilder, Window};
use bp_kernels as k;

/// An expensive per-pixel kernel, to force replication.
fn heavy(cycles: u64) -> KernelDef {
    struct H;
    impl KernelBehavior for H {
        fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", Window::scalar(d.window("in").as_scalar() + 1.0));
        }
    }
    KernelDef::new(
        KernelSpec::new("heavy")
            .input(InputSpec::stream("in"))
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::on_data(
                "run",
                "in",
                vec!["out".into()],
                MethodCost::new(cycles, 1),
            )),
        || H,
    )
}

#[test]
fn pipeline_dep_edges_cap_downstream_stages() {
    // A -> B pipeline where both would want many replicas; a dependency
    // edge from A to B caps B at A's replica count (§IV-B's pipeline
    // construction).
    let dim = Dim2::new(16, 8);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 100.0);
    let a = b.add("A", heavy(200)); // util ≈ 12800*200/950k ≈ 2.7 -> x3
    let bb = b.add("B", heavy(500)); // would want x7 alone
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", a, "in");
    b.connect(a, "out", bb, "in");
    b.connect(bb, "out", snk, "in");
    b.dep_edge(a, bb);
    let g = b.build().unwrap();

    let c = compile(&g, &CompileOptions::default()).unwrap();
    let pa = c.report.parallelize.plan_for("A").unwrap();
    let pb = c.report.parallelize.plan_for("B").unwrap();
    assert!(pa.granted >= 2);
    assert!(
        pb.desired >= pa.granted,
        "B wanted at least as many: {pb:?}"
    );
    assert_eq!(
        pb.granted, pa.granted,
        "dep edge must cap B to A's replica count"
    );
    assert_eq!(
        pb.reason,
        bp_compiler::ReplicaReason::DepEdgeCapped,
        "{pb:?}"
    );

    // And the capped pipeline still computes the right thing.
    let mut ex = bp_sim::FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(1).unwrap();
    let got = &h.frames()[0];
    for (i, v) in got.iter().enumerate() {
        let x = i as u32 % 16;
        let y = i as u32 / 16;
        assert_eq!(*v, bp_apps::reference::pattern_pixel(0, x, y) + 2.0);
    }
}

#[test]
fn trim_and_pad_policies_change_output_size() {
    let app_t = apps::fig1b(presets::SMALL, presets::SLOW);
    let c_t = compile(
        &app_t.graph,
        &CompileOptions {
            align: AlignPolicy::Trim,
            ..Default::default()
        },
    )
    .unwrap();
    let app_p = apps::fig1b(presets::SMALL, presets::SLOW);
    let c_p = compile(
        &app_p.graph,
        &CompileOptions {
            align: AlignPolicy::PadZero,
            ..Default::default()
        },
    )
    .unwrap();
    let mut ex = bp_sim::FunctionalExecutor::new(&c_t.graph).unwrap();
    ex.run_frames(1).unwrap();
    let mut ex = bp_sim::FunctionalExecutor::new(&c_p.graph).unwrap();
    ex.run_frames(1).unwrap();
    // Trim: 16x8 = 128 samples counted; PadZero: 18x10 = 180.
    let total_t: f64 = app_t.sinks[0].1.frames()[0].iter().sum();
    let total_p: f64 = app_p.sinks[0].1.frames()[0].iter().sum();
    assert_eq!(total_t, 128.0);
    assert_eq!(total_p, 180.0);
}

#[test]
fn mirror_pad_policy_compiles_and_runs() {
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let c = compile(
        &app.graph,
        &CompileOptions {
            align: AlignPolicy::PadMirror,
            ..Default::default()
        },
    )
    .unwrap();
    let mut ex = bp_sim::FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(2).unwrap();
    assert_eq!(ex.residual_items(), 0);
    for counts in app.sinks[0].1.frames() {
        let total: f64 = counts.iter().sum();
        assert_eq!(total, 180.0); // padded to 18x10 like PadZero
    }
}

#[test]
fn misaligned_graph_fails_strict_analysis_with_diagnostics() {
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let err = bp_compiler::analyze(&app.graph).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Subtract"), "{msg}");
    assert!(msg.contains("alignment pass"), "{msg}");
}

#[test]
fn dot_export_reflects_roles_and_replicated_edges() {
    let app = apps::fig1b(presets::SMALL, presets::FAST);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let dot = to_dot(&c.graph);
    assert!(
        dot.contains("parallelogram"),
        "buffers drawn as parallelograms"
    );
    assert!(dot.contains("diamond"), "split/join drawn as diamonds");
    assert!(dot.contains("invhouse"), "inset drawn as inverted house");
    assert!(dot.contains("style=dashed"), "replicated inputs dashed");
    assert!(dot.contains("style=dotted"), "dependency edges dotted");
}

#[test]
fn one_to_one_uses_one_pe_per_node() {
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let c = compile(
        &app.graph,
        &CompileOptions {
            mapping: MappingKind::OneToOne,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(c.mapping.num_pes, c.report.census.nodes);
}

#[test]
fn infeasible_serial_kernel_is_reported() {
    // A serial kernel that cannot keep up is flagged, not silently built.
    let dim = Dim2::new(16, 8);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 400.0);
    let hv = {
        let def = heavy(500);
        let mut spec = def.spec.clone();
        spec.parallelism = bp_core::Parallelism::Serial;
        KernelDef {
            spec,
            factory: def.factory,
        }
    };
    let hn = b.add("SerialHeavy", hv);
    let (sdef, _h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", hn, "in");
    b.connect(hn, "out", snk, "in");
    let g = b.build().unwrap();
    let c = compile(&g, &CompileOptions::default()).unwrap();
    assert!(c
        .report
        .parallelize
        .infeasible_serial
        .contains(&"SerialHeavy".to_string()));
}
