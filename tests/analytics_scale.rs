//! Scale test: the composite analytics pipeline compiled at a fast rate
//! crosses the "more than 50 kernels" size the paper quotes for its largest
//! benchmarks, stays bit-identical to the reference composition, and meets
//! its real-time constraint.

use bp_apps::{apps, reference};
use bp_compiler::{compile, CompileOptions};
use bp_core::Dim2;
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

fn expected_for(dim: Dim2, frame: u32) -> (Vec<f64>, Vec<f64>) {
    let img = reference::pattern_frame(dim.w, dim.h, frame);
    let den = reference::median_valid(&img, 3, 3);
    // Edge branch over the denoised image.
    let edges = reference::threshold_img(&reference::sobel_valid(&den), 20.0);
    let edge_hist = reference::histogram(&edges, &reference::uniform_uppers(16, 0.0, 2.0));
    // Texture branch: |den - smooth(den)| with trim alignment (den inset 1,
    // conv adds 2 -> trim den by 2).
    let box5 = vec![vec![1.0 / 25.0; 5]; 5];
    let smooth = reference::conv2d_valid(&den, &box5);
    let den_trim = reference::trim(&den, 2);
    let detail: reference::Image = den_trim
        .iter()
        .zip(&smooth)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()).collect())
        .collect();
    let detail_hist = reference::histogram(&detail, &reference::uniform_uppers(16, 0.0, 64.0));
    (edge_hist, detail_hist)
}

#[test]
fn analytics_pipeline_scales_past_fifty_kernels_and_matches_golden() {
    let dim = Dim2::new(32, 20);
    let app = apps::analytics(dim, 300.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    assert!(
        c.report.census.nodes > 50,
        "expected >50 kernels after compilation, got {}",
        c.report.census.nodes
    );

    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(2).unwrap();
    assert_eq!(ex.residual_items(), 0);

    for f in 0..2u32 {
        let (edge_expected, detail_expected) = expected_for(dim, f);
        assert_eq!(
            app.sinks[0].1.frames()[f as usize],
            edge_expected,
            "edge histogram frame {f}"
        );
        assert_eq!(
            app.sinks[1].1.frames()[f as usize],
            detail_expected,
            "detail histogram frame {f}"
        );
    }
}

#[test]
fn analytics_pipeline_meets_realtime() {
    let dim = Dim2::new(32, 20);
    let app = apps::analytics(dim, 300.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.verdict.met, "{:?}", report.verdict);
    assert!(report.token_rate_violations.is_empty());
    assert_eq!(report.total_budget_overruns(), 0);
}

#[test]
fn analytics_histogram_totals_are_conserved() {
    let dim = Dim2::new(24, 16);
    let app = apps::analytics(dim, 50.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(1).unwrap();
    // Edge histogram counts every sobel-threshold sample: (24-4)x(16-4).
    let edge_total: f64 = app.sinks[0].1.frames()[0].iter().sum();
    assert_eq!(edge_total, (20 * 12) as f64);
    // Detail histogram counts every |den - smooth| sample: (24-6)x(16-6).
    let detail_total: f64 = app.sinks[1].1.frames()[0].iter().sum();
    assert_eq!(detail_total, (18 * 10) as f64);
}
