//! Fingerprint-differential suite pinning the compiled (direct-threaded)
//! backend to the interpreted oracle (DESIGN.md §13).
//!
//! For every example application × comm model, the sequential interpreted
//! engine is the reference; the compiled backend — sequential and parallel
//! at 1, 2, 4, and 8 threads — must reproduce its `SimReport::fingerprint()`
//! and sink item streams bit for bit. Traces and structured
//! `Deadlocked(DeadlockReport)` outcomes are held to the same standard:
//! the backend switch may change *how fast* the simulator runs, never what
//! it computes, when, or how it diagnoses a wedge.

use bp_apps::{apps, App, SLOW, SMALL};
use bp_compiler::{compile, CompileOptions};
use bp_core::{CommModel, Dim2, Item};
use bp_sim::{
    Backend, ParallelTimedSimulator, SimConfig, SimOutcome, SimReport, TimedSimulator, TraceOptions,
};

const FRAMES: u32 = 2;

/// Every example application, by name (kept in sync with
/// `tests/determinism.rs` and `tests/comm_delay.rs`).
const EXAMPLE_APPS: &[&str] = &[
    "fig1b",
    "bayer",
    "histogram",
    "parallel_buffer",
    "multi_conv",
    "temporal_iir",
    "fir_radio",
    "edge_detect",
    "analytics",
    "stereo_diff",
    "camera_bank",
];

fn build_example(name: &str) -> App {
    match name {
        "fig1b" => apps::fig1b(SMALL, SLOW),
        "bayer" => apps::bayer(SMALL, SLOW),
        "histogram" => apps::histogram_app(SMALL, SLOW, 32),
        "parallel_buffer" => apps::parallel_buffer_test(Dim2::new(64, 12), 10.0),
        "multi_conv" => apps::multi_conv(SMALL, SLOW, 3),
        "temporal_iir" => apps::temporal_iir(SMALL, SLOW),
        "fir_radio" => apps::fir_radio(72, 100.0),
        "edge_detect" => apps::edge_detect(SMALL, SLOW, 0.5),
        "analytics" => apps::analytics(SMALL, SLOW),
        "stereo_diff" => apps::stereo_diff(SMALL, SLOW),
        "camera_bank" => apps::camera_bank(3, SMALL, SLOW),
        _ => unreachable!("unknown app {name}"),
    }
}

/// The three model shapes of `tests/comm_delay.rs`: direct delivery, a
/// uniform 64-cycle latency, and a distance-dependent grid.
fn models() -> Vec<(&'static str, CommModel)> {
    vec![
        ("zero", CommModel::zero()),
        ("uniform", CommModel::uniform(64e-9, 1e-9)),
        ("grid", CommModel::grid(32e-9, 8e-9, 1e-9)),
    ]
}

fn config_with(comm: &CommModel, backend: Backend) -> SimConfig {
    SimConfig::new(FRAMES)
        .with_comm(comm.clone())
        .with_backend(backend)
}

/// Run `name` under `comm` on the given backend — sequentially
/// (`threads = None`) or on the parallel engine — returning the report
/// result plus the sink item streams.
fn run(
    name: &str,
    comm: &CommModel,
    backend: Backend,
    threads: Option<usize>,
) -> (bp_core::Result<SimReport>, Vec<Vec<Item>>) {
    let app = build_example(name);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = config_with(comm, backend);
    let out = match threads {
        None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
            .expect("instantiate")
            .run(),
        Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
            .expect("instantiate")
            .run(),
    };
    let items = app.sinks.iter().map(|(_, h)| h.items()).collect();
    (out, items)
}

/// The tentpole guarantee: for every app × comm model, the compiled
/// backend's report fingerprint and sink items equal the interpreted
/// oracle's — sequentially and at 1, 2, 4, and 8 worker threads.
#[test]
fn compiled_matches_interpreted_everywhere() {
    for &name in EXAMPLE_APPS {
        for (mname, comm) in models() {
            let (oracle, oracle_items) = run(name, &comm, Backend::Interpreted, None);
            let check = |label: &str, got: &bp_core::Result<SimReport>, items: &Vec<Vec<Item>>| {
                match (&oracle, got) {
                    (Ok(o), Ok(c)) => assert_eq!(
                        o.fingerprint(),
                        c.fingerprint(),
                        "{name} under {mname} ({label}): compiled fingerprint diverged"
                    ),
                    (Err(oe), Err(ce)) => assert_eq!(
                        oe.to_string(),
                        ce.to_string(),
                        "{name} under {mname} ({label}): error diverged"
                    ),
                    _ => panic!(
                        "{name} under {mname} ({label}): outcomes diverged: \
                         oracle={oracle:?} compiled={got:?}"
                    ),
                }
                assert_eq!(
                    &oracle_items, items,
                    "{name} under {mname} ({label}): sink items diverged"
                );
            };
            let (seq, seq_items) = run(name, &comm, Backend::Compiled, None);
            check("sequential", &seq, &seq_items);
            for threads in [1usize, 2, 4, 8] {
                let (par, par_items) = run(name, &comm, Backend::Compiled, Some(threads));
                check(&format!("{threads} threads"), &par, &par_items);
            }
        }
    }
}

/// Trace equality: the compiled backend records the identical event
/// stream — firings, queue depths, tokens, comm events, and stall
/// attributions — not just the same aggregate report.
#[test]
fn compiled_traces_are_bitwise_identical() {
    for &name in ["fig1b", "temporal_iir", "camera_bank"].iter() {
        for (mname, comm) in models() {
            let trace_of = |backend: Backend| {
                let app = build_example(name);
                let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
                let config = config_with(&comm, backend).with_trace(TraceOptions::default());
                let (report, trace) =
                    TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
                        .expect("instantiate")
                        .run_with_trace()
                        .expect("runs");
                (report.fingerprint(), trace.expect("trace recorded"))
            };
            let (ofp, otrace) = trace_of(Backend::Interpreted);
            let (cfp, ctrace) = trace_of(Backend::Compiled);
            assert_eq!(ofp, cfp, "{name} under {mname}: fingerprint diverged");
            assert_eq!(
                otrace.dropped, ctrace.dropped,
                "{name} under {mname}: trace drop counts diverged"
            );
            assert_eq!(
                otrace.events, ctrace.events,
                "{name} under {mname}: trace event streams diverged"
            );
        }
    }
}

/// Structured deadlock outcomes survive the backend switch: pinning
/// `temporal_iir`'s capacities to a uniform 64 (disabling the
/// feedback-aware back-edge sizing) wedges the loop, and the compiled
/// backend must assemble the identical `DeadlockReport` — wait-for cycle,
/// occupancies, and capacity-bump suggestion included.
#[test]
fn compiled_deadlock_reports_are_identical() {
    let comm = CommModel::uniform(64e-9, 1e-9);
    let outcome_of = |backend: Backend, threads: Option<usize>| -> SimOutcome {
        let app = build_example("temporal_iir");
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        let config = config_with(&comm, backend).with_channel_capacity(64);
        match threads {
            None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
                .expect("instantiate")
                .run_outcome(),
            Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
                .expect("instantiate")
                .run_outcome(),
        }
    };
    let SimOutcome::Deadlocked(oracle) = outcome_of(Backend::Interpreted, None) else {
        panic!("temporal_iir must capacity-deadlock when pinned to 64");
    };
    for threads in [None, Some(2), Some(8)] {
        let SimOutcome::Deadlocked(got) = outcome_of(Backend::Compiled, threads) else {
            panic!("compiled backend did not deadlock ({threads:?})");
        };
        assert_eq!(
            oracle, got,
            "DeadlockReport diverged on the compiled backend ({threads:?})"
        );
    }
}

/// Feedback capacities: with the derived (feedback-aware) plan,
/// `temporal_iir` completes identically on both backends — the primed
/// loop population, credit flow, and startup const firings all lower
/// correctly.
#[test]
fn compiled_feedback_capacities_complete_identically() {
    for (mname, comm) in models() {
        let (oracle, oracle_items) = run("temporal_iir", &comm, Backend::Interpreted, None);
        let (got, got_items) = run("temporal_iir", &comm, Backend::Compiled, None);
        let o = oracle.expect("temporal_iir completes under derived capacities");
        let c = got.expect("compiled temporal_iir completes");
        assert_eq!(
            o.fingerprint(),
            c.fingerprint(),
            "temporal_iir under {mname}: fingerprint diverged"
        );
        assert_eq!(oracle_items, got_items, "temporal_iir under {mname}: items");
    }
}
