//! End-to-end integration: compile the paper's applications and verify that
//! the transformed (buffered, aligned, parallelized) graphs produce results
//! bit-identical to direct array-math golden models, under both the
//! functional executor and the timing-accurate simulator.

use bp_apps::{apps, presets, reference};
use bp_compiler::{compile, AlignPolicy, CompileOptions, MappingKind};
use bp_core::Dim2;
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

const FRAMES: u32 = 3;

fn run_functional(graph: &bp_core::AppGraph, frames: u32) {
    let mut ex = FunctionalExecutor::new(graph).expect("instantiate");
    ex.run_frames(frames).expect("run");
    assert_eq!(ex.residual_items(), 0, "items stranded in queues");
}

#[test]
fn fig1b_uncompiled_matches_golden() {
    // The source program cannot run as written (windowed kernels need
    // buffers), so "uncompiled" here means compiled at a rate needing no
    // parallelization.
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    run_functional(&c.graph, FRAMES);
    let frames = app.sinks[0].1.frames();
    assert_eq!(frames.len(), FRAMES as usize);
    for (f, counts) in frames.iter().enumerate() {
        let expected = reference::fig1b_expected(20, 12, f as u32, 32, -128.0, 128.0);
        assert_eq!(counts, &expected, "frame {f}");
    }
}

#[test]
fn fig1b_parallelized_is_bit_identical() {
    // Fast rate: conv x3, median x2, histogram x2 — the full Fig. 4 shape.
    let app = apps::fig1b(presets::SMALL, presets::FAST);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let conv_plan = c.report.parallelize.plan_for("5x5 Conv").unwrap();
    assert!(
        conv_plan.granted >= 3,
        "expected parallelism: {conv_plan:?}"
    );
    run_functional(&c.graph, FRAMES);
    let frames = app.sinks[0].1.frames();
    assert_eq!(frames.len(), FRAMES as usize);
    for (f, counts) in frames.iter().enumerate() {
        let expected = reference::fig1b_expected(20, 12, f as u32, 32, -128.0, 128.0);
        assert_eq!(counts, &expected, "frame {f}");
    }
}

#[test]
fn fig1b_pad_policy_matches_padded_golden() {
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let opts = CompileOptions {
        align: AlignPolicy::PadZero,
        ..Default::default()
    };
    let c = compile(&app.graph, &opts).unwrap();
    run_functional(&c.graph, FRAMES);
    for (f, counts) in app.sinks[0].1.frames().iter().enumerate() {
        let expected = reference::fig1b_expected_padded(20, 12, f as u32, 32, -128.0, 128.0);
        assert_eq!(counts, &expected, "frame {f}");
    }
}

#[test]
fn fig1b_big_fast_with_split_buffers_is_bit_identical() {
    // Big/Fast: buffers split column-wise AND compute replicates.
    let app = apps::fig1b(presets::BIG, presets::FAST);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    // At 40 columns, the 5x5 buffer needs 2*40*5 = 400 > 320 words: split.
    let split_buffers = c
        .report
        .parallelize
        .plans
        .iter()
        .filter(|p| p.name.starts_with("Buffer(") && p.granted > 1)
        .count();
    assert!(split_buffers >= 1, "expected split buffers");
    run_functional(&c.graph, FRAMES);
    for (f, counts) in app.sinks[0].1.frames().iter().enumerate() {
        let expected = reference::fig1b_expected(40, 24, f as u32, 32, -128.0, 128.0);
        assert_eq!(counts, &expected, "frame {f}");
    }
}

/// Reassemble an image from per-window-row groups of 2×2 blocks.
fn rows_from_quads(window_rows: &[Vec<bp_core::Window>]) -> Vec<Vec<f64>> {
    let mut rows = Vec::new();
    for group in window_rows {
        for sub in 0..2u32 {
            let mut row = Vec::new();
            for w in group {
                for x in 0..w.width() {
                    row.push(w.get(x, sub));
                }
            }
            rows.push(row);
        }
    }
    rows
}

#[test]
fn bayer_compiled_matches_golden() {
    let app = apps::bayer(presets::SMALL, presets::FAST);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    run_functional(&c.graph, 2);
    for f in 0..2usize {
        let img = reference::pattern_frame(20, 12, f as u32);
        let (er, eg, eb) = reference::bayer_expected(&img);
        for (idx, expected) in [er, eg, eb].iter().enumerate() {
            let window_rows = &app.sinks[idx].1.frame_window_rows()[f];
            let got = rows_from_quads(window_rows);
            assert_eq!(&got, expected, "plane {idx} frame {f}");
        }
    }
}

#[test]
fn histogram_app_compiled_matches_golden() {
    let app = apps::histogram_app(presets::SMALL, presets::FAST, 32);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    run_functional(&c.graph, FRAMES);
    for (f, counts) in app.sinks[0].1.frames().iter().enumerate() {
        let img = reference::pattern_frame(20, 12, f as u32);
        let expected = reference::histogram(&img, &reference::uniform_uppers(32, 0.0, 256.0));
        assert_eq!(counts, &expected, "frame {f}");
    }
}

#[test]
fn parallel_buffer_test_split_buffer_is_bit_identical() {
    let app = apps::parallel_buffer_test(Dim2::new(64, 12), 20.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let buf_plan = c
        .report
        .parallelize
        .plans
        .iter()
        .find(|p| p.name.starts_with("Buffer("))
        .unwrap();
    assert!(buf_plan.granted >= 2, "buffer must split: {buf_plan:?}");
    run_functional(&c.graph, 2);
    for (f, vals) in app.sinks[0].1.frames().iter().enumerate() {
        let img = reference::pattern_frame(64, 12, f as u32);
        let box5 = vec![vec![1.0 / 25.0; 5]; 5];
        let expected: Vec<f64> = reference::conv2d_valid(&img, &box5)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(vals.len(), expected.len());
        for (g, e) in vals.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "frame {f}");
        }
    }
}

#[test]
fn multi_conv_pipeline_matches_golden() {
    let app = apps::multi_conv(presets::SMALL, presets::SLOW, 3);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    run_functional(&c.graph, 2);
    let k3: Vec<Vec<f64>> = {
        let w = bp_kernels::binomial_coefficients(3);
        (0..3)
            .map(|y| (0..3).map(|x| w.get(x, y)).collect())
            .collect()
    };
    for (f, vals) in app.sinks[0].1.frames().iter().enumerate() {
        let mut img = reference::pattern_frame(20, 12, f as u32);
        for _ in 0..3 {
            img = reference::conv2d_valid(&img, &k3);
        }
        let expected: Vec<f64> = img.into_iter().flatten().collect();
        assert_eq!(vals.len(), expected.len());
        for (g, e) in vals.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "frame {f}");
        }
    }
}

#[test]
fn temporal_iir_feedback_converges() {
    let app = apps::temporal_iir(Dim2::new(4, 3), 10.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(3).unwrap();
    // A frame-delay loop legitimately leaves the final feedback frame
    // circulating: 12 pixels + 3 EOL + 1 EOF.
    assert_eq!(ex.residual_items(), 16);
    let frames = app.sinks[0].1.frames();
    assert_eq!(frames.len(), 3);
    // Golden: out_f = 0.5 * (in_f + out_{f-1}), out_{-1} = 0.
    let mut prev = vec![0.0; 12];
    for (f, got) in frames.iter().enumerate() {
        let img: Vec<f64> = reference::pattern_frame(4, 3, f as u32)
            .into_iter()
            .flatten()
            .collect();
        let expected: Vec<f64> = img.iter().zip(&prev).map(|(i, p)| 0.5 * (i + p)).collect();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "frame {f}");
        }
        prev = expected;
    }
}

#[test]
fn timed_simulation_matches_functional_and_meets_deadline() {
    let app = apps::fig1b(presets::SMALL, presets::SLOW);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(FRAMES))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.verdict.met, "verdict: {:?}", report.verdict);
    assert_eq!(report.frames_completed, FRAMES);
    // Functional equivalence: the sink saw golden counts.
    for (f, counts) in app.sinks[0].1.frames().iter().enumerate() {
        let expected = reference::fig1b_expected(20, 12, f as u32, 32, -128.0, 128.0);
        assert_eq!(counts, &expected, "frame {f}");
    }
}

#[test]
fn timed_simulation_parallelized_meets_realtime() {
    for (label, dim, rate) in [
        ("SF", presets::SMALL, presets::FAST),
        ("BS", presets::BIG, presets::SLOW),
    ] {
        let app = apps::fig1b(dim, rate);
        let c = compile(&app.graph, &CompileOptions::default()).unwrap();
        let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(2))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            report.verdict.met,
            "{label}: verdict {:?} with {} PEs",
            report.verdict, c.mapping.num_pes
        );
    }
}

#[test]
fn one_to_one_and_greedy_mappings_agree_on_results() {
    for kind in [MappingKind::OneToOne, MappingKind::Greedy] {
        let app = apps::histogram_app(presets::SMALL, presets::SLOW, 32);
        let opts = CompileOptions {
            mapping: kind,
            ..Default::default()
        };
        let c = compile(&app.graph, &opts).unwrap();
        let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(2))
            .unwrap()
            .run()
            .unwrap();
        assert!(report.verdict.met, "{kind:?}");
        let img = reference::pattern_frame(20, 12, 0);
        let expected = reference::histogram(&img, &reference::uniform_uppers(32, 0.0, 256.0));
        assert_eq!(app.sinks[0].1.frames()[0], expected, "{kind:?}");
    }
}
