//! End-to-end tests for the extended application set: 1-D signal chains,
//! edge detection, morphology, upsampling, and the data-dependent-cost
//! motion search with its runtime resource exceptions (§VII).

use bp_apps::{apps, reference};
use bp_compiler::{compile, CompileOptions};
use bp_core::{Dim2, GraphBuilder, Step2, Window};
use bp_kernels as k;
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

fn run_compiled(graph: &bp_core::AppGraph, frames: u32) -> bp_core::AppGraph {
    let c = compile(graph, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(frames).unwrap();
    assert_eq!(ex.residual_items(), 0);
    c.graph
}

#[test]
fn fir_radio_matches_reference_chain() {
    let app = apps::fir_radio(72, 100.0);
    run_compiled(&app.graph, 2);
    let taps: Vec<f64> = k::lowpass_taps(9).samples().to_vec();
    for (f, got) in app.sinks[0].1.frames().iter().enumerate() {
        let signal: Vec<f64> = (0..72)
            .map(|x| reference::pattern_pixel(f as u32, x, 0))
            .collect();
        let filtered = reference::fir_valid(&signal, &taps);
        let expected = reference::decimate_by(&filtered, 4);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "frame {f}");
        }
    }
}

#[test]
fn fir_radio_parallelizes_at_high_rate() {
    // 2 kHz frame rate over 72-sample frames: the FIR replicates.
    let app = apps::fir_radio(72, 2000.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let plan = c.report.parallelize.plan_for("FIR").unwrap();
    assert!(plan.granted >= 2, "{plan:?}");
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(1).unwrap();
    let taps: Vec<f64> = k::lowpass_taps(9).samples().to_vec();
    let signal: Vec<f64> = (0..72).map(|x| reference::pattern_pixel(0, x, 0)).collect();
    let expected = reference::decimate_by(&reference::fir_valid(&signal, &taps), 4);
    let got = &app.sinks[0].1.frames()[0];
    for (g, e) in got.iter().zip(&expected) {
        assert!((g - e).abs() < 1e-9);
    }
}

#[test]
fn edge_detect_matches_reference_chain() {
    let dim = Dim2::new(16, 12);
    let app = apps::edge_detect(dim, 50.0, 20.0);
    run_compiled(&app.graph, 2);
    for (f, got) in app.sinks[0].1.frames().iter().enumerate() {
        let img = reference::pattern_frame(dim.w, dim.h, f as u32);
        let med = reference::median_valid(&img, 3, 3);
        let sob = reference::sobel_valid(&med);
        let expected: Vec<f64> = reference::threshold_img(&sob, 20.0)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(got, &expected, "frame {f}");
    }
}

#[test]
fn morphology_pipeline_computes_gradient() {
    // Morphological gradient: dilate - erode over the same window, using
    // the automatic alignment machinery (both paths have equal halos, so
    // no trim is needed).
    let dim = Dim2::new(12, 10);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 20.0);
    let di = b.add("Dilate", k::dilate(3, 3));
    let er = b.add("Erode", k::erode(3, 3));
    let sub = b.add("Sub", k::subtract());
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", di, "in");
    b.connect(src, "out", er, "in");
    b.connect(di, "out", sub, "in0");
    b.connect(er, "out", sub, "in1");
    b.connect(sub, "out", snk, "in");
    let g = b.build().unwrap();
    run_compiled(&g, 1);
    let img = reference::pattern_frame(dim.w, dim.h, 0);
    let got = &h.frames()[0];
    let mut idx = 0;
    for oy in 0..(dim.h - 2) as usize {
        for ox in 0..(dim.w - 2) as usize {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for dy in 0..3 {
                for dx in 0..3 {
                    lo = lo.min(img[oy + dy][ox + dx]);
                    hi = hi.max(img[oy + dy][ox + dx]);
                }
            }
            assert_eq!(got[idx], hi - lo, "at ({ox},{oy})");
            idx += 1;
        }
    }
}

#[test]
fn upsample_then_downsample_is_identity() {
    // upsample 2x2 (replicate) then block-average downsample 2x2 recovers
    // the original stream exactly.
    let dim = Dim2::new(6, 4);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 20.0);
    let up = b.add("Up", k::upsample(2, 2, k::UpsampleMode::Replicate));
    let down = b.add("Down", k::downsample(2, 2));
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", up, "in");
    b.connect(up, "out", down, "in");
    b.connect(down, "out", snk, "in");
    let g = b.build().unwrap();
    run_compiled(&g, 1);
    let expected: Vec<f64> = reference::pattern_frame(dim.w, dim.h, 0)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(h.frames()[0], expected);
}

#[test]
fn motion_search_budget_exceptions_only_under_optimistic_budget() {
    let build = |budget: u64| {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let ms = b.add("MS", k::motion_search(0.5, budget));
        let (sdef, h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", ms, "in");
        b.connect(ms, "out", snk, "in");
        (b.build().unwrap(), h)
    };
    let mut outputs = Vec::new();
    let mut overruns = Vec::new();
    for budget in [9u64, 1] {
        let (g, h) = build(budget);
        let c = compile(&g, &CompileOptions::default()).unwrap();
        let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(2))
            .unwrap()
            .run()
            .unwrap();
        outputs.push(h.frames());
        overruns.push(report.total_budget_overruns());
    }
    assert_eq!(outputs[0], outputs[1], "budget must not change results");
    assert_eq!(overruns[0], 0, "worst-case budget is exception-free");
    assert!(overruns[1] > 0, "optimistic budget raises exceptions");
}

#[test]
fn strided_buffer_feeds_motion_search() {
    // The motion search uses a (6x6)[2,2] window: the buffer must stride
    // by 2 in both dimensions and still be bit-exact.
    let dim = Dim2::new(12, 8);
    let def = k::buffer(Dim2::ONE, Dim2::new(6, 6), Step2::new(2, 2), dim);
    assert_eq!(def.spec.outputs[0].step, Step2::new(2, 2));
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 20.0);
    let ms = b.add("MS", k::motion_search(-1.0, 9));
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", ms, "in");
    b.connect(ms, "out", snk, "in");
    let g = b.build().unwrap();
    run_compiled(&g, 1);
    // (12-6)/2+1 = 4 by (8-6)/2+1 = 2 iterations.
    assert_eq!(h.frames()[0].len(), 8);
    // Every SAD is the minimum over nine candidates; with the exhaustive
    // (negative) threshold the self-match guarantees 0.
    assert!(h.frames()[0].iter().all(|&v| v == 0.0));
}

#[test]
fn fir_requires_tileable_decimation() {
    // 70-8 = 62 is not divisible by 4: the app constructor rejects it.
    let result = std::panic::catch_unwind(|| apps::fir_radio(70, 100.0));
    assert!(result.is_err());
}

#[test]
fn window_report_cycles_roundtrip() {
    // Emitter::into_parts carries the reported cost; into_items drops it.
    let def = k::motion_search(0.5, 9);
    let mut beh = (def.factory)();
    let consumed = vec![(
        0usize,
        bp_core::Item::Window(Window::filled(Dim2::new(6, 6), 1.0)),
    )];
    let data = bp_core::FireData::new(&def.spec, &consumed);
    let mut out = bp_core::Emitter::new(&def.spec);
    beh.fire("search", &data, &mut out);
    let (items, cycles) = out.into_parts();
    assert_eq!(items.len(), 1);
    assert!(cycles.is_some());
}

#[test]
fn stereo_diff_with_two_sources_matches_golden() {
    let dim = Dim2::new(12, 8);
    let app = apps::stereo_diff(dim, 40.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(2).unwrap();
    assert_eq!(ex.residual_items(), 0);
    for f in 0..2u32 {
        let diff: Vec<Vec<f64>> = (0..dim.h)
            .map(|y| {
                (0..dim.w)
                    .map(|x| {
                        let l = reference::pattern_pixel(f, x, y);
                        let r = l * 0.5 + 7.0;
                        (l - r).abs()
                    })
                    .collect()
            })
            .collect();
        let expected = reference::histogram(&diff, &reference::uniform_uppers(16, 0.0, 160.0));
        assert_eq!(app.sinks[0].1.frames()[f as usize], expected, "frame {f}");
    }
}

#[test]
fn stereo_diff_timed_simulation_paces_both_sources() {
    let dim = Dim2::new(12, 8);
    let app = apps::stereo_diff(dim, 40.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(3))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.verdict.met, "{:?}", report.verdict);
    assert_eq!(report.frames_completed, 3);
    // The diff kernel pairs items from both sources; with identical pacing
    // its input queues stay shallow.
    let g = &c.graph;
    let diff = g.find_node("Diff").unwrap();
    assert!(
        report.node_max_queue[diff.0] <= 4,
        "queue {:?}",
        report.node_max_queue[diff.0]
    );
}

#[test]
fn queue_depth_observability_reflects_backlog() {
    // The conv behind a buffer accumulates a within-frame backlog that the
    // channel slack absorbs (see SimConfig docs); the report exposes it.
    let app = apps::parallel_buffer_test(Dim2::new(64, 12), 20.0);
    let c = compile(&app.graph, &CompileOptions::default()).unwrap();
    let report = TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.verdict.met);
    let max = report.node_max_queue.iter().max().copied().unwrap_or(0);
    assert!(max > 1, "some backlog must be visible");
    assert!(
        max <= 64,
        "never beyond the configured capacity + burst slack"
    );
}
