//! A realistic denoising scenario on synthetic noisy input: the compiled
//! median pipeline suppresses salt-and-pepper impulses, and the compiled
//! graph matches the direct reference median on the corrupted frames.

use bp_apps::{reference, NoisePlan};
use bp_compiler::{compile, CompileOptions};
use bp_core::{Dim2, GraphBuilder};
use bp_kernels as k;
use bp_sim::FunctionalExecutor;

fn impulse_hits(img: &reference::Image, plan: &NoisePlan, frame: u32, halo: u32) -> usize {
    // Count output samples that still equal an impulse value at the
    // corresponding interior position.
    let mut hits = 0;
    for (oy, row) in img.iter().enumerate() {
        for (ox, &v) in row.iter().enumerate() {
            let x = ox as u32 + halo;
            let y = oy as u32 + halo;
            if let Some(imp) = plan.impulse_at(frame, x, y) {
                if v == imp {
                    hits += 1;
                }
            }
        }
    }
    hits
}

#[test]
fn compiled_median_removes_salt_and_pepper() {
    let dim = Dim2::new(20, 14);
    // Sparse impulses: mostly isolated within any 3x3 window.
    let plan = NoisePlan::salt_and_pepper(dim, 2, 0.04, -999.0, 999.0, 1234);
    assert!(plan.impulse_count(0) > 0, "need some corruption to remove");

    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", plan.source(), dim, 30.0);
    let med = b.add("Median", k::median(3, 3));
    let (sdef, handle) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", med, "in");
    b.connect(med, "out", snk, "in");
    let g = b.build().unwrap();

    let c = compile(&g, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(2).unwrap();

    for f in 0..2u32 {
        let noisy = plan.frame(f);
        // The compiled pipeline must equal the direct reference median on
        // the same corrupted input.
        let expected: Vec<f64> = reference::median_valid(&noisy, 3, 3)
            .into_iter()
            .flatten()
            .collect();
        let got = &handle.frames()[f as usize];
        assert_eq!(got, &expected, "frame {f}");

        // And the median actually suppresses the impulses: none of the
        // extreme values survive in the interior (impulses are isolated
        // enough at 4% density for a 9-sample median).
        let out_img: reference::Image = got
            .chunks((dim.w - 2) as usize)
            .map(|r| r.to_vec())
            .collect();
        let surviving = impulse_hits(&out_img, &plan, f, 1);
        let original = plan.impulse_count(f);
        assert!(
            surviving * 5 <= original,
            "frame {f}: {surviving} of {original} impulses survived the median"
        );
    }
}

#[test]
fn noise_plans_compose_with_fig1b_style_pipelines() {
    // Corrupted input through median vs conv difference: just verify the
    // compiled graph stays bit-identical to the reference composition.
    let dim = Dim2::new(16, 12);
    let plan = NoisePlan::salt_and_pepper(dim, 1, 0.05, 0.0, 255.0, 77);

    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", plan.source(), dim, 25.0);
    let med = b.add("Median", k::median(3, 3));
    let conv = b.add("Conv", k::conv2d(5, 5));
    let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
    let sub = b.add("Sub", k::subtract());
    let (sdef, handle) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", med, "in");
    b.connect(src, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(med, "out", sub, "in0");
    b.connect(conv, "out", sub, "in1");
    b.connect(sub, "out", snk, "in");
    let g = b.build().unwrap();

    let c = compile(&g, &CompileOptions::default()).unwrap();
    let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
    ex.run_frames(1).unwrap();

    let noisy = plan.frame(0);
    let med_ref = reference::trim(&reference::median_valid(&noisy, 3, 3), 1);
    let box5 = vec![vec![1.0 / 25.0; 5]; 5];
    let conv_ref = reference::conv2d_valid(&noisy, &box5);
    let expected: Vec<f64> = reference::subtract(&med_ref, &conv_ref)
        .into_iter()
        .flatten()
        .collect();
    let got = &handle.frames()[0];
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert!((g - e).abs() < 1e-9);
    }
}
