//! Liveness properties of the feedback-aware capacity derivation
//! (DESIGN.md §12), seeded with the in-tree `bp_core::Rng64` (no external
//! property-testing crate).
//!
//! Each case builds a random chain of 1:1 kernels threaded through 1–3
//! node-disjoint feedback loops (merge + loop body + primed feedback
//! kernel, the `temporal_iir` shape at random sizes) and checks the two
//! halves of the §III-D sizing rule:
//!
//! - **Sufficiency**: under the derived per-channel plan, every graph
//!   completes — sequentially and in parallel, under zero and nonzero
//!   comm models, with identical fingerprints.
//! - **Sharpness**: lowering any one derived back-edge capacity by a
//!   single item deadlocks the graph, and the structured
//!   [`DeadlockReport`] names exactly the starved loop (a starved-loop
//!   cycle, not a wait-for cycle: the merge node is waiting for external
//!   data, so only the back edge is full) with the minimal capacity bump
//!   pointing back at the derived bound. Both engines produce the
//!   identical report.

use bp_compiler::{compile, CompileOptions};
use bp_core::capacity::{derive_channel_capacities, feedback_loops};
use bp_core::graph::AppGraph;
use bp_core::{ChannelId, CommModel, Dim2, Rng64};
use bp_kernels as k;
use bp_sim::{DeadlockReport, ParallelTimedSimulator, SimConfig, SimOutcome, TimedSimulator};

const FRAMES: u32 = 2;
const CASES: u64 = 8;

/// Frame sizes whose primed population `w·h + h + 1` exceeds the 64-item
/// flat default, so the back-edge override is always load-bearing.
const DIMS: &[Dim2] = &[
    Dim2::new(10, 8),
    Dim2::new(12, 6),
    Dim2::new(16, 8),
    Dim2::new(20, 12),
];

/// A random loop chain: source → [optional pre-scale] → 1..=3 feedback
/// loop segments → sink. Each segment is `Mix(add) → 1..=2 scale nodes →
/// FeedbackFrame → Mix.in1`, with the chain continuing from the last
/// body node — every kernel is rate 1:1, so each loop's primed
/// population is conserved and circulates forever.
fn random_loop_chain(rng: &mut Rng64) -> (AppGraph, usize) {
    let dim = DIMS[rng.gen_index(DIMS.len())];
    let mut b = bp_core::GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
    let mut prev = src;
    if rng.gen_bool() {
        let p = b.add("Pre", k::scale(0.9, 0.0));
        b.connect(prev, "out", p, "in");
        prev = p;
    }
    let n_loops = 1 + rng.gen_index(3);
    for i in 0..n_loops {
        let mix = b.add(format!("Mix{i}"), k::add());
        b.connect(prev, "out", mix, "in0");
        let mut body = mix;
        // Keep the loop gain below 1 so the recirculating sum stays finite.
        for j in 0..=rng.gen_index(2) {
            let s = b.add(
                format!("S{i}_{j}"),
                k::scale(rng.gen_range_f64(0.3, 0.6), 0.0),
            );
            b.connect(body, "out", s, "in");
            body = s;
        }
        let fb = b.add(format!("FB{i}"), k::feedback_frame(dim, 0.0));
        b.connect(body, "out", fb, "in");
        b.connect(fb, "out", mix, "in1");
        prev = body;
    }
    let (sdef, _h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(prev, "out", snk, "in");
    (b.build().expect("loop chain is well-formed"), n_loops)
}

fn channel_name(graph: &AppGraph, cid: ChannelId) -> String {
    let c = graph.channel(cid);
    let src = graph.node(c.src.node);
    let dst = graph.node(c.dst.node);
    format!(
        "{}.{} -> {}.{}",
        src.name,
        src.spec().outputs[c.src.port].name,
        dst.name,
        dst.spec().inputs[c.dst.port].name
    )
}

fn hop_name(h: &bp_sim::DeadlockHop) -> String {
    format!("{}.{} -> {}.{}", h.src, h.src_port, h.dst, h.dst_port)
}

/// Sufficiency: the derived plan keeps every random loop chain live, on
/// both engines, under zero and nonzero delay, with identical
/// fingerprints.
#[test]
fn derived_capacities_never_deadlock() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x11fe_0000 + case);
        let (graph, n_loops) = random_loop_chain(&mut rng);
        let compiled = compile(&graph, &CompileOptions::default()).expect("compile loop chain");
        let loops = feedback_loops(&compiled.graph);
        assert_eq!(loops.len(), n_loops, "case {case}: loop census");
        for lp in &loops {
            assert!(
                lp.back_edge_capacity > 64,
                "case {case}: premise — every loop's bound must exceed the flat default"
            );
        }
        for (mname, comm) in [
            ("zero", CommModel::zero()),
            ("uniform", CommModel::uniform(64e-9, 1e-9)),
        ] {
            let config = SimConfig::new(FRAMES).with_comm(comm);
            let seq = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate")
                .run_outcome();
            let seq = match seq {
                SimOutcome::Completed(report) => report,
                SimOutcome::Deadlocked(d) => panic!(
                    "case {case} under {mname}: derived plan deadlocked:\n{}",
                    d.render()
                ),
            };
            for threads in [2usize, 4] {
                match ParallelTimedSimulator::new(
                    &compiled.graph,
                    &compiled.mapping,
                    config.clone(),
                    threads,
                )
                .expect("instantiate")
                .run_outcome()
                {
                    SimOutcome::Completed(par) => assert_eq!(
                        seq.fingerprint(),
                        par.fingerprint(),
                        "case {case} under {mname} at {threads} threads: diverged"
                    ),
                    SimOutcome::Deadlocked(d) => panic!(
                        "case {case} under {mname} at {threads} threads: parallel \
                         engine deadlocked where sequential completed:\n{}",
                        d.render()
                    ),
                }
            }
        }
    }
}

/// Sharpness: one item below the derived bound on any single back edge
/// deadlocks the chain, and the report names that loop precisely.
#[test]
fn one_below_the_bound_starves_the_loop() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x11fe_0000 + case);
        let (graph, _) = random_loop_chain(&mut rng);
        let compiled = compile(&graph, &CompileOptions::default()).expect("compile loop chain");
        let loops = feedback_loops(&compiled.graph);
        let lp = &loops[rng.gen_index(loops.len())];
        let be = lp.back_edges[0];
        let be_name = channel_name(&compiled.graph, be);
        let lowered =
            derive_channel_capacities(&compiled.graph).with_override(be, lp.back_edge_capacity - 1);
        let config = SimConfig::new(FRAMES).with_channel_capacities(lowered);

        let run = |threads: Option<usize>| -> DeadlockReport {
            let outcome = match threads {
                None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                    .expect("instantiate")
                    .run_outcome(),
                Some(t) => ParallelTimedSimulator::new(
                    &compiled.graph,
                    &compiled.mapping,
                    config.clone(),
                    t,
                )
                .expect("instantiate")
                .run_outcome(),
            };
            match outcome {
                SimOutcome::Deadlocked(d) => d,
                SimOutcome::Completed(_) => panic!(
                    "case {case}: '{be_name}' at {} (one below the bound {}) \
                     should deadlock",
                    lp.back_edge_capacity - 1,
                    lp.back_edge_capacity
                ),
            }
        };
        let seq = run(None);

        // The walk of blocked producers dead-ends at the starved merge
        // node (it has no plan — its external input is exhausted), so the
        // diagnosis is a starved-loop cycle, not a wait-for cycle.
        assert!(
            !seq.blocked_cycle,
            "case {case}: expected a starved loop, got a wait-for cycle:\n{}",
            seq.render()
        );
        let loop_nodes: Vec<&str> = lp
            .nodes
            .iter()
            .map(|&id| compiled.graph.node(id).name.as_str())
            .collect();
        assert_eq!(
            seq.cycle.len(),
            lp.channels.len(),
            "case {case}: cycle should trace the whole starved loop:\n{}",
            seq.render()
        );
        assert!(
            seq.cycle.iter().any(|h| hop_name(h) == be_name),
            "case {case}: cycle missing the starved back edge '{be_name}':\n{}",
            seq.render()
        );
        for h in &seq.cycle {
            assert!(
                loop_nodes.contains(&h.src.as_str()) && loop_nodes.contains(&h.dst.as_str()),
                "case {case}: hop {} strayed outside loop {loop_nodes:?}",
                hop_name(h)
            );
        }
        // The minimal fix is the derived bound itself — the sizing rule
        // is sharp, not merely sufficient.
        let bump = seq
            .min_capacity_bump
            .as_ref()
            .expect("a starved loop admits a capacity bump");
        assert_eq!(
            bump.channel, be_name,
            "case {case}: bump names the wrong channel"
        );
        assert_eq!(
            bump.current,
            lp.back_edge_capacity - 1,
            "case {case}: bump current"
        );
        assert_eq!(
            bump.required, lp.back_edge_capacity,
            "case {case}: minimal fix must equal the derived bound"
        );

        for threads in [2usize, 4] {
            let par = run(Some(threads));
            assert_eq!(
                seq, par,
                "case {case} at {threads} threads: deadlock reports diverged"
            );
            assert_eq!(
                seq.fingerprint(),
                par.fingerprint(),
                "case {case} at {threads} threads: deadlock fingerprints diverged"
            );
        }
    }
}
