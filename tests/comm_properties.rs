//! Property tests for the inter-PE communication delay model, seeded with
//! the in-tree `bp_core::Rng64` (no external property-testing crate).
//!
//! Each case builds a random layered DAG of unary/binary arithmetic
//! kernels, draws a random delay model, runs both timed engines with
//! tracing, and checks invariants that must hold for *every* graph and
//! *every* model:
//!
//! - **FIFO per channel**: arrival times on each delayed channel are
//!   non-decreasing in send order (the wire never reorders), and the
//!   delivered arrivals replay in the same order.
//! - **Conservation**: every send is eventually delivered — at a clean
//!   end of simulation, per-channel sends == arrivals and nothing is
//!   left in flight.
//! - **Causality**: no message arrives before it was sent, and never
//!   sooner than the model's per-channel minimum latency.
//! - **Engine equivalence**: the parallel engine reproduces the
//!   sequential fingerprint (or the identical error) for the same graph
//!   and model.

use bp_compiler::{compile, CompileOptions, MappingKind};
use bp_core::{CommModel, Dim2, GraphBuilder, NodeId, Rng64};
use bp_kernels as k;
use bp_sim::{
    ParallelTimedSimulator, SimConfig, SimReport, TimedSimulator, Trace, TraceEvent, TraceOptions,
};

const FRAMES: u32 = 2;
const CASES: u64 = 12;

/// A random layered DAG: one source, `layers` rows of 1–3 arithmetic
/// nodes each drawing inputs from random earlier rows, and a sink on
/// every leaf. All kernels preserve the logical frame size, so any wiring
/// is well-formed.
fn random_graph(rng: &mut Rng64) -> bp_core::graph::AppGraph {
    let dim = Dim2::new(8, 4);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 25.0);
    let mut pool: Vec<NodeId> = vec![src];
    let mut consumed: Vec<bool> = vec![true]; // the source always has takers
    let layers = 2 + rng.gen_index(3); // 2..=4
    let mut id = 0usize;
    for _ in 0..layers {
        let width = 1 + rng.gen_index(3); // 1..=3 nodes per layer
        let mut row = Vec::new();
        for _ in 0..width {
            id += 1;
            let node = if rng.gen_bool() {
                let n = b.add(
                    format!("U{id}"),
                    k::scale(rng.gen_range_f64(0.5, 2.0), rng.gen_range_f64(-1.0, 1.0)),
                );
                let from = rng.gen_index(pool.len());
                b.connect(pool[from], "out", n, "in");
                consumed[from] = true;
                n
            } else {
                let n = b.add(format!("B{id}"), k::add());
                let (a0, a1) = (rng.gen_index(pool.len()), rng.gen_index(pool.len()));
                b.connect(pool[a0], "out", n, "in0");
                b.connect(pool[a1], "out", n, "in1");
                consumed[a0] = true;
                consumed[a1] = true;
                n
            };
            row.push(node);
        }
        for n in row {
            pool.push(n);
            consumed.push(false);
        }
    }
    // Every unconsumed output feeds a sink, so no item is routed nowhere.
    for (i, node) in pool.iter().enumerate() {
        if !consumed[i] {
            let (sdef, _h) = k::sink();
            let s = b.add(format!("Out{i}"), sdef);
            b.connect(*node, "out", s, "in");
        }
    }
    b.build().expect("random layered DAG is always valid")
}

/// A random delay model: zero / uniform / grid with latencies between a
/// few and a few hundred nanoseconds (1–300 PE cycles at the default
/// clock), occasionally with a bandwidth term.
fn random_model(rng: &mut Rng64) -> CommModel {
    let ns = |rng: &mut Rng64, lo: f64, hi: f64| rng.gen_range_f64(lo, hi) * 1e-9;
    match rng.gen_index(3) {
        0 => CommModel::zero(),
        1 => {
            let per_word = if rng.gen_bool() {
                ns(rng, 0.5, 4.0)
            } else {
                0.0
            };
            CommModel::uniform(ns(rng, 1.0, 300.0), per_word)
        }
        _ => {
            let per_word = if rng.gen_bool() {
                ns(rng, 0.5, 4.0)
            } else {
                0.0
            };
            CommModel::grid(ns(rng, 1.0, 100.0), ns(rng, 1.0, 50.0), per_word)
        }
    }
}

struct TraceView {
    /// (send t, arrival t) per CommSend, in trace order, keyed by channel.
    sends: Vec<Vec<(f64, f64)>>,
    /// Arrival-event times in trace order, keyed by channel.
    arrivals: Vec<Vec<f64>>,
}

fn view(trace: &Trace) -> TraceView {
    let chans = trace.meta.channels.len();
    let mut v = TraceView {
        sends: vec![Vec::new(); chans],
        arrivals: vec![Vec::new(); chans],
    };
    for ev in &trace.events {
        match *ev {
            TraceEvent::CommSend {
                t, chan, arrival, ..
            } => {
                v.sends[chan as usize].push((t, arrival));
            }
            TraceEvent::CommArrival { t, chan } => v.arrivals[chan as usize].push(t),
            _ => {}
        }
    }
    v
}

fn check_invariants(case: u64, trace: &Trace, model: &CommModel, ok: bool) {
    let v = view(trace);
    for (chan, meta) in trace.meta.channels.iter().enumerate() {
        let sends = &v.sends[chan];
        let arrivals = &v.arrivals[chan];

        // Causality: arrival >= send + the model's floor for this link.
        for &(t, arr) in sends {
            assert!(
                arr >= t,
                "case {case} chan {chan}: message arrives at {arr} before send at {t}"
            );
            assert!(
                arr - t >= meta.latency_s - 1e-15,
                "case {case} chan {chan}: dwell {} under channel latency {}",
                arr - t,
                meta.latency_s
            );
        }
        // FIFO: scheduled arrivals are non-decreasing in send order, and
        // delivered arrivals are non-decreasing in delivery order.
        for w in sends.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "case {case} chan {chan}: wire reordered ({} before {})",
                w[1].1,
                w[0].1
            );
        }
        for w in arrivals.windows(2) {
            assert!(
                w[1] >= w[0],
                "case {case} chan {chan}: deliveries reordered"
            );
        }
        // Conservation at a clean EOF: everything sent was delivered.
        if ok {
            assert_eq!(
                sends.len(),
                arrivals.len(),
                "case {case} chan {chan}: {} sent but {} delivered (model {model:?})",
                sends.len(),
                arrivals.len()
            );
        } else {
            assert!(
                arrivals.len() <= sends.len(),
                "case {case} chan {chan}: more deliveries than sends"
            );
        }
    }
    // Nothing left in flight after a clean run, on any channel.
    if ok {
        let peaks = trace.comm_in_flight_peak();
        let total_sends: usize = v.sends.iter().map(Vec::len).sum();
        if total_sends > 0 {
            assert!(
                peaks.iter().any(|&p| p > 0),
                "case {case}: sends happened but in-flight never rose"
            );
        }
    }
}

#[test]
fn random_dags_preserve_fifo_conservation_and_engine_equivalence() {
    let mut any_delayed_runs = 0u32;
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0xc0de_0000 + case);
        let graph = random_graph(&mut rng);
        let model = random_model(&mut rng);
        let opts = CompileOptions {
            mapping: MappingKind::OneToOne,
            ..Default::default()
        };
        let compiled = compile(&graph, &opts).expect("compile random DAG");
        let config = SimConfig::new(FRAMES)
            .with_machine(opts.machine)
            .with_comm(model.clone())
            .with_trace(TraceOptions::default());

        let seq: bp_core::Result<(SimReport, Option<Trace>)> =
            TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate")
                .run_with_trace();

        match &seq {
            Ok((_, trace)) => {
                let trace = trace.as_ref().expect("tracing enabled");
                assert_eq!(trace.dropped, 0, "case {case}: ring wrapped");
                check_invariants(case, trace, &model, true);
                if trace
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::CommSend { .. }))
                {
                    any_delayed_runs += 1;
                }
            }
            Err(_) => {
                // A random graph may legitimately capacity-deadlock; the
                // equivalence check below still applies.
            }
        }

        for threads in [2usize, 4] {
            let par = ParallelTimedSimulator::new(
                &compiled.graph,
                &compiled.mapping,
                config.clone(),
                threads,
            )
            .expect("instantiate")
            .run_with_trace();
            match (&seq, &par) {
                (Ok((s, st)), Ok((p, pt))) => {
                    assert_eq!(
                        s.fingerprint(),
                        p.fingerprint(),
                        "case {case} at {threads} threads: fingerprint diverged (model {model:?})"
                    );
                    assert_eq!(
                        st.as_ref().unwrap().events,
                        pt.as_ref().unwrap().events,
                        "case {case} at {threads} threads: traces diverged"
                    );
                }
                (Err(se), Err(pe)) => assert_eq!(
                    se.to_string(),
                    pe.to_string(),
                    "case {case} at {threads} threads: errors diverged"
                ),
                _ => panic!("case {case} at {threads} threads: outcomes diverged"),
            }
        }
    }
    assert!(
        any_delayed_runs >= 3,
        "only {any_delayed_runs} random cases exercised a delayed channel — \
         widen the model distribution"
    );
}

/// Dwell statistics fold back into a calibrated model: for any traced run
/// with delayed traffic, `CommModel::from_profile` yields a base latency
/// no larger than any observed dwell (conservative as lookahead) and the
/// profile's mean lies between its min and the max dwell.
#[test]
fn profiled_model_is_conservative_for_random_dags() {
    let mut checked = 0u32;
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0xfeed_0000 + case);
        let graph = random_graph(&mut rng);
        // Always delayed here: profiling a zero model is vacuous.
        let model = CommModel::uniform(rng.gen_range_f64(10.0, 200.0) * 1e-9, 0.0);
        let opts = CompileOptions {
            mapping: MappingKind::OneToOne,
            ..Default::default()
        };
        let compiled = compile(&graph, &opts).expect("compile");
        let config = SimConfig::new(FRAMES)
            .with_machine(opts.machine)
            .with_comm(model.clone())
            .with_trace(TraceOptions::default());
        let Ok((_, trace)) = TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
            .expect("instantiate")
            .run_with_trace()
        else {
            continue; // deadlocked case: covered by the equivalence test
        };
        let trace = trace.expect("tracing enabled");
        let profile = trace.comm_profile();
        if profile.samples == 0 {
            continue;
        }
        let calibrated = CommModel::from_profile(&profile);
        assert!(
            calibrated.base_latency_s >= model.base_latency_s - 1e-15,
            "case {case}: calibrated base {} under true latency {}",
            calibrated.base_latency_s,
            model.base_latency_s
        );
        assert!(
            profile.mean_dwell_s() >= profile.min_dwell_s - 1e-15,
            "case {case}: profile mean under its min"
        );
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} cases produced dwell samples");
}
