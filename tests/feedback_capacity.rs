//! Feedback-aware channel capacity derivation (DESIGN.md §12).
//!
//! Three guarantees are pinned here:
//!
//! 1. **The temporal_iir deadlock is fixed**: under the derived capacity
//!    plan (no explicit capacity configuration at all), `temporal_iir`
//!    completes at every preset point, on both engines, at 1/2/4/8
//!    threads, under all three comm-model shapes — with bitwise-identical
//!    `SimReport` fingerprints.
//! 2. **The old deadlock is still reproducible, and structured**: pinning
//!    a uniform 64-item capacity (which disables the derivation)
//!    reproduces the classic wait-for cycle, now surfaced as a
//!    [`DeadlockReport`] naming the loop channels — identical (by
//!    `PartialEq` *and* by fingerprint) across engines.
//! 3. **Acyclic apps are untouched**: the derived plan for every acyclic
//!    example application has zero overrides and the historical
//!    widest-row default, so the golden digests in `tests/determinism.rs`
//!    cannot have moved.

use bp_apps::{apps, App, BIG, FAST, SLOW, SMALL};
use bp_compiler::{compile, CompileOptions};
use bp_core::{CommModel, Dim2};
use bp_sim::{DeadlockReport, ParallelTimedSimulator, SimConfig, SimOutcome, TimedSimulator};

const FRAMES: u32 = 2;

fn models() -> Vec<(&'static str, CommModel)> {
    vec![
        ("zero", CommModel::zero()),
        ("uniform", CommModel::uniform(64e-9, 1e-9)),
        ("grid", CommModel::grid(32e-9, 8e-9, 1e-9)),
    ]
}

fn run_iir(dim: Dim2, rate: f64, comm: &CommModel, threads: Option<usize>) -> SimOutcome {
    let app = apps::temporal_iir(dim, rate);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = SimConfig::new(FRAMES).with_comm(comm.clone());
    match threads {
        None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
            .expect("instantiate")
            .run_outcome(),
        Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
            .expect("instantiate")
            .run_outcome(),
    }
}

/// Guarantee 1: the derived plan keeps `temporal_iir` live everywhere the
/// paper's preset grid samples it, and the parallel engine reproduces the
/// sequential fingerprint bit for bit.
#[test]
fn temporal_iir_completes_at_every_preset_point() {
    // BIG/FAST is excluded: at that load the parallelizer wants to split
    // the loop's merge node, which data-flow analysis rejects — a
    // pre-existing compiler limitation (loop parallelization), not a
    // capacity question.
    for (dim, rate) in [(SMALL, SLOW), (SMALL, FAST), (BIG, SLOW)] {
        for (mname, comm) in models() {
            let seq = match run_iir(dim, rate, &comm, None) {
                SimOutcome::Completed(report) => report,
                SimOutcome::Deadlocked(d) => panic!(
                    "temporal_iir {}x{} @ {rate} Hz under {mname} deadlocked \
                     despite derived capacities:\n{}",
                    dim.w,
                    dim.h,
                    d.render()
                ),
            };
            for threads in [1usize, 2, 4, 8] {
                match run_iir(dim, rate, &comm, Some(threads)) {
                    SimOutcome::Completed(par) => assert_eq!(
                        seq.fingerprint(),
                        par.fingerprint(),
                        "temporal_iir {}x{} @ {rate} Hz under {mname} at {threads} \
                         threads: SimReport diverged",
                        dim.w,
                        dim.h
                    ),
                    SimOutcome::Deadlocked(d) => panic!(
                        "parallel engine deadlocked where sequential completed \
                         ({mname}, {threads} threads):\n{}",
                        d.render()
                    ),
                }
            }
        }
    }
}

fn deadlocked(outcome: SimOutcome, who: &str) -> DeadlockReport {
    match outcome {
        SimOutcome::Deadlocked(d) => d,
        SimOutcome::Completed(_) => {
            panic!("{who}: expected a capacity deadlock under the 64-item pin")
        }
    }
}

/// Guarantee 2: the historical deadlock still exists behind the explicit
/// uniform pin, and both engines produce the *same structured report* —
/// wait-for cycle naming all three loop channels, full occupancies, and
/// the minimal capacity bump.
#[test]
fn pinned_capacity_reproduces_the_classic_deadlock_identically() {
    let run = |threads: Option<usize>| -> SimOutcome {
        let app = apps::temporal_iir(SMALL, SLOW);
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        let config = SimConfig::new(FRAMES).with_channel_capacity(64);
        match threads {
            None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
                .expect("instantiate")
                .run_outcome(),
            Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
                .expect("instantiate")
                .run_outcome(),
        }
    };
    let seq = deadlocked(run(None), "sequential");
    assert!(
        seq.blocked_cycle,
        "the 64-item pin must produce a wait-for cycle, got: {}",
        seq.render()
    );
    let names: Vec<String> = seq
        .cycle
        .iter()
        .map(|h| format!("{}.{} -> {}.{}", h.src, h.src_port, h.dst, h.dst_port))
        .collect();
    for channel in [
        "Mix.out -> Half.in",
        "Half.out -> FrameDelay.in",
        "FrameDelay.out -> Mix.in1",
    ] {
        assert!(
            names.iter().any(|n| n == channel),
            "wait-for cycle missing channel '{channel}': {names:?}"
        );
    }
    assert!(
        seq.cycle.iter().all(|h| h.is_full()),
        "every wait-for-cycle hop must block its producer: {}",
        seq.render()
    );
    let bump = seq
        .min_capacity_bump
        .as_ref()
        .expect("a full cycle admits a minimal capacity bump");
    assert!(bump.required > bump.current, "nonsensical bump: {bump:?}");
    for threads in [2usize, 4, 8] {
        let par = deadlocked(run(Some(threads)), "parallel");
        assert_eq!(
            seq, par,
            "structured deadlock reports diverged at {threads} threads"
        );
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "deadlock fingerprints diverged at {threads} threads"
        );
    }
}

/// Guarantee 3: the derivation is invisible to acyclic graphs. Every
/// acyclic example app's derived plan is exactly the historical flat rule
/// — the widest-row default with zero overrides — so the capacity a
/// simulation resolves is unchanged from the pre-derivation seed.
#[test]
fn acyclic_apps_keep_the_widest_row_plan() {
    type Builder = fn() -> App;
    let builders: &[(&str, Builder)] = &[
        ("fig1b", || apps::fig1b(SMALL, SLOW)),
        ("bayer", || apps::bayer(SMALL, SLOW)),
        ("histogram", || apps::histogram_app(SMALL, SLOW, 32)),
        ("parallel_buffer", || {
            apps::parallel_buffer_test(Dim2::new(64, 12), 10.0)
        }),
        ("multi_conv", || apps::multi_conv(SMALL, SLOW, 3)),
        ("fir_radio", || apps::fir_radio(72, 100.0)),
        ("edge_detect", || apps::edge_detect(SMALL, SLOW, 0.5)),
        ("analytics", || apps::analytics(SMALL, SLOW)),
        ("stereo_diff", || apps::stereo_diff(SMALL, SLOW)),
        ("camera_bank", || apps::camera_bank(3, SMALL, SLOW)),
    ];
    for (name, build) in builders {
        let app = build();
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        let report = &compiled.report.capacities;
        assert!(
            report.loops.is_empty(),
            "{name}: unexpectedly reported a feedback loop"
        );
        assert!(
            report.plan.overrides().is_empty(),
            "{name}: acyclic app gained capacity overrides {:?}",
            report.plan.overrides()
        );
        assert_eq!(
            report.plan.default,
            bp_core::capacity::derive_default_capacity(&compiled.graph),
            "{name}: plan default moved off the widest-row rule"
        );
    }
}

/// The derivation itself, as the compiler reports it: `temporal_iir` at
/// SMALL primes 20·12 + 12 + 1 = 253 items, so its single back edge is
/// sized to 254 (the whole circulating population parks there whenever
/// external input pauses, plus one item of headroom for the engine's
/// `len <= cap - 2` firing rule) while every other channel keeps the
/// 64-item default.
#[test]
fn temporal_iir_derives_exactly_one_back_edge_override() {
    let app = apps::temporal_iir(SMALL, SLOW);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let report = &compiled.report.capacities;
    assert_eq!(report.plan.default, 64);
    assert_eq!(report.loops.len(), 1);
    let lp = &report.loops[0];
    assert_eq!(lp.nodes, ["Mix", "Half", "FrameDelay"]);
    assert_eq!(lp.back_edges, ["FrameDelay.out -> Mix.in1"]);
    assert_eq!(lp.initial_tokens, 253);
    assert_eq!(lp.capacity, 254);
    assert_eq!(report.plan.overrides().len(), 1);
    assert_eq!(report.plan.overrides()[0].1, 254);
}
