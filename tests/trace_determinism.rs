//! Determinism and inertness tests for the tracing subsystem.
//!
//! Two guarantees are pinned here, across every example application:
//!
//! 1. **Tracing is inert**: enabling it changes nothing about the
//!    simulation — the `SimReport` fingerprint with tracing on equals the
//!    fingerprint with tracing off (and a deadlocking app produces the
//!    identical error either way).
//! 2. **The trace is engine-independent**: the parallel engine's merged
//!    trace is *bitwise identical* to the sequential engine's at 1, 2, 4,
//!    and 8 threads (journal-replay interleaving, DESIGN.md §10), with no
//!    ring drops at the default capacity.

use bp_apps::{apps, App, SLOW, SMALL};
use bp_compiler::{compile, CompileOptions};
use bp_core::Dim2;
use bp_sim::{
    chrome_trace_json, profile_node_weights, validate_json, ParallelTimedSimulator, SimConfig,
    SimReport, TimedSimulator, Trace, TraceOptions,
};

const FRAMES: u32 = 2;

/// Every example application, by name (kept in sync with
/// `tests/determinism.rs`).
const EXAMPLE_APPS: &[&str] = &[
    "fig1b",
    "bayer",
    "histogram",
    "parallel_buffer",
    "multi_conv",
    "temporal_iir",
    "fir_radio",
    "edge_detect",
    "analytics",
    "stereo_diff",
    "camera_bank",
];

fn build_example(name: &str) -> App {
    match name {
        "fig1b" => apps::fig1b(SMALL, SLOW),
        "bayer" => apps::bayer(SMALL, SLOW),
        "histogram" => apps::histogram_app(SMALL, SLOW, 32),
        "parallel_buffer" => apps::parallel_buffer_test(Dim2::new(64, 12), 10.0),
        "multi_conv" => apps::multi_conv(SMALL, SLOW, 3),
        "temporal_iir" => apps::temporal_iir(SMALL, SLOW),
        "fir_radio" => apps::fir_radio(72, 100.0),
        "edge_detect" => apps::edge_detect(SMALL, SLOW, 0.5),
        "analytics" => apps::analytics(SMALL, SLOW),
        "stereo_diff" => apps::stereo_diff(SMALL, SLOW),
        "camera_bank" => apps::camera_bank(3, SMALL, SLOW),
        _ => unreachable!("unknown app {name}"),
    }
}

fn run_sequential(name: &str, trace: bool) -> bp_core::Result<(SimReport, Option<Trace>)> {
    let app = build_example(name);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let mut config = SimConfig::new(FRAMES);
    if trace {
        config = config.with_trace(TraceOptions::default());
    }
    TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
        .expect("instantiate")
        .run_with_trace()
}

fn run_parallel(name: &str, threads: usize) -> bp_core::Result<(SimReport, Option<Trace>)> {
    let app = build_example(name);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = SimConfig::new(FRAMES).with_trace(TraceOptions::default());
    ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, threads)
        .expect("instantiate")
        .run_with_trace()
}

/// Tracing must not perturb the simulation: for every app, the report
/// fingerprint with tracing enabled equals the report fingerprint with
/// tracing disabled (and errors, if any, are identical).
#[test]
fn tracing_is_inert_on_every_app() {
    for &name in EXAMPLE_APPS {
        let plain = run_sequential(name, false);
        let traced = run_sequential(name, true);
        match (&plain, &traced) {
            (Ok((p, p_trace)), Ok((t, t_trace))) => {
                assert!(p_trace.is_none(), "{name}: trace returned while disabled");
                let trace = t_trace.as_ref().expect("trace returned while enabled");
                assert_eq!(
                    p.fingerprint(),
                    t.fingerprint(),
                    "{name}: enabling tracing changed the SimReport"
                );
                assert_eq!(trace.dropped, 0, "{name}: default ring wrapped");
                assert!(!trace.events.is_empty(), "{name}: empty trace");
            }
            (Err(pe), Err(te)) => assert_eq!(
                pe.to_string(),
                te.to_string(),
                "{name}: enabling tracing changed the error"
            ),
            _ => panic!("{name}: tracing changed the outcome: {plain:?} vs {traced:?}"),
        }
    }
}

/// The parallel engine's merged trace is bitwise identical to the
/// sequential engine's, at every thread count. (Apps that deadlock return
/// an error from both engines; error equality is pinned in
/// `tests/determinism.rs`.)
#[test]
fn parallel_trace_is_bitwise_identical_to_sequential() {
    for &name in EXAMPLE_APPS {
        let Ok((seq_report, seq_trace)) = run_sequential(name, true) else {
            continue;
        };
        let seq_trace = seq_trace.expect("tracing enabled");
        assert_eq!(seq_trace.dropped, 0, "{name}: sequential ring wrapped");
        for threads in [1usize, 2, 4, 8] {
            let (par_report, par_trace) =
                run_parallel(name, threads).expect("parallel run should match sequential");
            let par_trace = par_trace.expect("tracing enabled");
            assert_eq!(
                seq_report.fingerprint(),
                par_report.fingerprint(),
                "{name} at {threads} threads: SimReport diverged"
            );
            assert_eq!(par_trace.dropped, 0, "{name}: parallel ring wrapped");
            assert_eq!(
                seq_trace.events, par_trace.events,
                "{name} at {threads} threads: merged trace is not bitwise \
                 identical to the sequential trace"
            );
            assert_eq!(
                seq_trace.digest(),
                par_trace.digest(),
                "{name} at {threads} threads: trace digests diverged"
            );
        }
    }
}

/// The upgraded capacity-deadlock diagnostic names the feedback channel
/// cycle that filled, identically on both engines. The deadlock is now
/// only reachable by pinning every channel to the historical uniform 64
/// (the default feedback-aware derivation sizes the back edge so the
/// loop drains).
#[test]
fn deadlock_error_names_the_feedback_cycle() {
    let run = |threads: Option<usize>| -> bp_core::Result<SimReport> {
        let app = build_example("temporal_iir");
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        let config = SimConfig::new(FRAMES).with_channel_capacity(64);
        match threads {
            None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
                .expect("instantiate")
                .run(),
            Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
                .expect("instantiate")
                .run(),
        }
    };
    let seq_err = run(None)
        .expect_err("temporal_iir capacity-deadlocks at SMALL/SLOW when pinned to 64")
        .to_string();
    assert!(
        seq_err.contains("wait-for cycle:"),
        "deadlock error lost the cycle diagnostic: {seq_err}"
    );
    for channel in [
        "Mix.out -> Half.in",
        "Half.out -> FrameDelay.in",
        "FrameDelay.out -> Mix.in1",
    ] {
        assert!(
            seq_err.contains(channel),
            "cycle diagnostic missing channel '{channel}': {seq_err}"
        );
    }
    for threads in [2usize, 8] {
        let par_err = run(Some(threads))
            .expect_err("parallel engine must also deadlock")
            .to_string();
        assert_eq!(seq_err, par_err, "engines' deadlock diagnostics diverged");
    }
}

/// The Chrome exporter produces well-formed JSON (checked by the in-tree
/// validator) with one duration pair per traced firing.
#[test]
fn chrome_export_is_wellformed_json() {
    let (_, trace) = run_sequential("fig1b", true).expect("fig1b runs");
    let trace = trace.expect("tracing enabled");
    let json = chrome_trace_json(&trace);
    validate_json(&json).expect("exported trace must be well-formed JSON");
    let begins = json.matches("\"ph\":\"B\"").count();
    let ends = json.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "unbalanced duration events");
    assert!(begins > 0, "no firing slices exported");
    assert!(json.contains("\"ph\":\"C\""), "no counter tracks exported");
}

/// Derived metrics are self-consistent: every traced event is attributed,
/// utilization stays within [0, 1], and high-water marks agree with the
/// report's per-node queue maxima.
#[test]
fn derived_metrics_are_consistent() {
    let (report, trace) = run_sequential("fig1b", true).expect("fig1b runs");
    let trace = trace.expect("tracing enabled");
    let counts = trace.node_event_counts();
    assert_eq!(counts.len(), trace.meta.node_names.len());
    assert!(counts.iter().sum::<u64>() > 0);
    for row in trace.pe_utilization(0.005) {
        for u in row {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization out of range");
        }
    }
    for hw in trace.channel_high_water() {
        assert!(
            (hw.depth as usize) <= report.node_max_queue[hw.node],
            "trace high-water exceeds the report's max queue depth"
        );
    }
}

/// Event-weighted sharding (profiling pre-run -> `new_weighted`) may pick
/// a different component placement but must not change results by a bit.
#[test]
fn weighted_shard_plan_preserves_results() {
    let app = build_example("camera_bank");
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = SimConfig::new(FRAMES);
    let weights =
        profile_node_weights(&compiled.graph, &compiled.mapping, config.clone()).expect("profile");
    assert_eq!(weights.len(), compiled.graph.node_count());
    assert!(weights.iter().sum::<u64>() > 0, "profile saw no events");

    let baseline = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
        .expect("instantiate")
        .run()
        .expect("run");
    for threads in [2usize, 4] {
        let app2 = build_example("camera_bank");
        let compiled2 = compile(&app2.graph, &CompileOptions::default()).expect("compile");
        let sim = ParallelTimedSimulator::new_weighted(
            &compiled2.graph,
            &compiled2.mapping,
            config.clone(),
            threads,
            &weights,
        )
        .expect("instantiate");
        let report = sim.run().expect("run");
        assert_eq!(
            baseline.fingerprint(),
            report.fingerprint(),
            "weighted sharding at {threads} threads changed the report"
        );
    }
}

/// A tiny ring still yields a valid (truncated) trace: drops are counted
/// and the report is untouched.
#[test]
fn bounded_ring_truncates_without_perturbing_results() {
    let app = build_example("fig1b");
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = SimConfig::new(FRAMES).with_trace(TraceOptions::with_capacity(64));
    let (report, trace) = TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
        .expect("instantiate")
        .run_with_trace()
        .expect("run");
    let trace = trace.expect("tracing enabled");
    assert_eq!(trace.events.len(), 64, "ring should be at capacity");
    assert!(
        trace.dropped > 0,
        "a 64-event ring must have dropped events"
    );
    let (baseline, _) = run_sequential("fig1b", false).expect("fig1b runs");
    assert_eq!(
        baseline.fingerprint(),
        report.fingerprint(),
        "ring truncation perturbed the simulation"
    );
}

/// Golden report fingerprints at the reference test configuration
/// (SMALL/SLOW, 2 frames, default machine). Recorded after the
/// length-separated fingerprint fix; any change to simulation semantics
/// or to the fingerprint encoding must update these deliberately.
#[test]
fn report_fingerprints_match_golden() {
    const GOLDEN: &[(&str, u64)] = &[
        ("fig1b", 0x3fd7b8fa22f4f7fe),
        ("edge_detect", 0x5d384e84264b7f0a),
    ];
    for &(name, want) in GOLDEN {
        let (report, _) = run_sequential(name, false).expect("runs");
        assert_eq!(
            report.fingerprint(),
            want,
            "{name}: report fingerprint drifted (got {:#018x})",
            report.fingerprint()
        );
    }
}
