//! End-to-end regression tests for the inter-PE communication delay model
//! (DESIGN.md §11).
//!
//! Three guarantees are pinned here, across every example application:
//!
//! 1. **The zero model is a no-op**: `CommModel::zero()` (the default)
//!    reproduces the pre-model golden sink digests and report
//!    fingerprints bit for bit.
//! 2. **Engine equivalence under delay**: with *any* comm model, the
//!    parallel engine's `SimReport` fingerprint and sink item streams are
//!    bitwise identical to the sequential engine's at 1, 2, 4, and 8
//!    threads — including identical deadlock diagnostics where an app
//!    legitimately capacity-deadlocks.
//! 3. **Lookahead actually parallelizes**: a connected app (`fig1b`) with
//!    a positive minimum cross-shard latency executes on at least two
//!    busy shards, observed via `ParallelRunStats::shard_events`.

use bp_apps::{apps, App, SLOW, SMALL};
use bp_compiler::{compile, CompileOptions};
use bp_core::{CommModel, Dim2, Item};
use bp_sim::{ParallelTimedSimulator, SimConfig, SimReport, TimedSimulator};

const FRAMES: u32 = 2;

/// Every example application, by name (kept in sync with
/// `tests/determinism.rs`).
const EXAMPLE_APPS: &[&str] = &[
    "fig1b",
    "bayer",
    "histogram",
    "parallel_buffer",
    "multi_conv",
    "temporal_iir",
    "fir_radio",
    "edge_detect",
    "analytics",
    "stereo_diff",
    "camera_bank",
];

fn build_example(name: &str) -> App {
    match name {
        "fig1b" => apps::fig1b(SMALL, SLOW),
        "bayer" => apps::bayer(SMALL, SLOW),
        "histogram" => apps::histogram_app(SMALL, SLOW, 32),
        "parallel_buffer" => apps::parallel_buffer_test(Dim2::new(64, 12), 10.0),
        "multi_conv" => apps::multi_conv(SMALL, SLOW, 3),
        "temporal_iir" => apps::temporal_iir(SMALL, SLOW),
        "fir_radio" => apps::fir_radio(72, 100.0),
        "edge_detect" => apps::edge_detect(SMALL, SLOW, 0.5),
        "analytics" => apps::analytics(SMALL, SLOW),
        "stereo_diff" => apps::stereo_diff(SMALL, SLOW),
        "camera_bank" => apps::camera_bank(3, SMALL, SLOW),
        _ => unreachable!("unknown app {name}"),
    }
}

/// The three model shapes exercised everywhere below. Latencies are a few
/// PE cycles at the default 10^9 Hz clock — small enough to keep windows
/// plentiful, large enough that schedules genuinely shift.
fn models() -> Vec<(&'static str, CommModel)> {
    vec![
        ("zero", CommModel::zero()),
        ("uniform", CommModel::uniform(64e-9, 1e-9)),
        ("grid", CommModel::grid(32e-9, 8e-9, 1e-9)),
    ]
}

fn config_with(comm: &CommModel) -> SimConfig {
    SimConfig::new(FRAMES).with_comm(comm.clone())
}

fn run_seq(name: &str, comm: &CommModel) -> (bp_core::Result<SimReport>, Vec<Vec<Item>>) {
    let app = build_example(name);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let out = TimedSimulator::new(&compiled.graph, &compiled.mapping, config_with(comm))
        .expect("instantiate")
        .run();
    let items = app.sinks.iter().map(|(_, h)| h.items()).collect();
    (out, items)
}

fn run_par(
    name: &str,
    comm: &CommModel,
    threads: usize,
) -> (bp_core::Result<SimReport>, Vec<Vec<Item>>) {
    let app = build_example(name);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let out = ParallelTimedSimulator::new(
        &compiled.graph,
        &compiled.mapping,
        config_with(comm),
        threads,
    )
    .expect("instantiate")
    .run();
    let items = app.sinks.iter().map(|(_, h)| h.items()).collect();
    (out, items)
}

/// FNV-1a over the raw bit patterns of the samples (same digest as
/// `tests/determinism.rs`).
fn digest(samples: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in samples {
        for b in s.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// With the default zero model, sink output and report fingerprints
/// reproduce the goldens recorded before the comm-model subsystem
/// existed: the model's plumbing must be invisible when every latency is
/// zero.
#[test]
fn zero_model_reproduces_pinned_goldens() {
    const SINK_GOLDEN: &[(&str, u64, usize)] = &[
        ("fig1b", 0x4c09dd9a8495acaa, 64),
        ("edge_detect", 0x5a178332b5193325, 256),
    ];
    const REPORT_GOLDEN: &[(&str, u64)] = &[
        ("fig1b", 0x3fd7b8fa22f4f7fe),
        ("edge_detect", 0x5d384e84264b7f0a),
    ];
    for &(name, want_digest, want_count) in SINK_GOLDEN {
        let (out, items) = run_seq(name, &CommModel::zero());
        out.expect("runs");
        let samples: Vec<f64> = items[0]
            .iter()
            .filter_map(|i| i.window().map(|w| w.samples().to_vec()))
            .flatten()
            .collect();
        assert_eq!(samples.len(), want_count, "{name}: sample count");
        assert_eq!(
            digest(&samples),
            want_digest,
            "{name}: zero comm model changed the sink output"
        );
    }
    for &(name, want) in REPORT_GOLDEN {
        let (out, _) = run_seq(name, &CommModel::zero());
        let report = out.expect("runs");
        assert_eq!(
            report.fingerprint(),
            want,
            "{name}: zero comm model changed the report fingerprint"
        );
    }
}

/// For every app × model × thread count, the parallel engine is bitwise
/// identical to the sequential one: same fingerprint and same sink items
/// on success, or the identical error string where an app deadlocks
/// (none do by default now that feedback loops size their own back-edge
/// capacities — the Err arm is kept for symmetry).
#[test]
fn parallel_matches_sequential_under_every_model() {
    for &name in EXAMPLE_APPS {
        for (mname, comm) in models() {
            let (seq, seq_items) = run_seq(name, &comm);
            for threads in [1usize, 2, 4, 8] {
                let (par, par_items) = run_par(name, &comm, threads);
                match (&seq, &par) {
                    (Ok(s), Ok(p)) => assert_eq!(
                        s.fingerprint(),
                        p.fingerprint(),
                        "{name} under {mname} at {threads} threads: SimReport diverged"
                    ),
                    (Err(se), Err(pe)) => assert_eq!(
                        se.to_string(),
                        pe.to_string(),
                        "{name} under {mname} at {threads} threads: error diverged"
                    ),
                    _ => panic!(
                        "{name} under {mname} at {threads} threads: outcomes diverged: \
                         seq={seq:?} par={par:?}"
                    ),
                }
                assert_eq!(
                    seq_items, par_items,
                    "{name} under {mname} at {threads} threads: sink items diverged"
                );
            }
        }
    }
}

/// A nonzero model genuinely changes the schedule (it is not silently
/// ignored): fig1b's report fingerprint differs between the zero and
/// uniform models, while its sink output — the functional result — stays
/// identical.
#[test]
fn nonzero_model_shifts_the_schedule_but_not_the_output() {
    let (zero, zero_items) = run_seq("fig1b", &CommModel::zero());
    let (delayed, delayed_items) = run_seq("fig1b", &CommModel::uniform(64e-9, 1e-9));
    let zero = zero.expect("runs");
    let delayed = delayed.expect("runs");
    assert_ne!(
        zero.fingerprint(),
        delayed.fingerprint(),
        "a 64-cycle uniform delay left the timed report untouched — \
         the comm model is being ignored"
    );
    assert!(
        delayed.sim_time > zero.sim_time,
        "delay did not extend simulated time ({} vs {})",
        delayed.sim_time,
        zero.sim_time
    );
    assert_eq!(
        zero_items, delayed_items,
        "comm delay changed *what* was computed, not just when"
    );
}

/// Grid distance matters: under a pure per-hop model, fig1b's one-to-one
/// mapping (more PEs, longer routes) yields a different schedule than the
/// same model with uniform latency of equal base. Checks the hop term is
/// wired through `channel_latency_s`.
#[test]
fn grid_model_distance_term_is_honored() {
    let app = build_example("fig1b");
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    // per-hop only: distance-1 neighbors pay 8 ns, distant pairs pay more.
    let grid = CommModel::grid(0.0, 8e-9, 0.0);
    let flat = CommModel::uniform(8e-9, 0.0);
    let run = |comm: &CommModel| {
        TimedSimulator::new(&compiled.graph, &compiled.mapping, config_with(comm))
            .expect("instantiate")
            .run()
            .expect("runs")
            .fingerprint()
    };
    // The mapped graph must contain at least one channel whose PEs sit
    // more than one hop apart, otherwise the two models coincide.
    let n = compiled.mapping.num_pes;
    let far = compiled.graph.channels().any(|(_, c)| {
        let a = compiled.mapping.pe_of_node[c.src.node.0];
        let b = compiled.mapping.pe_of_node[c.dst.node.0];
        a != b && grid.hops(a, b, n) > 1
    });
    assert!(far, "test premise: need a multi-hop channel in fig1b");
    assert_ne!(
        run(&grid),
        run(&flat),
        "per-hop latencies collapsed to uniform — grid distance ignored"
    );
}

/// The tentpole scalability claim: with a positive minimum cross-shard
/// latency, a *connected* app no longer degrades to one shard — fig1b
/// executes on at least two shards, each of which processes events.
#[test]
fn connected_app_fans_out_under_positive_lookahead() {
    let app = build_example("fig1b");
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let comm = CommModel::uniform(64e-9, 0.0);
    let sim =
        ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config_with(&comm), 4)
            .expect("instantiate");
    let (report, _, stats) = sim.run_with_stats().expect("runs");
    assert!(
        stats.shards >= 2,
        "fig1b sharded into {} shard(s) despite positive lookahead",
        stats.shards
    );
    assert!(
        stats.lookahead_s > 0.0 && stats.lookahead_s.is_finite(),
        "expected finite positive lookahead, got {}",
        stats.lookahead_s
    );
    assert!(stats.windows > 0, "no conservative windows were executed");
    let busy = stats.shard_events.iter().filter(|&&n| n > 0).count();
    assert!(
        busy >= 2,
        "only {busy} shard(s) processed events: {:?}",
        stats.shard_events
    );
    // And the fanned-out run still matches the sequential engine.
    let (seq, _) = run_seq("fig1b", &comm);
    assert_eq!(seq.expect("runs").fingerprint(), report.fingerprint());
}

/// With feedback-aware capacity derivation, `temporal_iir` only
/// deadlocks when an explicit uniform capacity pin disables the loop
/// sizing. Under that pin and a nonzero model, the wait-for-cycle
/// diagnostic must still name the feedback channels, identically on both
/// engines (sender-side credit accounting replaces direct queue
/// inspection for delayed channels).
#[test]
fn deadlock_diagnostic_is_stable_under_delay() {
    let comm = CommModel::uniform(64e-9, 1e-9);
    let run = |threads: Option<usize>| -> bp_core::Result<SimReport> {
        let app = build_example("temporal_iir");
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        let config = config_with(&comm).with_channel_capacity(64);
        match threads {
            None => TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
                .expect("instantiate")
                .run(),
            Some(t) => ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, t)
                .expect("instantiate")
                .run(),
        }
    };
    let seq_err = run(None)
        .expect_err("temporal_iir deadlocks at SMALL/SLOW when pinned to 64")
        .to_string();
    assert!(
        seq_err.contains("wait-for cycle:"),
        "deadlock error lost the cycle diagnostic under delay: {seq_err}"
    );
    for channel in [
        "Mix.out -> Half.in",
        "Half.out -> FrameDelay.in",
        "FrameDelay.out -> Mix.in1",
    ] {
        assert!(
            seq_err.contains(channel),
            "cycle diagnostic missing channel '{channel}': {seq_err}"
        );
    }
    for threads in [2usize, 8] {
        let par_err = run(Some(threads))
            .expect_err("parallel engine must also deadlock")
            .to_string();
        assert_eq!(
            seq_err, par_err,
            "deadlock diagnostics diverged at {threads} threads under delay"
        );
    }
}
