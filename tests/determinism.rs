//! Determinism regression tests for the simulator hot path.
//!
//! The zero-copy optimizations (shared window payloads, interned method
//! tables, ready-set scheduling) must not change observable behavior by a
//! single bit. These tests pin the functional output of reference
//! pipelines to golden digests, check that repeated runs and the timed
//! simulator reproduce the exact same item stream (windows *and* control
//! tokens), and that the timed schedule itself is stable.

use bp_apps::{apps, App, SLOW, SMALL};
use bp_compiler::{compile, CompileOptions};
use bp_core::{Dim2, Item, MachineSpec};
use bp_sim::{FunctionalExecutor, ParallelTimedSimulator, SimConfig, TimedSimulator};

const FRAMES: u32 = 2;

/// FNV-1a over the raw bit patterns of the samples: any single-bit change
/// anywhere in the output stream changes the digest.
fn digest(samples: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in samples {
        for b in s.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Compile and run `app` functionally; return the first sink's item stream.
fn run_functional(app: &App) -> Vec<Item> {
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
    ex.run_frames(FRAMES).expect("run");
    assert_eq!(ex.residual_items(), 0);
    app.sinks[0].1.items()
}

/// Compile and run `app` on the timed simulator; return the first sink's
/// item stream.
fn run_timed(app: &App) -> Vec<Item> {
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
    let config = SimConfig::new(FRAMES);
    TimedSimulator::new(&compiled.graph, &compiled.mapping, config)
        .expect("instantiate")
        .run()
        .expect("run");
    app.sinks[0].1.items()
}

fn samples_of(items: &[Item]) -> Vec<f64> {
    items
        .iter()
        .filter_map(|i| i.window().map(|w| w.samples().to_vec()))
        .flatten()
        .collect()
}

/// Golden digests of functional output at 20x12 @ 50 Hz for two frames.
/// Recorded before the zero-copy rework; any future change to window
/// storage, scheduling, or routing must reproduce them exactly.
/// fig1b ends in a 32-bin histogram (counts); edge_detect emits a dense
/// thresholded image, exercising multi-sample window payloads.
const GOLDEN: &[(&str, u64, usize, usize)] = &[
    // (app, sample digest, sample count, control-token count)
    ("fig1b", 0x4c09dd9a8495acaa, 64, 2),
    ("edge_detect", 0x5a178332b5193325, 256, 18),
];

fn build(name: &str) -> App {
    match name {
        "fig1b" => apps::fig1b(SMALL, SLOW),
        "edge_detect" => apps::edge_detect(SMALL, SLOW, 0.5),
        _ => unreachable!(),
    }
}

#[test]
fn functional_output_matches_golden_digest() {
    for &(name, want_digest, want_count, want_tokens) in GOLDEN {
        let items = run_functional(&build(name));
        let samples = samples_of(&items);
        let tokens = items.iter().filter(|i| !i.is_window()).count();
        assert_eq!(samples.len(), want_count, "{name}: sample count");
        assert_eq!(tokens, want_tokens, "{name}: token count");
        assert_eq!(
            digest(&samples),
            want_digest,
            "{name}: output digest changed — functional behavior is no longer bit-identical"
        );
    }
}

/// Two functional runs of the same app produce identical item streams,
/// tokens included.
#[test]
fn repeated_functional_runs_are_bit_identical() {
    for &(name, ..) in GOLDEN {
        let a = run_functional(&build(name));
        let b = run_functional(&build(name));
        assert_eq!(a, b, "{name}: functional run not reproducible");
    }
}

/// The timed simulator delivers the exact same items to the sink as the
/// untimed functional executor: timing annotations reorder *when* kernels
/// fire, never *what* they compute.
#[test]
fn timed_matches_functional_bitwise() {
    for &(name, ..) in GOLDEN {
        let f = run_functional(&build(name));
        let t = run_timed(&build(name));
        assert_eq!(f, t, "{name}: timed and functional outputs diverge");
    }
}

/// Every example application, by name; each build yields fresh sink handles.
const EXAMPLE_APPS: &[&str] = &[
    "fig1b",
    "bayer",
    "histogram",
    "parallel_buffer",
    "multi_conv",
    "temporal_iir",
    "fir_radio",
    "edge_detect",
    "analytics",
    "stereo_diff",
    "camera_bank",
];

fn build_example(name: &str) -> App {
    match name {
        "fig1b" => apps::fig1b(SMALL, SLOW),
        "bayer" => apps::bayer(SMALL, SLOW),
        "histogram" => apps::histogram_app(SMALL, SLOW, 32),
        "parallel_buffer" => apps::parallel_buffer_test(Dim2::new(64, 12), 10.0),
        "multi_conv" => apps::multi_conv(SMALL, SLOW, 3),
        "temporal_iir" => apps::temporal_iir(SMALL, SLOW),
        "fir_radio" => apps::fir_radio(72, 100.0),
        "edge_detect" => apps::edge_detect(SMALL, SLOW, 0.5),
        "analytics" => apps::analytics(SMALL, SLOW),
        "stereo_diff" => apps::stereo_diff(SMALL, SLOW),
        "camera_bank" => apps::camera_bank(3, SMALL, SLOW),
        _ => unreachable!("unknown app {name}"),
    }
}

/// The sharded parallel timed simulator must be *bitwise* identical to the
/// sequential one — every report field (times, rates, latencies, firing
/// counts, queue depths) and every sink item — for every example app, at
/// every worker count, on more than one machine spec. Connected apps
/// degrade to one shard (exercising the fallback); `camera_bank` actually
/// fans out across workers.
#[test]
fn parallel_timed_is_bitwise_identical_to_sequential() {
    let machines = [
        ("default_eval", MachineSpec::default_eval()),
        ("tight_memory", MachineSpec::tight_memory()),
    ];
    for &name in EXAMPLE_APPS {
        for (mname, machine) in machines {
            let opts = CompileOptions {
                machine,
                ..Default::default()
            };
            let config = SimConfig::new(FRAMES).with_machine(machine);
            let app = build_example(name);
            let compiled = compile(&app.graph, &opts).expect("compile");
            let seq = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate")
                .run();
            let seq_items: Vec<Vec<Item>> = app.sinks.iter().map(|(_, h)| h.items()).collect();
            for threads in [1usize, 2, 4, 8] {
                let app2 = build_example(name);
                let compiled2 = compile(&app2.graph, &opts).expect("compile");
                let par = ParallelTimedSimulator::new(
                    &compiled2.graph,
                    &compiled2.mapping,
                    config.clone(),
                    threads,
                )
                .expect("instantiate")
                .run();
                match (&seq, &par) {
                    (Ok(s), Ok(p)) => assert_eq!(
                        s.fingerprint(),
                        p.fingerprint(),
                        "{name} on {mname} with {threads} threads: SimReport diverged"
                    ),
                    // No example deadlocks at default capacities any more
                    // (feedback-aware derivation), but if one ever does,
                    // both engines must diagnose it identically.
                    (Err(se), Err(pe)) => assert_eq!(
                        se.to_string(),
                        pe.to_string(),
                        "{name} on {mname} with {threads} threads: error diverged"
                    ),
                    _ => panic!(
                        "{name} on {mname} with {threads} threads: outcomes diverged: \
                         seq={seq:?} par={par:?}"
                    ),
                }
                let par_items: Vec<Vec<Item>> = app2.sinks.iter().map(|(_, h)| h.items()).collect();
                assert_eq!(
                    seq_items, par_items,
                    "{name} on {mname} with {threads} threads: sink items diverged"
                );
            }
        }
    }
}

/// The timed schedule itself is stable: firing counts, simulated time, and
/// frame latencies reproduce bit-for-bit across runs.
#[test]
fn timed_schedule_is_stable() {
    let run = || {
        let app = apps::fig1b(SMALL, SLOW);
        let compiled = compile(&app.graph, &CompileOptions::default()).expect("compile");
        TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(FRAMES))
            .expect("instantiate")
            .run()
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.node_firings, b.node_firings);
    assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
    let la: Vec<u64> = a.frame_latencies.iter().map(|x| x.to_bits()).collect();
    let lb: Vec<u64> = b.frame_latencies.iter().map(|x| x.to_bits()).collect();
    assert_eq!(la, lb);
}
