//! The paper's running example (Fig. 1(b)) end to end: a non-linear image
//! analysis pipeline — 3x3 median and 5x5 convolution into a per-pixel
//! subtract, then a 32-bin histogram with a serial per-frame merge.
//!
//! Shows the full compiler output (buffers, inset, parallelization,
//! mapping), verifies real-time behaviour at a fast input rate, and checks
//! the result against a direct array-math golden model.
//!
//! Run with: `cargo run --example image_pipeline`

use block_parallel::apps::{fig1b, presets, reference};
use block_parallel::prelude::*;

fn main() {
    // Small frame at the fast (200 Hz) rate: the compiler must parallelize
    // the convolution x3 and the median x2 to keep up (paper Fig. 4).
    let app = fig1b(presets::SMALL, presets::FAST);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compiles");
    println!("== compiler report ==\n{}", summarize(&compiled));

    let frames = 4;
    let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(frames))
        .expect("instantiate")
        .run()
        .expect("simulate");
    println!(
        "== timed simulation ==\nreal-time met: {} ({} violations), achieved {:.1} Hz",
        report.verdict.met, report.verdict.violations, report.verdict.achieved_rate_hz
    );
    let (run, read, write) = report.utilization_breakdown();
    println!(
        "utilization: {:.1}% (run {:.1}%, read {:.1}%, write {:.1}%) on {} PEs",
        100.0 * (run + read + write),
        100.0 * run,
        100.0 * read,
        100.0 * write,
        report.num_pes()
    );

    // Verify against the golden model, frame by frame.
    println!("\n== per-frame histogram (32 bins over the median-conv difference) ==");
    for (f, counts) in app.sinks[0].1.frames().iter().enumerate() {
        let expected = reference::fig1b_expected(
            presets::SMALL.w,
            presets::SMALL.h,
            f as u32,
            32,
            -128.0,
            128.0,
        );
        assert_eq!(
            counts, &expected,
            "frame {f} diverged from the golden model"
        );
        let peak_bin = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let total: f64 = counts.iter().sum();
        println!("frame {f}: {total:.0} samples, peak bin {peak_bin} — matches golden model");
    }
    assert!(report.verdict.met);
    println!("\nall {frames} frames bit-identical to the reference implementation.");
}
