//! Bayer demosaicing (benchmark 1 of the paper's evaluation): one color-
//! filter-array input, three color-plane outputs from a single kernel —
//! demonstrating multiple outputs per kernel and per-quad block processing.
//!
//! Run with: `cargo run --example bayer_pipeline`

use block_parallel::apps::{bayer, presets, reference};
use block_parallel::prelude::*;

fn main() {
    let app = bayer(presets::SMALL, presets::FAST);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compiles");
    println!("{}", summarize(&compiled));

    let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(2))
        .expect("instantiate")
        .run()
        .expect("simulate");
    println!(
        "real-time met: {} at {:.1} Hz on {} PEs\n",
        report.verdict.met,
        report.verdict.achieved_rate_hz,
        report.num_pes()
    );

    // Reassemble the R plane of frame 0 from its 2x2 quads and compare a
    // few samples against the direct reference.
    let img = reference::pattern_frame(presets::SMALL.w, presets::SMALL.h, 0);
    let (er, eg, eb) = reference::bayer_expected(&img);
    for (idx, (name, expected)) in [("R", er), ("G", eg), ("B", eb)].iter().enumerate() {
        let window_rows = &app.sinks[idx].1.frame_window_rows()[0];
        let mut got_rows: Vec<Vec<f64>> = Vec::new();
        for group in window_rows {
            for sub in 0..2u32 {
                let mut row = Vec::new();
                for w in group {
                    for x in 0..w.width() {
                        row.push(w.get(x, sub));
                    }
                }
                got_rows.push(row);
            }
        }
        assert_eq!(&got_rows, expected, "{name} plane diverged");
        println!(
            "{name} plane: {}x{} reconstructed, first row: {:?}",
            got_rows[0].len(),
            got_rows.len(),
            &got_rows[0][..4]
        );
    }
    println!("\nall three demosaiced planes are bit-identical to the reference.");
}
