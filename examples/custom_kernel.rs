//! Writing your own kernels: a two-kernel auto-exposure chain showing the
//! programmer-facing API — multiple methods sharing private state, handlers
//! for the automatic end-of-frame token, and a *user-defined* control token
//! with a declared maximum rate (§II-C).
//!
//! `MeanDetector` passes pixels through while accumulating a per-frame
//! mean; when the mean exceeds a threshold it emits an `OVEREXPOSED`
//! control token (in order with the data). `AdaptiveGain` scales pixels and
//! halves its gain whenever that token arrives — control and data
//! processing stay separate methods but communicate through kernel state.
//!
//! Run with: `cargo run --example custom_kernel`

use block_parallel::prelude::*;
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::CustomTokenDecl;
use bp_core::{Emitter, FireData};

/// Token id for the over-exposure flag.
const OVEREXPOSED: u16 = 1;

struct MeanDetector {
    threshold: f64,
    sum: f64,
    count: u64,
}

impl KernelBehavior for MeanDetector {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "pass" => {
                let v = d.window("in").as_scalar();
                self.sum += v;
                self.count += 1;
                out.window("out", Window::scalar(v));
            }
            "endFrame" => {
                let mean = if self.count > 0 {
                    self.sum / self.count as f64
                } else {
                    0.0
                };
                if mean > self.threshold {
                    // Emitted in order, before the end-of-frame.
                    out.token("out", ControlToken::Custom(OVEREXPOSED));
                }
                out.token("out", ControlToken::EndOfFrame);
                self.sum = 0.0;
                self.count = 0;
            }
            other => panic!("mean detector has no method '{other}'"),
        }
    }
}

fn mean_detector(threshold: f64, frame_rate_hz: f64) -> KernelDef {
    let spec = KernelSpec::new("mean_detector")
        .with_parallelism(Parallelism::Serial) // cross-frame accumulator
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "pass",
            "in",
            vec!["out".into()],
            MethodCost::new(3, 2),
        ))
        .method(MethodSpec::on_token(
            "endFrame",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(8, 2),
        ))
        // Declare the custom token and its statically bounded rate so the
        // compiler can budget cycles for downstream handlers.
        .custom_token(CustomTokenDecl {
            id: OVEREXPOSED,
            name: "OVEREXPOSED".into(),
            max_rate_hz: frame_rate_hz,
        })
        .with_state_words(2);
    KernelDef::new(spec, move || MeanDetector {
        threshold,
        sum: 0.0,
        count: 0,
    })
}

struct AdaptiveGain {
    gain: f64,
    adjustments: u32,
}

impl KernelBehavior for AdaptiveGain {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "apply" => {
                let v = d.window("in").as_scalar();
                out.window("out", Window::scalar(v * self.gain));
            }
            "onOverexposed" => {
                self.gain *= 0.5;
                self.adjustments += 1;
            }
            other => panic!("adaptive gain has no method '{other}'"),
        }
    }
}

fn adaptive_gain(frame_rate_hz: f64) -> KernelDef {
    let spec = KernelSpec::new("adaptive_gain")
        .with_parallelism(Parallelism::Serial) // gain persists across frames
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "apply",
            "in",
            vec!["out".into()],
            MethodCost::new(4, 1),
        ))
        .method(
            MethodSpec::on_token(
                "onOverexposed",
                "in",
                TokenKind::Custom(OVEREXPOSED),
                vec![],
                MethodCost::new(2, 1),
            )
            .with_max_rate(frame_rate_hz),
        )
        .with_state_words(2);
    KernelDef::new(spec, move || AdaptiveGain {
        gain: 1.0,
        adjustments: 0,
    })
}

fn main() {
    let dim = Dim2::new(8, 6);
    let rate = 30.0;
    let mut b = GraphBuilder::new();
    // Frames get brighter over time, so later frames trip the detector.
    let src = b.add_source(
        "Input",
        frame_source(
            dim,
            std::sync::Arc::new(|f, x, y| (f * 40) as f64 + (y * 8 + x) as f64 * 0.25),
        ),
        dim,
        rate,
    );
    let det = b.add("Detector", mean_detector(100.0, rate));
    let agc = b.add("AGC", adaptive_gain(rate));
    let (sdef, result) = sink();
    let out = b.add("Out", sdef);
    b.connect(src, "out", det, "in");
    b.connect(det, "out", agc, "in");
    b.connect(agc, "out", out, "in");
    let app = b.build().expect("valid graph");

    let compiled = compile(&app, &CompileOptions::default()).expect("compiles");
    println!("{}", summarize(&compiled));

    let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(6))
        .expect("instantiate")
        .run()
        .expect("simulate");
    assert!(report.verdict.met);

    // Frames 0..2 have mean < 100 (gain 1.0); from frame 3 on the detector
    // fires each frame and the gain halves: 0.5, 0.25, 0.125.
    println!("per-frame first sample (gain visible in the scaling):");
    for (f, frame) in result.frames().iter().enumerate() {
        println!(
            "  frame {f}: first={:>8.3} mean={:>8.3}",
            frame[0],
            frame.iter().sum::<f64>() / frame.len() as f64
        );
    }
    let frames = result.frames();
    assert_eq!(frames[0][0], 0.0);
    // Frame 3 was emitted with gain still 1.0? No: the token precedes the
    // next frame's data, so frame 4 is the first scaled one. Verify the
    // last frame is scaled down by at least 4x relative to unscaled input.
    let unscaled_first = (5u32 * 40) as f64;
    assert!(frames[5][0] < unscaled_first / 2.0);
    println!("\nadaptive gain reacted to the OVEREXPOSED control token as expected.");
}
