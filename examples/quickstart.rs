//! Quickstart: describe a small real-time application, compile it, and
//! verify its throughput on the timing-accurate simulator.
//!
//! Run with: `cargo run --example quickstart`

use block_parallel::prelude::*;

fn main() {
    // 1. Describe the application: a 20x12 input at 50 frames/s through a
    //    3x3 median filter. No buffers, no parallelism — the compiler adds
    //    whatever the real-time rate requires.
    let dim = Dim2::new(20, 12);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", pattern_source(dim), dim, 50.0);
    let med = b.add("Median", median(3, 3));
    let (out_def, result) = sink();
    let out = b.add("Out", out_def);
    b.connect(src, "out", med, "in");
    b.connect(med, "out", out, "in");
    let app = b.build().expect("valid graph");

    // 2. Compile: data-flow analysis, buffering, alignment, parallelization
    //    and kernel-to-PE mapping, against the default machine description.
    let compiled = compile(&app, &CompileOptions::default()).expect("compiles");
    println!("{}", summarize(&compiled));

    // 3. Simulate with timing and check the hard real-time constraint.
    let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(3))
        .expect("instantiate")
        .run()
        .expect("simulate");
    println!(
        "real-time: met={} achieved {:.1} Hz (required {:.0} Hz), \
         utilization {:.1}% across {} PEs",
        report.verdict.met,
        report.verdict.achieved_rate_hz,
        report.verdict.required_rate_hz,
        100.0 * report.avg_utilization(),
        report.num_pes(),
    );

    // 4. The sink holds the computed frames (18x10 after the median halo).
    let frames = result.frame_rows();
    println!(
        "collected {} frames of {}x{} median output; first row: {:?}",
        frames.len(),
        frames[0][0].len(),
        frames[0].len(),
        &frames[0][0][..6.min(frames[0][0].len())]
    );
    assert!(report.verdict.met);
    assert_eq!(frames.len(), 3);
}
