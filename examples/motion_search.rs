//! Data-dependent kernel costs and runtime resource exceptions — the §VII
//! extension the paper sketches with its motion-vector-search example.
//!
//! The `motion_search` kernel's per-iteration work varies with the data
//! (early exit when a good match is found). The declared method cost is its
//! compile-time *budget*: with a sound worst-case budget the timed
//! simulation is exception-free; with an optimistic budget the simulator
//! records a budget-overrun exception for every firing that runs long.
//!
//! Run with: `cargo run --example motion_search`

use block_parallel::prelude::*;
use bp_kernels::{motion_search, SEARCH_BASE_CYCLES, SEARCH_POSITION_CYCLES};

fn build(budget_positions: u64) -> (bp_core::AppGraph, SinkHandle) {
    let dim = Dim2::new(20, 12);
    let mut b = GraphBuilder::new();
    // Alternating flat / busy rows: flat regions exit the search early,
    // busy regions run the full nine candidates.
    let src = b.add_source(
        "Input",
        frame_source(
            dim,
            std::sync::Arc::new(|_f, x, y| {
                if (y / 2) % 2 == 0 {
                    10.0 // flat: early exit
                } else {
                    ((x * 37 + y * 101) % 91) as f64 // busy: long search
                }
            }),
        ),
        dim,
        50.0,
    );
    let ms = b.add("MotionSearch", motion_search(0.5, budget_positions));
    let (sdef, h) = sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", ms, "in");
    b.connect(ms, "out", snk, "in");
    (b.build().expect("valid graph"), h)
}

fn run(budget_positions: u64) -> (u64, bool, Vec<f64>) {
    let (g, h) = build(budget_positions);
    let compiled = compile(&g, &CompileOptions::default()).expect("compiles");
    let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(2))
        .expect("instantiate")
        .run()
        .expect("simulate");
    (
        report.total_budget_overruns(),
        report.verdict.met,
        h.frames().first().cloned().unwrap_or_default(),
    )
}

fn main() {
    println!(
        "motion search: base {SEARCH_BASE_CYCLES} cycles + {SEARCH_POSITION_CYCLES}/candidate\n"
    );

    let (overruns_worst, met_worst, out_worst) = run(9);
    println!(
        "worst-case budget (9 candidates): {} overruns, real-time met: {}",
        overruns_worst, met_worst
    );

    let (overruns_opt, met_opt, out_opt) = run(2);
    println!(
        "optimistic budget (2 candidates): {} overruns, real-time met: {}",
        overruns_opt, met_opt
    );

    // The budget only affects accounting, never results.
    assert_eq!(out_worst, out_opt);
    assert_eq!(overruns_worst, 0, "sound budget must be exception-free");
    assert!(
        overruns_opt > 0,
        "optimistic budget must raise runtime exceptions"
    );
    println!(
        "\nresults identical under both budgets ({} SAD values/frame);",
        out_worst.len()
    );
    println!("the optimistic allocation is flagged by runtime exceptions exactly as");
    println!("§VII prescribes for kernels whose processing time varies with the data.");
}
