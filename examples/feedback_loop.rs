//! Feedback support (§III-D): a temporal IIR filter where each output frame
//! is the average of the current input frame and the previous output frame.
//! The cycle is broken by a feedback kernel that primes the loop with an
//! initial zero frame and then passes values through; the data-flow
//! analysis handles the loop with its work-list traversal, and the
//! compiler's feedback-aware capacity derivation sizes the loop's back
//! edge to hold the primed population — no manual
//! `with_channel_capacity` override is needed to keep the loop live.
//!
//! Run with: `cargo run --example feedback_loop`

use block_parallel::apps::{reference, temporal_iir, SLOW, SMALL};
use block_parallel::prelude::*;

fn main() {
    let dim = SMALL; // 20x12 — the loop primes 20*12 + 12 + 1 = 253 items
    let app = temporal_iir(dim, SLOW);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compiles");
    println!("{}", summarize(&compiled));

    // The derivation found the loop and sized its back edge: the whole
    // primed population parks there whenever input pauses, so the bound
    // is population + 1 (the engine lets a producer fire while the
    // destination holds at most capacity - 2 items).
    for lp in &compiled.report.capacities.loops {
        println!(
            "derived: loop [{}] primes {} items -> back edge {} sized to {}",
            lp.nodes.join(", "),
            lp.initial_tokens,
            lp.back_edges.join(", "),
            lp.capacity
        );
    }

    // Timed run under the *default* configuration: no capacity override
    // anywhere. Before the derivation this deadlocked at the flat 64-item
    // default once the loop had to park its 253 circulating items. (A
    // fresh app instance, so its sink doesn't mix into the recurrence
    // check below.)
    let frames = 5;
    let timed_app = temporal_iir(dim, SLOW);
    let timed = compile(&timed_app.graph, &CompileOptions::default()).expect("compiles");
    let report = TimedSimulator::new(&timed.graph, &timed.mapping, SimConfig::new(frames))
        .expect("instantiate")
        .run()
        .expect("the derived capacities keep the loop live");
    println!(
        "timed: {frames} frames in {:.6}s simulated, real-time met: {}\n",
        report.sim_time, report.verdict.met
    );

    let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
    ex.run_frames(frames).expect("run");
    // The final feedback frame legitimately keeps circulating.
    println!(
        "residual items in the loop after {frames} frames: {} (one frame + tokens)\n",
        ex.residual_items()
    );

    // Golden recurrence: out_f = 0.5 * (in_f + out_{f-1}), out_{-1} = 0.
    let mut prev = vec![0.0; dim.area() as usize];
    println!("frame |   input[0]  output[0]  expected[0]");
    for (f, got) in app.sinks[0].1.frames().iter().enumerate() {
        let input: Vec<f64> = reference::pattern_frame(dim.w, dim.h, f as u32)
            .into_iter()
            .flatten()
            .collect();
        let expected: Vec<f64> = input
            .iter()
            .zip(&prev)
            .map(|(i, p)| 0.5 * (i + p))
            .collect();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "frame {f} diverged");
        }
        println!(
            "{f:>5} | {:>10.3} {:>10.3} {:>12.3}",
            input[0], got[0], expected[0]
        );
        prev = expected;
    }
    println!("\nIIR recurrence verified over {frames} frames — the frame-delay feedback");
    println!("loop (primed with zeros) behaves exactly like the reference filter.");
}
