//! Feedback support (§III-D): a temporal IIR filter where each output frame
//! is the average of the current input frame and the previous output frame.
//! The cycle is broken by a feedback kernel that primes the loop with an
//! initial zero frame and then passes values through; the data-flow
//! analysis handles the loop with its work-list traversal.
//!
//! Run with: `cargo run --example feedback_loop`

use block_parallel::apps::{reference, temporal_iir};
use block_parallel::prelude::*;

fn main() {
    let dim = Dim2::new(6, 4);
    let app = temporal_iir(dim, 25.0);
    let compiled = compile(&app.graph, &CompileOptions::default()).expect("compiles");
    println!("{}", summarize(&compiled));

    let frames = 5;
    let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
    ex.run_frames(frames).expect("run");
    // The final feedback frame legitimately keeps circulating.
    println!(
        "residual items in the loop after {frames} frames: {} (one frame + tokens)\n",
        ex.residual_items()
    );

    // Golden recurrence: out_f = 0.5 * (in_f + out_{f-1}), out_{-1} = 0.
    let mut prev = vec![0.0; dim.area() as usize];
    println!("frame |   input[0]  output[0]  expected[0]");
    for (f, got) in app.sinks[0].1.frames().iter().enumerate() {
        let input: Vec<f64> = reference::pattern_frame(dim.w, dim.h, f as u32)
            .into_iter()
            .flatten()
            .collect();
        let expected: Vec<f64> = input
            .iter()
            .zip(&prev)
            .map(|(i, p)| 0.5 * (i + p))
            .collect();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "frame {f} diverged");
        }
        println!(
            "{f:>5} | {:>10.3} {:>10.3} {:>12.3}",
            input[0], got[0], expected[0]
        );
        prev = expected;
    }
    println!("\nIIR recurrence verified over {frames} frames — the frame-delay feedback");
    println!("loop (primed with zeros) behaves exactly like the reference filter.");
}
