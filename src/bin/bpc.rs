//! `bpc` — the block-parallel compiler driver.
//!
//! Compile a bundled application for a machine description, print the
//! compiler report, optionally dump Graphviz, and verify the real-time
//! constraint on the timing-accurate simulator.
//!
//! ```text
//! bpc --app fig1b --width 20 --height 12 --rate 200 --policy trim \
//!     --mapping greedy --frames 3 [--dot out.dot] [--quiet]
//! ```

use block_parallel::apps;
use block_parallel::prelude::*;
use std::process::ExitCode;

struct Args {
    app: String,
    width: u32,
    height: u32,
    rate: f64,
    policy: AlignPolicy,
    mapping: MappingKind,
    frames: u32,
    dot: Option<String>,
    trace: Option<String>,
    comm: String,
    backend: Backend,
    capacity: Option<usize>,
    explain_deadlock: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bpc --app <fig1b|bayer|histogram|buffer-test|multi-conv|edge|fir|iir|analytics|stereo|camera-bank>\n\
         \x20          [--width N] [--height N] [--rate HZ] [--frames N]\n\
         \x20          [--policy trim|pad-zero|pad-mirror] [--mapping greedy|packed|one-to-one]\n\
         \x20          [--dot FILE] [--trace FILE] [--comm-model SPEC]\n\
         \x20          [--backend auto|interpreted|compiled]\n\
         \x20          [--capacity N] [--explain-deadlock] [--quiet]\n\
         \x20  --trace FILE  record a deterministic event trace and write it as\n\
         \x20                Chrome trace-event JSON (open in https://ui.perfetto.dev)\n\
         \x20  --comm-model  inter-PE communication delay (latencies in PE cycles):\n\
         \x20                zero (default) | uniform:LAT[:PER_WORD]\n\
         \x20                | grid:BASE:PER_HOP[:PER_WORD]\n\
         \x20  --backend     execution backend: auto (default; compiled in\n\
         \x20                release builds) | interpreted | compiled\n\
         \x20                (direct-threaded; results are bitwise identical)\n\
         \x20  --capacity N  pin every channel to N items, disabling the\n\
         \x20                feedback-aware capacity derivation\n\
         \x20  --explain-deadlock  on a capacity deadlock, print the structured\n\
         \x20                diagnosis (wait-for cycle, occupancies, minimal\n\
         \x20                capacity bump) and exit 0; exit 1 if no deadlock"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        app: String::new(),
        width: 20,
        height: 12,
        rate: 50.0,
        policy: AlignPolicy::Trim,
        mapping: MappingKind::Greedy,
        frames: 3,
        dot: None,
        trace: None,
        comm: "zero".to_string(),
        backend: Backend::Auto,
        capacity: None,
        explain_deadlock: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--app" => args.app = value("--app"),
            "--width" => args.width = value("--width").parse().unwrap_or_else(|_| usage()),
            "--height" => args.height = value("--height").parse().unwrap_or_else(|_| usage()),
            "--rate" => args.rate = value("--rate").parse().unwrap_or_else(|_| usage()),
            "--frames" => args.frames = value("--frames").parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                args.policy = match value("--policy").as_str() {
                    "trim" => AlignPolicy::Trim,
                    "pad-zero" => AlignPolicy::PadZero,
                    "pad-mirror" => AlignPolicy::PadMirror,
                    other => {
                        eprintln!("unknown policy '{other}'");
                        usage()
                    }
                }
            }
            "--mapping" => {
                args.mapping = match value("--mapping").as_str() {
                    "greedy" => MappingKind::Greedy,
                    "packed" => MappingKind::Packed,
                    "one-to-one" | "1:1" => MappingKind::OneToOne,
                    other => {
                        eprintln!("unknown mapping '{other}'");
                        usage()
                    }
                }
            }
            "--dot" => args.dot = Some(value("--dot")),
            "--trace" => args.trace = Some(value("--trace")),
            "--comm-model" => args.comm = value("--comm-model"),
            "--backend" => {
                args.backend = match value("--backend").as_str() {
                    "auto" => Backend::Auto,
                    "interpreted" => Backend::Interpreted,
                    "compiled" => Backend::Compiled,
                    other => {
                        eprintln!("unknown backend '{other}'");
                        usage()
                    }
                }
            }
            "--capacity" => {
                args.capacity = Some(value("--capacity").parse().unwrap_or_else(|_| usage()))
            }
            "--explain-deadlock" => args.explain_deadlock = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    if args.app.is_empty() {
        usage();
    }
    args
}

/// Parse a `--comm-model` spec into a [`CommModel`]. Latencies are given
/// in PE cycles (the natural unit next to kernel cycle budgets) and
/// converted to seconds at the machine's PE clock.
fn parse_comm_model(spec: &str, pe_clock_hz: f64) -> Option<CommModel> {
    let cyc = |s: &str| -> Option<f64> {
        let v: f64 = s.parse().ok()?;
        (v >= 0.0).then_some(v / pe_clock_hz)
    };
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let rest: Vec<&str> = parts.collect();
    match (kind, rest.as_slice()) {
        ("zero", []) => Some(CommModel::zero()),
        ("uniform", [lat]) => Some(CommModel::uniform(cyc(lat)?, 0.0)),
        ("uniform", [lat, per_word]) => Some(CommModel::uniform(cyc(lat)?, cyc(per_word)?)),
        ("grid", [base, per_hop]) => Some(CommModel::grid(cyc(base)?, cyc(per_hop)?, 0.0)),
        ("grid", [base, per_hop, per_word]) => {
            Some(CommModel::grid(cyc(base)?, cyc(per_hop)?, cyc(per_word)?))
        }
        _ => None,
    }
}

fn build_app(args: &Args) -> Option<apps::App> {
    let dim = Dim2::new(args.width, args.height);
    Some(match args.app.as_str() {
        "fig1b" => apps::fig1b(dim, args.rate),
        "bayer" => apps::bayer(dim, args.rate),
        "histogram" => apps::histogram_app(dim, args.rate, 32),
        "buffer-test" => apps::parallel_buffer_test(dim, args.rate),
        "multi-conv" => apps::multi_conv(dim, args.rate, 3),
        "edge" => apps::edge_detect(dim, args.rate, 20.0),
        "fir" => apps::fir_radio(args.width, args.rate),
        "iir" => apps::temporal_iir(dim, args.rate),
        "analytics" => apps::analytics(dim, args.rate),
        "stereo" => apps::stereo_diff(dim, args.rate),
        "camera-bank" => apps::camera_bank(4, dim, args.rate),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(app) = build_app(&args) else {
        eprintln!("unknown app '{}'", args.app);
        return ExitCode::from(2);
    };

    let opts = CompileOptions {
        machine: MachineSpec::default_eval(),
        align: args.policy,
        mapping: args.mapping,
        ..Default::default()
    };
    let compiled = match compile(&app.graph, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        println!("{}", summarize(&compiled));
    }
    if let Some(path) = &args.dot {
        if let Err(e) = std::fs::write(path, to_dot(&compiled.graph)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            println!("wrote {path}");
        }
    }

    let Some(comm) = parse_comm_model(&args.comm, opts.machine.pe_clock_hz) else {
        eprintln!("bad --comm-model '{}'", args.comm);
        return ExitCode::from(2);
    };
    if !args.quiet && !comm.is_zero() {
        println!(
            "comm model: {} (base {:.0} cycles, per-hop {:.0}, per-word {:.0})",
            args.comm,
            comm.base_latency_s * opts.machine.pe_clock_hz,
            comm.per_hop_s * opts.machine.pe_clock_hz,
            comm.per_word_s * opts.machine.pe_clock_hz,
        );
    }
    let mut config = SimConfig::new(args.frames)
        .with_machine(opts.machine)
        .with_comm(comm)
        .with_backend(args.backend);
    if let Some(cap) = args.capacity {
        config = config.with_channel_capacity(cap);
    }
    if args.trace.is_some() {
        config = config.with_trace(TraceOptions::default());
    }
    let sim = match TimedSimulator::new(&compiled.graph, &compiled.mapping, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simulation error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain_deadlock {
        return match sim.run_outcome() {
            SimOutcome::Deadlocked(d) => {
                print_deadlock(&d);
                ExitCode::SUCCESS
            }
            SimOutcome::Completed(report) => {
                println!(
                    "no capacity deadlock: {} frame(s) completed in {:.6}s",
                    report.frames_completed, report.sim_time
                );
                ExitCode::FAILURE
            }
        };
    }
    match sim.run_with_trace() {
        Ok((report, trace)) => {
            let (run, read, write) = report.utilization_breakdown();
            println!(
                "real-time {}: required {:.1} Hz, achieved {:.1} Hz, {} violations, \
                 {} budget overruns",
                if report.verdict.met { "MET" } else { "MISSED" },
                report.verdict.required_rate_hz,
                report.verdict.achieved_rate_hz,
                report.verdict.violations,
                report.total_budget_overruns(),
            );
            println!(
                "utilization {:.1}% (run {:.1}% / read {:.1}% / write {:.1}%) on {} PEs",
                100.0 * (run + read + write),
                100.0 * run,
                100.0 * read,
                100.0 * write,
                report.num_pes()
            );
            if let (Some(path), Some(trace)) = (&args.trace, trace) {
                if let Err(code) = write_trace(path, &trace, args.quiet) {
                    return code;
                }
            }
            if report.verdict.met {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("simulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Print the structured capacity-deadlock diagnosis: the wait-for cycle
/// with per-channel occupancy, and the minimal single-channel capacity
/// bump that would unblock a producer.
fn print_deadlock(d: &DeadlockReport) {
    println!("capacity deadlock: {} items queued", d.queued_items);
    if d.cycle.is_empty() {
        println!("no channel cycle found (a blocked chain dead-ends outside any loop)");
    } else {
        println!(
            "{}:",
            if d.blocked_cycle {
                "wait-for cycle"
            } else {
                "starved feedback loop"
            }
        );
        for hop in &d.cycle {
            println!("  {}", hop.render());
        }
    }
    if let Some(b) = &d.min_capacity_bump {
        println!(
            "minimal fix: grow '{}' from {} to {} items",
            b.channel, b.current, b.required
        );
    }
    print!("{}", d.stuck);
}

/// Export `trace` as Chrome trace-event JSON at `path`, validating the
/// document before writing and printing a stall/occupancy summary.
fn write_trace(path: &str, trace: &Trace, quiet: bool) -> Result<(), ExitCode> {
    let json = chrome_trace_json(trace);
    if let Err(e) = validate_json(&json) {
        eprintln!("internal error: exported trace is not well-formed JSON: {e}");
        return Err(ExitCode::FAILURE);
    }
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("failed to write {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    if !quiet {
        let stalls = trace.stall_counts();
        let stall_txt: Vec<String> = stalls
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(c, n)| format!("{} x{}", c.name(), n))
            .collect();
        println!(
            "wrote {path}: {} events ({} dropped), stall transitions: {}",
            trace.events.len(),
            trace.dropped,
            if stall_txt.is_empty() {
                "none".to_string()
            } else {
                stall_txt.join(", ")
            }
        );
        let mut hw = trace.channel_high_water();
        hw.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.node.cmp(&b.node)));
        for c in hw.iter().take(3) {
            println!(
                "  high-water: {}.{} reached {} items at t={:.6}s",
                trace.meta.node_names[c.node], trace.meta.input_ports[c.node][c.port], c.depth, c.t
            );
        }
    }
    Ok(())
}
