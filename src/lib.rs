//! # block-parallel
//!
//! A Rust implementation of **block-parallel programming for real-time
//! embedded applications** (Black-Schaffer & Dally, ICPP 2010): a stream
//! programming model with two-dimensional windowed data, control tokens,
//! and explicit real-time rates; a compiler that automatically buffers,
//! aligns, parallelizes and maps applications to a many-core target; and a
//! timing-accurate simulator that verifies the real-time constraints.
//!
//! ```
//! use block_parallel::prelude::*;
//!
//! // Describe the application: a 3x3 median over a 20x12 input at 50 Hz.
//! let dim = Dim2::new(20, 12);
//! let mut b = GraphBuilder::new();
//! let src = b.add_source("Input", pattern_source(dim), dim, 50.0);
//! let med = b.add("Median", median(3, 3));
//! let (out_def, result) = sink();
//! let out = b.add("Out", out_def);
//! b.connect(src, "out", med, "in");
//! b.connect(med, "out", out, "in");
//! let app = b.build().unwrap();
//!
//! // Compile: buffering, alignment, parallelization, PE mapping.
//! let compiled = compile(&app, &CompileOptions::default()).unwrap();
//!
//! // Simulate with timing and verify the real-time constraint.
//! let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, SimConfig::new(2))
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.verdict.met);
//! assert_eq!(result.frame_count(), 2);
//! ```

pub use bp_apps as apps;
pub use bp_compiler as compiler;
pub use bp_core as core;
pub use bp_kernels as kernels;
pub use bp_sim as sim;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use bp_compiler::{
        analyze, compile, summarize, to_dot, AlignPolicy, CompileOptions, MappingKind,
    };
    pub use bp_core::{
        AppGraph, CommModel, CommProfile, ControlToken, Dim2, GraphBuilder, Item, KernelBehavior,
        KernelDef, KernelSpec, MachineSpec, Mapping, NodeRole, Offset2, Parallelism, Step2,
        TokenKind, Window,
    };
    pub use bp_kernels::{
        absdiff, add, bayer_demosaic, box_coefficients, buffer, const_source, conv2d, downsample,
        feedback_frame, frame_source, histogram, histogram_merge, inset, median, pad,
        pattern_source, replicate, scale, sink, sobel, split_rr, subtract, threshold, uniform_bins,
        Margins, PadMode, SinkHandle,
    };
    pub use bp_sim::{
        chrome_trace_json, profile_node_weights, validate_json, Backend, CapacityBump, DeadlockHop,
        DeadlockReport, FunctionalExecutor, ParallelRunStats, ParallelTimedSimulator, SimConfig,
        SimOutcome, SimReport, StallCause, TimedSimulator, Trace, TraceOptions,
    };
}
