//! # bp-codegen — direct-threaded lowering of block-parallel graphs
//!
//! Lowers an application graph into a [`ThreadedProgram`]: one
//! [`ThreadedNode`] per graph node holding per-method *specialized firing
//! routines* generated at app-compile time plus the precomputed bitmasks
//! that turn the interpreter's linear trigger scan into a readiness mask
//! test.
//!
//! The lowering is the AOT analogue of `bp-sim`'s interpreted
//! `compile_methods`/`RtNode::plan` pair and must stay behaviourally
//! identical to it — the interpreted engine is the differential oracle
//! (DESIGN.md §13). Concretely:
//!
//! - **Planning** ([`ThreadedNode::plan`]): each method carries a
//!   `trigger_mask`/`data_mask` over its input ports. A node-level pair of
//!   *head masks* (bit `p` set when input queue `p` currently has a window /
//!   control token at its head) is maintained incrementally by the engine,
//!   so the all-data common case plans with two AND/compare instructions.
//!   Token triggers and the forwarding scan still read the actual queue
//!   fronts — token *identity* (not just presence) decides both — but only
//!   after the mask pre-check has already matched. `KernelBehavior::ready`
//!   is always consulted, exactly like the interpreter: kernels (join,
//!   histogram, FIR, conv) override it with dynamic state.
//! - **Firing** ([`ThreadedMethod::fire`]): a boxed routine monomorphized
//!   over method arity that fuses input pops, read-word accounting, and the
//!   `KernelBehavior::fire` call into a single pass. Port indices, method
//!   names, and output slots are resolved at lowering time; window word
//!   counts stay dynamic because items self-describe their geometry and the
//!   cost model charges *actual* words moved.
//!
//! What is deliberately *not* folded: anything mapping- or
//! machine-dependent (channel latencies, capacities, slot indices into the
//! engine's `DisjointSlots` node array). The engine layers those tables on
//! top at simulator-build time, keeping this crate dependent on `bp-core`
//! alone.

#![warn(missing_docs)]

use std::collections::VecDeque;

use bp_core::{
    AppGraph, BpError, ControlToken, Emitter, FireData, Item, KernelBehavior, KernelSpec, Result,
    TokenKind, TriggerOn,
};

/// Result of one compiled firing: words consumed from input queues plus the
/// behavior's reported actual cycle count (`None` → declared cost applies).
#[derive(Debug, Clone, Copy)]
pub struct FireResult {
    /// Sum of `Item::words()` over every consumed input item.
    pub read_words: u64,
    /// `Emitter::report_cycles` value, if the kernel reported one.
    pub actual_cycles: Option<u64>,
}

/// Borrowed execution context a [`FireFn`] runs against. All fields come
/// from the engine's node state; the routine leaves `consumed` cleared and
/// `emitted` holding the fired method's `(output port, item)` emissions.
pub struct FireArgs<'a> {
    /// The node's static spec (for `FireData`/`Emitter` port resolution).
    pub spec: &'a KernelSpec,
    /// One FIFO per input port.
    pub queues: &'a mut [VecDeque<Item>],
    /// The node's private behavior state.
    pub behavior: &'a mut dyn KernelBehavior,
    /// Recycled consume scratch; cleared on entry and exit.
    pub consumed: &'a mut Vec<(usize, Item)>,
    /// Recycled emit buffer; overwritten with this firing's emissions.
    pub emitted: &'a mut Vec<(usize, Item)>,
}

/// A specialized firing routine: pops the method's trigger inputs, invokes
/// the behavior, and reports words read plus actual cycles.
pub type FireFn = Box<dyn Fn(&mut FireArgs<'_>) -> FireResult + Send + Sync>;

/// One lowered method: the interpreter's `CompiledMethod` with trigger
/// conditions folded into bitmasks and the firing path pre-specialized.
pub struct ThreadedMethod {
    /// Method name (owned copy of `spec.methods[i].name`, for `ready()`).
    pub name: String,
    /// Trigger input ports in declaration order (duplicates preserved —
    /// pops follow this order exactly, like the interpreter).
    pub trigger_ports: Vec<usize>,
    /// Bit `p` set when port `p` appears in `trigger_ports`.
    pub trigger_mask: u64,
    /// Bit `p` set when port `p` has a `TriggerOn::Data` trigger.
    pub data_mask: u64,
    /// `(port, kind)` for each `TriggerOn::Token` trigger, in order.
    pub token_triggers: Vec<(usize, TokenKind)>,
    /// Output port indices in declaration order.
    pub outputs: Vec<usize>,
    /// Declared cycle cost.
    pub cost_cycles: u64,
    /// True for data methods (every trigger fires on data).
    pub is_data: bool,
    /// Token kinds some method of this kernel handles on one of this
    /// method's trigger inputs — these suppress automatic forwarding.
    pub handled_tokens: Vec<TokenKind>,
    /// The specialized firing routine.
    pub fire: FireFn,
}

/// A planning decision from [`ThreadedNode::plan`] — mirrors the
/// interpreter's `Action` enum field for field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannedAction {
    /// Fire method `method` on its matched triggers.
    Fire {
        /// Method index into [`ThreadedNode::methods`].
        method: usize,
    },
    /// Forward `token` through data method `method`'s trigger group.
    Forward {
        /// The control token at the head of every trigger input.
        token: ControlToken,
        /// Method index whose trigger group forwards the token.
        method: usize,
    },
}

/// One lowered node: per-method routines plus the masks the engine's
/// incremental head-state planner tests against.
pub struct ThreadedNode {
    /// Lowered methods in registration order.
    pub methods: Vec<ThreadedMethod>,
    /// Number of input ports (head masks use the low `inputs` bits).
    pub inputs: usize,
}

/// A fully lowered graph: one [`ThreadedNode`] per graph node, in node
/// order (indices line up with the engine's `DisjointSlots` node array).
pub struct ThreadedProgram {
    /// Lowered nodes, indexed by node id.
    pub nodes: Vec<ThreadedNode>,
}

/// Maximum input-port arity the mask planner supports (one bit per port).
pub const MAX_PORTS: usize = 64;

/// Compute the head-state masks for a node's queues from scratch:
/// `(data, ctrl)` where bit `p` of `data` is set when `queues[p]` has a
/// window at its head and bit `p` of `ctrl` when it has a control token.
/// The engine maintains these incrementally; this is the oracle used to
/// seed them and to validate under debug assertions.
pub fn head_masks(queues: &[VecDeque<Item>]) -> (u64, u64) {
    let mut data = 0u64;
    let mut ctrl = 0u64;
    for (p, q) in queues.iter().enumerate() {
        match q.front() {
            Some(Item::Window(_)) => data |= 1 << p,
            Some(Item::Control(_)) => ctrl |= 1 << p,
            None => {}
        }
    }
    (data, ctrl)
}

impl ThreadedNode {
    /// Decide the next action, or `None` if the node cannot progress.
    ///
    /// `head_data`/`head_ctrl` are the node's incrementally maintained head
    /// masks (see [`head_masks`]). Must return exactly what the
    /// interpreter's `RtNode::plan` returns for the same queue and behavior
    /// state; the differential suite in `bp-sim` pins this.
    #[inline]
    pub fn plan(
        &self,
        head_data: u64,
        head_ctrl: u64,
        queues: &[VecDeque<Item>],
        behavior: &dyn KernelBehavior,
    ) -> Option<PlannedAction> {
        for (mi, m) in self.methods.iter().enumerate() {
            if m.trigger_mask == 0 {
                continue; // source method; fired externally
            }
            // Every data trigger needs a window at its head.
            if head_data & m.data_mask != m.data_mask {
                continue;
            }
            // Token triggers additionally need the right token *kind*.
            if !m.token_triggers.is_empty() {
                let ok = m.token_triggers.iter().all(|&(p, kind)| {
                    matches!(queues[p].front(), Some(Item::Control(t)) if t.kind() == kind)
                });
                if !ok {
                    continue;
                }
            }
            let ready = match behavior.ready_fast(mi) {
                Some(r) => r,
                None => behavior.ready(&m.name),
            };
            if ready {
                return Some(PlannedAction::Fire { method: mi });
            }
        }
        // Token forwarding over data-method trigger groups: the *same*
        // token (full equality, not just kind) must head every trigger
        // input, and no method may handle that kind on any of them.
        for (mi, m) in self.methods.iter().enumerate() {
            if !m.is_data {
                continue;
            }
            // Mask pre-check: every trigger head must be a control token.
            if head_ctrl & m.trigger_mask != m.trigger_mask {
                continue;
            }
            let mut token: Option<ControlToken> = None;
            let mut all_tokens = true;
            for &p in &m.trigger_ports {
                match queues[p].front() {
                    Some(Item::Control(t)) => match token {
                        None => token = Some(*t),
                        Some(prev) if prev == *t => {}
                        Some(_) => {
                            all_tokens = false;
                            break;
                        }
                    },
                    _ => {
                        all_tokens = false;
                        break;
                    }
                }
            }
            let Some(tok) = token else { continue };
            if !all_tokens {
                continue;
            }
            if m.handled_tokens.contains(&tok.kind()) {
                continue;
            }
            return Some(PlannedAction::Forward {
                token: tok,
                method: mi,
            });
        }
        None
    }
}

/// The shared body of every specialized fire routine. `ports` is the
/// method's trigger-port array; the const-generic wrappers below hand it
/// over as a fixed-size array so the pop loop unrolls for the common
/// arities. `mi` is the method's spec index: the behavior's
/// [`KernelBehavior::fire_fast`] index-dispatched path is tried first and
/// the name-dispatched `fire` only runs when the kernel has no fast path
/// (the two are required to be observationally identical — the
/// differential suite pins it).
#[inline(always)]
fn fire_body(a: &mut FireArgs<'_>, mi: usize, name: &str, ports: &[usize]) -> FireResult {
    a.consumed.clear();
    let mut read_words = 0u64;
    for &p in ports {
        let it = a.queues[p].pop_front().expect("planned input disappeared");
        read_words += it.words();
        a.consumed.push((p, it));
    }
    let data = FireData::new(a.spec, a.consumed);
    let mut out = Emitter::with_buffer(a.spec, std::mem::take(a.emitted));
    if !a.behavior.fire_fast(mi, &data, &mut out) {
        a.behavior.fire(name, &data, &mut out);
    }
    let (items, actual_cycles) = out.into_parts();
    *a.emitted = items;
    a.consumed.clear();
    FireResult {
        read_words,
        actual_cycles,
    }
}

/// Build the specialized routine for one method, monomorphized over arity.
fn make_fire(mi: usize, name: String, ports: Vec<usize>) -> FireFn {
    fn fixed<const N: usize>(mi: usize, name: String, ports: [usize; N]) -> FireFn {
        Box::new(move |a| fire_body(a, mi, &name, &ports))
    }
    match ports.len() {
        1 => fixed::<1>(mi, name, [ports[0]]),
        2 => fixed::<2>(mi, name, [ports[0], ports[1]]),
        3 => fixed::<3>(mi, name, [ports[0], ports[1], ports[2]]),
        _ => Box::new(move |a| fire_body(a, mi, &name, &ports)),
    }
}

/// Lower one kernel spec. Mirrors the interpreter's `compile_methods` —
/// any semantic change there must land here too (the differential suite
/// will catch a divergence).
pub fn lower_spec(spec: &KernelSpec) -> Result<ThreadedNode> {
    if spec.inputs.len() > MAX_PORTS {
        return Err(BpError::Validation(format!(
            "kernel '{}' has {} input ports; the mask planner supports at most {}",
            spec.kind,
            spec.inputs.len(),
            MAX_PORTS
        )));
    }
    let methods = spec
        .methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut trigger_ports = Vec::with_capacity(m.triggers.len());
            let mut trigger_mask = 0u64;
            let mut data_mask = 0u64;
            let mut token_triggers = Vec::new();
            for t in &m.triggers {
                let p = spec.input_index(&t.input).expect("validated trigger input");
                trigger_ports.push(p);
                trigger_mask |= 1 << p;
                match t.on {
                    TriggerOn::Data => data_mask |= 1 << p,
                    TriggerOn::Token(kind) => token_triggers.push((p, kind)),
                }
            }
            let outputs: Vec<usize> = m
                .outputs
                .iter()
                .filter_map(|o| spec.output_index(o))
                .collect();
            let mut handled_tokens = Vec::new();
            for h in &spec.methods {
                for t in &h.triggers {
                    if let TriggerOn::Token(kind) = t.on {
                        if trigger_ports
                            .contains(&spec.input_index(&t.input).expect("validated input"))
                            && !handled_tokens.contains(&kind)
                        {
                            handled_tokens.push(kind);
                        }
                    }
                }
            }
            ThreadedMethod {
                fire: make_fire(mi, m.name.clone(), trigger_ports.clone()),
                name: m.name.clone(),
                trigger_mask,
                data_mask,
                token_triggers,
                outputs,
                cost_cycles: m.cost.cycles,
                is_data: m.is_data_method(),
                handled_tokens,
                trigger_ports,
            }
        })
        .collect();
    Ok(ThreadedNode {
        methods,
        inputs: spec.inputs.len(),
    })
}

/// Lower every node of a graph into a [`ThreadedProgram`]. Fails only when
/// a kernel exceeds [`MAX_PORTS`] input ports (the engine then falls back
/// to — or the caller explicitly requests — the interpreted backend).
pub fn lower_graph(graph: &AppGraph) -> Result<ThreadedProgram> {
    let nodes = graph
        .nodes()
        .map(|(_, n)| lower_spec(n.spec()))
        .collect::<Result<Vec<_>>>()?;
    Ok(ThreadedProgram { nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Dim2;

    fn fill(q: &mut VecDeque<Item>, items: Vec<Item>) {
        q.extend(items);
    }

    fn win(dim: Dim2) -> Item {
        Item::Window(bp_core::Window::zeros(dim))
    }

    #[test]
    fn masks_mirror_queue_fronts() {
        let mut queues = vec![VecDeque::new(), VecDeque::new(), VecDeque::new()];
        fill(&mut queues[0], vec![win(Dim2::new(2, 2))]);
        fill(
            &mut queues[2],
            vec![Item::Control(ControlToken::EndOfFrame)],
        );
        let (d, c) = head_masks(&queues);
        assert_eq!(d, 0b001);
        assert_eq!(c, 0b100);
    }

    #[test]
    fn lowers_scale_kernel_and_fires() {
        let def = bp_kernels::scale(2.0, 1.0);
        let spec = def.spec.clone();
        let tn = lower_spec(&spec).unwrap();
        assert_eq!(tn.methods.len(), 1);
        let m = &tn.methods[0];
        assert_eq!(m.trigger_ports, vec![0]);
        assert_eq!(m.trigger_mask, 1);
        assert_eq!(m.data_mask, 1);
        assert!(m.token_triggers.is_empty());
        assert!(m.is_data);

        let mut behavior = (def.factory)();
        let mut queues = vec![VecDeque::new()];
        let mut w = bp_core::Window::zeros(Dim2::new(1, 1));
        w.samples_mut().copy_from_slice(&[4.0]);
        queues[0].push_back(Item::Window(w));

        let (d, c) = head_masks(&queues);
        let plan = tn.plan(d, c, &queues, behavior.as_ref());
        assert_eq!(plan, Some(PlannedAction::Fire { method: 0 }));

        let mut consumed = Vec::new();
        let mut emitted = Vec::new();
        let res = (m.fire)(&mut FireArgs {
            spec: &spec,
            queues: &mut queues,
            behavior: behavior.as_mut(),
            consumed: &mut consumed,
            emitted: &mut emitted,
        });
        assert_eq!(res.read_words, 1);
        assert_eq!(emitted.len(), 1);
        let Item::Window(out) = &emitted[0].1 else {
            panic!("expected window");
        };
        assert_eq!(out.samples(), &[9.0]);
        assert!(queues[0].is_empty());
        assert!(consumed.is_empty());
    }

    #[test]
    fn forwards_unhandled_tokens_and_suppresses_handled() {
        // join has an EOL-handling method on its inputs in some kernels;
        // use scale (no token methods): EOF at head forwards.
        let def = bp_kernels::scale(1.0, 0.0);
        let tn = lower_spec(&def.spec).unwrap();
        let behavior = (def.factory)();
        let mut queues = vec![VecDeque::new()];
        queues[0].push_back(Item::Control(ControlToken::EndOfFrame));
        let (d, c) = head_masks(&queues);
        match tn.plan(d, c, &queues, behavior.as_ref()) {
            Some(PlannedAction::Forward { token, method }) => {
                assert_eq!(token, ControlToken::EndOfFrame);
                assert_eq!(method, 0);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn rejects_over_wide_kernels() {
        // Synthesize a spec with 65 inputs via the builder API if cheap;
        // otherwise assert the constant is what the engine checks against.
        assert_eq!(MAX_PORTS, 64);
    }
}
