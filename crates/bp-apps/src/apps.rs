//! The benchmark applications of the paper's evaluation (Fig. 13), written
//! exactly as a programmer would: no buffers, no splits — the compiler
//! inserts all plumbing.

use bp_core::graph::{AppGraph, NodeId};
use bp_core::{Dim2, GraphBuilder};
use bp_kernels as k;
use std::sync::Arc;

/// A built application plus its observable outputs.
pub struct App {
    /// The source graph (uncompiled).
    pub graph: AppGraph,
    /// Output handles, one per sink, labeled.
    pub sinks: Vec<(String, k::SinkHandle)>,
    /// The application input node.
    pub input: NodeId,
}

fn pattern_gen() -> k::PixelGen {
    Arc::new(crate::reference::pattern_pixel)
}

/// The paper's running example (Fig. 1(b)): median and convolution paths
/// into a per-pixel subtract, then a histogram with a serial merge limited
/// by a data-dependency edge from the input.
pub fn fig1b(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let med = b.add("3x3 Median", k::median(3, 3));
    let conv = b.add("5x5 Conv", k::conv2d(5, 5));
    let coeff = b.add(
        "5x5 Coeff",
        k::const_source("coeff", k::box_coefficients(5, 5)),
    );
    let sub = b.add("Subtract", k::subtract());
    let hist = b.add("Histogram", k::histogram(32));
    let bins = b.add(
        "Hist Bins",
        k::const_source("bins", k::uniform_bins(32, -128.0, 128.0)),
    );
    let merge = b.add("Merge", k::histogram_merge(32));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", med, "in");
    b.connect(src, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(med, "out", sub, "in0");
    b.connect(conv, "out", sub, "in1");
    b.connect(sub, "out", hist, "in");
    b.connect(bins, "out", hist, "bins");
    b.connect(hist, "out", merge, "in");
    b.connect(merge, "out", snk, "in");
    b.dep_edge(src, merge);
    App {
        graph: b.build().expect("fig1b is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// Benchmark 1: Bayer demosaicing — one CFA input, three color-plane
/// outputs (uses the model's multiple outputs per kernel).
pub fn bayer(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let dem = b.add("Demosaic", k::bayer_demosaic());
    let (rs, rh) = k::sink();
    let (gs, gh) = k::sink();
    let (bs, bh) = k::sink();
    let ro = b.add("R", rs);
    let go = b.add("G", gs);
    let bo = b.add("B", bs);
    b.connect(src, "out", dem, "in");
    b.connect(dem, "r", ro, "in");
    b.connect(dem, "g", go, "in");
    b.connect(dem, "b", bo, "in");
    App {
        graph: b.build().expect("bayer is well-formed"),
        sinks: vec![("r".into(), rh), ("g".into(), gh), ("b".into(), bh)],
        input: src,
    }
}

/// Benchmark 2: image histogram with serial merge.
pub fn histogram_app(dim: Dim2, rate_hz: f64, bins: u32) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let hist = b.add("Histogram", k::histogram(bins));
    let bn = b.add(
        "Hist Bins",
        k::const_source("bins", k::uniform_bins(bins, 0.0, 256.0)),
    );
    let merge = b.add("Merge", k::histogram_merge(bins));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", hist, "in");
    b.connect(bn, "out", hist, "bins");
    b.connect(hist, "out", merge, "in");
    b.connect(merge, "out", snk, "in");
    b.dep_edge(src, merge);
    App {
        graph: b.build().expect("histogram app is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// Benchmark 3: parallel buffer test — a wide frame through a single 5×5
/// convolution, so the line buffer exceeds one PE's storage and must be
/// split column-wise (Fig. 10).
pub fn parallel_buffer_test(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let conv = b.add("5x5 Conv", k::conv2d(5, 5));
    let coeff = b.add(
        "5x5 Coeff",
        k::const_source("coeff", k::box_coefficients(5, 5)),
    );
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(conv, "out", snk, "in");
    App {
        graph: b.build().expect("buffer test is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// Benchmark 4: multiple convolutions — a pipeline of 3×3 convolutions
/// (each with its own coefficients), exercising pipeline parallelism and
/// repeated re-buffering between stages.
pub fn multi_conv(dim: Dim2, rate_hz: f64, stages: usize) -> App {
    assert!(stages >= 1);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let mut prev = src;
    let mut prev_port = "out".to_string();
    for s in 0..stages {
        let conv = b.add(format!("3x3 Conv{s}"), k::conv2d(3, 3));
        let coeff = b.add(
            format!("Coeff{s}"),
            k::const_source("coeff", k::binomial_coefficients(3)),
        );
        b.connect(prev, &prev_port, conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        prev = conv;
        prev_port = "out".into();
    }
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(prev, "out", snk, "in");
    App {
        graph: b.build().expect("multi-conv is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// A temporal feedback application (§III-D): each output frame is the
/// average of the input frame and the previous output frame
/// (`out = 0.5·in + 0.5·prev`), with the loop primed to zero.
pub fn temporal_iir(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let mix = b.add("Mix", k::add());
    let half = b.add("Half", k::scale(0.5, 0.0));
    let fb = b.add("FrameDelay", k::feedback_frame(dim, 0.0));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", mix, "in0");
    b.connect(fb, "out", mix, "in1");
    b.connect(mix, "out", half, "in");
    b.connect(half, "out", fb, "in");
    b.connect(half, "out", snk, "in");
    App {
        graph: b.build().expect("iir is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// A one-dimensional radio-style chain (§II-A's "without inhibiting
/// one-dimensional signal handling"): `samples`×1 frames through a 9-tap
/// low-pass FIR and a decimate-by-4 stage.
pub fn fir_radio(samples: u32, rate_hz: f64) -> App {
    assert!(
        samples > 8 && (samples - 8).is_multiple_of(4),
        "FIR output must tile the decimator"
    );
    let dim = Dim2::new(samples, 1);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let f = b.add("FIR", k::fir(9));
    let taps = b.add("Taps", k::const_source("taps", k::lowpass_taps(9)));
    let dec = b.add("Decimate", k::decimate(4));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", f, "in");
    b.connect(taps, "out", f, "taps");
    b.connect(f, "out", dec, "in");
    b.connect(dec, "out", snk, "in");
    App {
        graph: b.build().expect("fir radio is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// A binary edge-detection pipeline: median denoise, Sobel gradient
/// magnitude, then thresholding.
pub fn edge_detect(dim: Dim2, rate_hz: f64, level: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let med = b.add("Median", k::median(3, 3));
    let sob = b.add("Sobel", k::sobel());
    let thr = b.add("Threshold", k::threshold(level));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(src, "out", med, "in");
    b.connect(med, "out", sob, "in");
    b.connect(sob, "out", thr, "in");
    b.connect(thr, "out", snk, "in");
    App {
        graph: b.build().expect("edge detect is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: src,
    }
}

/// A two-input application: per-pixel absolute difference of two
/// independent camera-style sources at the same rate, histogrammed per
/// frame — exercising multiple application inputs (the model allows any
/// number, each with its own rate constraint).
pub fn stereo_diff(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let left = b.add_source("Left", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let right = b.add_source(
        "Right",
        k::frame_source(
            dim,
            Arc::new(|f, x, y| crate::reference::pattern_pixel(f, x, y) * 0.5 + 7.0),
        ),
        dim,
        rate_hz,
    );
    let diff = b.add("Diff", k::absdiff());
    let hist = b.add("Histogram", k::histogram(16));
    let bins = b.add(
        "Bins",
        k::const_source("bins", k::uniform_bins(16, 0.0, 160.0)),
    );
    let merge = b.add("Merge", k::histogram_merge(16));
    let (sdef, handle) = k::sink();
    let snk = b.add("result", sdef);
    b.connect(left, "out", diff, "in0");
    b.connect(right, "out", diff, "in1");
    b.connect(diff, "out", hist, "in");
    b.connect(bins, "out", hist, "bins");
    b.connect(hist, "out", merge, "in");
    b.connect(merge, "out", snk, "in");
    b.dep_edge(left, merge);
    App {
        graph: b.build().expect("stereo diff is well-formed"),
        sinks: vec![("result".into(), handle)],
        input: left,
    }
}

/// A composite video-analytics pipeline exercising the model at the scale
/// the paper quotes ("more than 50 kernels" after compilation): a denoise
/// stage fans out into an edge-detection branch (Sobel + threshold +
/// histogram) and a smoothing branch (5×5 conv), whose per-pixel difference
/// feeds a second histogram; both histograms merge serially per frame.
pub fn analytics(dim: Dim2, rate_hz: f64) -> App {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::frame_source(dim, pattern_gen()), dim, rate_hz);
    let den = b.add("Denoise", k::median(3, 3));

    // Edge branch.
    let sob = b.add("Sobel", k::sobel());
    let thr = b.add("Threshold", k::threshold(20.0));
    let ehist = b.add("EdgeHist", k::histogram(16));
    let ebins = b.add(
        "EdgeBins",
        k::const_source("bins", k::uniform_bins(16, 0.0, 2.0)),
    );
    let emerge = b.add("EdgeMerge", k::histogram_merge(16));

    // Texture branch: smoothed vs denoised difference.
    let conv = b.add("Smooth", k::conv2d(5, 5));
    let coeff = b.add(
        "SmoothCoeff",
        k::const_source("coeff", k::box_coefficients(5, 5)),
    );
    let diff = b.add("Detail", k::absdiff());
    let thist = b.add("DetailHist", k::histogram(16));
    let tbins = b.add(
        "DetailBins",
        k::const_source("bins", k::uniform_bins(16, 0.0, 64.0)),
    );
    let tmerge = b.add("DetailMerge", k::histogram_merge(16));

    let (es, eh) = k::sink();
    let (ts, th) = k::sink();
    let eout = b.add("edges", es);
    let tout = b.add("detail", ts);

    b.connect(src, "out", den, "in");
    b.connect(den, "out", sob, "in");
    b.connect(sob, "out", thr, "in");
    b.connect(thr, "out", ehist, "in");
    b.connect(ebins, "out", ehist, "bins");
    b.connect(ehist, "out", emerge, "in");
    b.connect(emerge, "out", eout, "in");

    b.connect(den, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(den, "out", diff, "in0");
    b.connect(conv, "out", diff, "in1");
    b.connect(diff, "out", thist, "in");
    b.connect(tbins, "out", thist, "bins");
    b.connect(thist, "out", tmerge, "in");
    b.connect(tmerge, "out", tout, "in");

    b.dep_edge(src, emerge);
    b.dep_edge(src, tmerge);
    App {
        graph: b.build().expect("analytics is well-formed"),
        sinks: vec![("edges".into(), eh), ("detail".into(), th)],
        input: src,
    }
}

/// A bank of `cameras` independent Fig. 1(b) pipelines, one per input
/// camera: no channel or dependency edge crosses between pipelines. This is
/// the many-camera surveillance shape the paper's scaling argument targets,
/// and — because the pipelines are mutually independent — it is also the
/// stress workload for the sharded parallel timed simulator, which can place
/// each pipeline's PEs in a different shard.
pub fn camera_bank(cameras: usize, dim: Dim2, rate_hz: f64) -> App {
    assert!(cameras >= 1);
    let mut b = GraphBuilder::new();
    let mut sinks = Vec::with_capacity(cameras);
    let mut first_input = None;
    for cam in 0..cameras {
        let src = b.add_source(
            format!("Cam{cam}"),
            k::frame_source(dim, pattern_gen()),
            dim,
            rate_hz,
        );
        first_input.get_or_insert(src);
        let med = b.add(format!("3x3 Median{cam}"), k::median(3, 3));
        let conv = b.add(format!("5x5 Conv{cam}"), k::conv2d(5, 5));
        let coeff = b.add(
            format!("5x5 Coeff{cam}"),
            k::const_source("coeff", k::box_coefficients(5, 5)),
        );
        let sub = b.add(format!("Subtract{cam}"), k::subtract());
        let hist = b.add(format!("Histogram{cam}"), k::histogram(32));
        let bins = b.add(
            format!("Hist Bins{cam}"),
            k::const_source("bins", k::uniform_bins(32, -128.0, 128.0)),
        );
        let merge = b.add(format!("Merge{cam}"), k::histogram_merge(32));
        let (sdef, handle) = k::sink();
        let snk = b.add(format!("cam{cam}"), sdef);
        b.connect(src, "out", med, "in");
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(med, "out", sub, "in0");
        b.connect(conv, "out", sub, "in1");
        b.connect(sub, "out", hist, "in");
        b.connect(bins, "out", hist, "bins");
        b.connect(hist, "out", merge, "in");
        b.connect(merge, "out", snk, "in");
        b.dep_edge(src, merge);
        sinks.push((format!("cam{cam}"), handle));
    }
    App {
        graph: b.build().expect("camera_bank is well-formed"),
        sinks,
        input: first_input.expect("at least one camera"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_validate() {
        let dim = Dim2::new(20, 12);
        for app in [
            fig1b(dim, 50.0),
            bayer(dim, 50.0),
            histogram_app(dim, 50.0, 32),
            parallel_buffer_test(Dim2::new(64, 12), 10.0),
            multi_conv(dim, 50.0, 3),
            temporal_iir(dim, 50.0),
            fir_radio(72, 100.0),
            edge_detect(dim, 50.0, 20.0),
            analytics(dim, 50.0),
            stereo_diff(dim, 50.0),
            camera_bank(3, dim, 50.0),
        ] {
            app.graph.validate().unwrap();
            assert!(!app.sinks.is_empty());
        }
    }

    #[test]
    fn fig1b_has_dep_edge() {
        let app = fig1b(Dim2::new(20, 12), 50.0);
        assert_eq!(app.graph.dep_edges().len(), 1);
    }
}
