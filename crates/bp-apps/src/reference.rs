//! Golden reference models: direct array implementations of the paper's
//! kernels, used to verify that compiled (buffered, aligned, parallelized)
//! graphs produce bit-identical results.

/// A simple dense image: rows of samples.
pub type Image = Vec<Vec<f64>>;

/// The deterministic synthetic test pattern shared by the applications and
/// these references (same formula as `bp_kernels::pattern_source`).
pub fn pattern_pixel(frame: u32, x: u32, y: u32) -> f64 {
    ((frame as f64) * 1000.0 + (y as f64) * 10.0 + x as f64) % 256.0
}

/// A full pattern frame.
pub fn pattern_frame(w: u32, h: u32, frame: u32) -> Image {
    (0..h)
        .map(|y| (0..w).map(|x| pattern_pixel(frame, x, y)).collect())
        .collect()
}

/// Image dimensions `(w, h)`.
pub fn dims(img: &Image) -> (usize, usize) {
    (img.first().map_or(0, |r| r.len()), img.len())
}

/// Valid-mode 2-D convolution with a flipped kernel (true convolution, as
/// the paper's Fig. 6 kernel computes). Output is smaller by the halo.
pub fn conv2d_valid(img: &Image, coeff: &Image) -> Image {
    let (w, h) = dims(img);
    let (kw, kh) = dims(coeff);
    let ow = w + 1 - kw;
    let oh = h + 1 - kh;
    let mut out = vec![vec![0.0; ow]; oh];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0;
            for y in 0..kh {
                for x in 0..kw {
                    acc += img[oy + y][ox + x] * coeff[kh - 1 - y][kw - 1 - x];
                }
            }
            out[oy][ox] = acc;
        }
    }
    out
}

/// Valid-mode windowed median (odd windows take the middle element, even
/// windows the average of the two middle elements, matching the kernel).
pub fn median_valid(img: &Image, kw: usize, kh: usize) -> Image {
    let (w, h) = dims(img);
    let ow = w + 1 - kw;
    let oh = h + 1 - kh;
    let mut out = vec![vec![0.0; ow]; oh];
    let mut scratch = Vec::with_capacity(kw * kh);
    for oy in 0..oh {
        for ox in 0..ow {
            scratch.clear();
            for y in 0..kh {
                for x in 0..kw {
                    scratch.push(img[oy + y][ox + x]);
                }
            }
            scratch.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mid = scratch.len() / 2;
            out[oy][ox] = if scratch.len() % 2 == 1 {
                scratch[mid]
            } else {
                0.5 * (scratch[mid - 1] + scratch[mid])
            };
        }
    }
    out
}

/// Trim `m` samples off every edge.
pub fn trim(img: &Image, m: usize) -> Image {
    let (w, h) = dims(img);
    img[m..h - m]
        .iter()
        .map(|row| row[m..w - m].to_vec())
        .collect()
}

/// Zero-pad by `m` samples on every edge.
pub fn pad_zero(img: &Image, m: usize) -> Image {
    let (w, _h) = dims(img);
    let empty = vec![0.0; w + 2 * m];
    let mut out = vec![empty.clone(); m];
    for row in img {
        let mut r = vec![0.0; m];
        r.extend_from_slice(row);
        r.extend(std::iter::repeat_n(0.0, m));
        out.push(r);
    }
    out.extend(std::iter::repeat_n(empty, m));
    out
}

/// Per-pixel difference `a - b` (dimensions must match).
pub fn subtract(a: &Image, b: &Image) -> Image {
    a.iter()
        .zip(b)
        .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| x - y).collect())
        .collect()
}

/// Histogram with the kernel's semantics: linear scan over upper bounds,
/// last bin open-ended.
pub fn histogram(img: &Image, uppers: &[f64]) -> Vec<f64> {
    let mut counts = vec![0.0; uppers.len()];
    for row in img {
        for &v in row {
            let mut bin = uppers.len() - 1;
            for (i, u) in uppers.iter().enumerate() {
                if v < *u {
                    bin = i;
                    break;
                }
            }
            counts[bin] += 1.0;
        }
    }
    counts
}

/// Evenly spaced bin upper bounds (same as `bp_kernels::uniform_bins`).
pub fn uniform_uppers(bins: usize, lo: f64, hi: f64) -> Vec<f64> {
    let step = (hi - lo) / bins as f64;
    (0..bins).map(|i| lo + step * (i + 1) as f64).collect()
}

/// End-to-end golden model for the Fig. 1(b) application under the Trim
/// alignment policy: 3×3 median (trimmed by 1) minus 5×5 box convolution,
/// then a 32-bin histogram of the difference. Returns the per-frame counts.
pub fn fig1b_expected(w: u32, h: u32, frame: u32, bins: usize, lo: f64, hi: f64) -> Vec<f64> {
    let img = pattern_frame(w, h, frame);
    let med = median_valid(&img, 3, 3);
    let med = trim(&med, 1);
    let box5 = vec![vec![1.0 / 25.0; 5]; 5];
    let conv = conv2d_valid(&img, &box5);
    let diff = subtract(&med, &conv);
    histogram(&diff, &uniform_uppers(bins, lo, hi))
}

/// Golden model for the Fig. 1(b) application under the PadZero policy:
/// the convolution input is padded by 1, growing its output to 18×10.
pub fn fig1b_expected_padded(
    w: u32,
    h: u32,
    frame: u32,
    bins: usize,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    let img = pattern_frame(w, h, frame);
    let med = median_valid(&img, 3, 3);
    let box5 = vec![vec![1.0 / 25.0; 5]; 5];
    let conv = conv2d_valid(&pad_zero(&img, 1), &box5);
    let diff = subtract(&med, &conv);
    histogram(&diff, &uniform_uppers(bins, lo, hi))
}

/// Valid-mode 1-D FIR with reversed taps (matching the `fir` kernel).
pub fn fir_valid(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    let n = taps.len();
    (0..signal.len() + 1 - n)
        .map(|i| {
            signal[i..i + n]
                .iter()
                .zip(taps.iter().rev())
                .map(|(x, t)| x * t)
                .sum()
        })
        .collect()
}

/// Keep the first of every `m` samples.
pub fn decimate_by(signal: &[f64], m: usize) -> Vec<f64> {
    signal.iter().step_by(m).copied().collect()
}

/// Sobel gradient magnitude (L1) over the valid interior.
pub fn sobel_valid(img: &Image) -> Image {
    let (w, h) = dims(img);
    let ow = w - 2;
    let oh = h - 2;
    let mut out = vec![vec![0.0; ow]; oh];
    for oy in 0..oh {
        for ox in 0..ow {
            let p = |dx: usize, dy: usize| img[oy + dy][ox + dx];
            let gx = (p(2, 0) + 2.0 * p(2, 1) + p(2, 2)) - (p(0, 0) + 2.0 * p(0, 1) + p(0, 2));
            let gy = (p(0, 2) + 2.0 * p(1, 2) + p(2, 2)) - (p(0, 0) + 2.0 * p(1, 0) + p(2, 0));
            out[oy][ox] = gx.abs() + gy.abs();
        }
    }
    out
}

/// Per-pixel binarization.
pub fn threshold_img(img: &Image, level: f64) -> Image {
    img.iter()
        .map(|r| {
            r.iter()
                .map(|&v| if v >= level { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

/// Bilinear RGGB demosaic over the valid interior, mirroring
/// `bp_kernels::bayer_demosaic` (center positions start at (1,1)).
pub fn bayer_expected(img: &Image) -> (Image, Image, Image) {
    let (w, h) = dims(img);
    let ow = w - 2;
    let oh = h - 2;
    let mut r = vec![vec![0.0; ow]; oh];
    let mut g = vec![vec![0.0; ow]; oh];
    let mut b = vec![vec![0.0; ow]; oh];
    for oy in 0..oh {
        for ox in 0..ow {
            let cx = ox + 1;
            let cy = oy + 1;
            let c = img[cy][cx];
            let edges =
                (img[cy][cx - 1] + img[cy][cx + 1] + img[cy - 1][cx] + img[cy + 1][cx]) / 4.0;
            let corners = (img[cy - 1][cx - 1]
                + img[cy - 1][cx + 1]
                + img[cy + 1][cx - 1]
                + img[cy + 1][cx + 1])
                / 4.0;
            let horiz = (img[cy][cx - 1] + img[cy][cx + 1]) / 2.0;
            let vert = (img[cy - 1][cx] + img[cy + 1][cx]) / 2.0;
            let (rv, gv, bv) = match (cx % 2, cy % 2) {
                (0, 0) => (c, edges, corners),
                (1, 0) => (horiz, c, vert),
                (0, 1) => (vert, c, horiz),
                _ => (corners, edges, c),
            };
            r[oy][ox] = rv;
            g[oy][ox] = gv;
            b[oy][ox] = bv;
        }
    }
    (r, g, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity() {
        let img = pattern_frame(6, 6, 0);
        let mut id = vec![vec![0.0; 3]; 3];
        id[1][1] = 1.0;
        let out = conv2d_valid(&img, &id);
        assert_eq!(out[0][0], img[1][1]);
        assert_eq!(dims(&out), (4, 4));
    }

    #[test]
    fn median_matches_center_of_sorted() {
        let img = vec![
            vec![9.0, 1.0, 8.0],
            vec![2.0, 7.0, 3.0],
            vec![6.0, 4.0, 5.0],
        ];
        let out = median_valid(&img, 3, 3);
        assert_eq!(out, vec![vec![5.0]]);
    }

    #[test]
    fn trim_and_pad_roundtrip_shapes() {
        let img = pattern_frame(8, 6, 0);
        assert_eq!(dims(&trim(&img, 2)), (4, 2));
        assert_eq!(dims(&pad_zero(&img, 2)), (12, 10));
        assert_eq!(pad_zero(&img, 1)[0][0], 0.0);
        assert_eq!(pad_zero(&img, 1)[1][1], img[0][0]);
    }

    #[test]
    fn histogram_counts_cover_all_samples() {
        let img = pattern_frame(10, 10, 3);
        let counts = histogram(&img, &uniform_uppers(8, 0.0, 256.0));
        let total: f64 = counts.iter().sum();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn fig1b_expected_is_stable() {
        let a = fig1b_expected(20, 12, 0, 32, -128.0, 128.0);
        let b = fig1b_expected(20, 12, 0, 32, -128.0, 128.0);
        assert_eq!(a, b);
        let total: f64 = a.iter().sum();
        assert_eq!(total, 16.0 * 8.0);
    }

    #[test]
    fn bayer_gray_world() {
        let img = vec![vec![3.0; 6]; 6];
        let (r, g, b) = bayer_expected(&img);
        for plane in [r, g, b] {
            for row in plane {
                for v in row {
                    assert_eq!(v, 3.0);
                }
            }
        }
    }
}
