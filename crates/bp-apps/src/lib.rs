//! # bp-apps — the paper's benchmark applications and golden references
//!
//! The evaluation workloads of the paper (Fig. 13): Bayer demosaicing,
//! image histogram, the parallel-buffer and multiple-convolution tests, and
//! the Fig. 1(b) image-processing example at the Small/Big × Slow/Fast
//! scaling points of Fig. 11 — plus direct array-math reference models used
//! to verify that compiled graphs are bit-identical to the specification.

#![warn(missing_docs)]

pub mod apps;
pub mod noise;
pub mod presets;
pub mod reference;

pub use apps::{
    analytics, bayer, camera_bank, edge_detect, fig1b, fir_radio, histogram_app, multi_conv,
    parallel_buffer_test, stereo_diff, temporal_iir, App,
};
pub use noise::NoisePlan;
pub use presets::{fig11_points, fig13_suite, BenchmarkCase, ScalePoint, BIG, FAST, SLOW, SMALL};
