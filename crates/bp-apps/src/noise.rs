//! Synthetic noisy inputs: deterministic salt-and-pepper corruption over
//! the standard test pattern, standing in for real sensor data when
//! exercising the denoising pipelines.

use bp_core::Rng64;
use bp_core::{Dim2, KernelDef};
use bp_kernels::{frame_source, PixelGen};
use std::sync::Arc;

/// A pregenerated salt-and-pepper corruption plan: for each frame in a
/// repeating period, the set of corrupted pixels and their impulse values.
#[derive(Clone)]
pub struct NoisePlan {
    dim: Dim2,
    period: u32,
    /// `impulses[frame][y * w + x]`: `None` = clean, `Some(v)` = impulse.
    impulses: Arc<Vec<Vec<Option<f64>>>>,
}

impl NoisePlan {
    /// Generate a plan: each pixel of each frame in the period is corrupted
    /// with probability `density`, half to `lo` ("pepper"), half to `hi`
    /// ("salt"). Deterministic in `seed`.
    pub fn salt_and_pepper(
        dim: Dim2,
        period: u32,
        density: f64,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&density));
        assert!(period >= 1);
        let mut rng = Rng64::seed_from_u64(seed);
        let area = dim.area() as usize;
        let impulses = (0..period)
            .map(|_| {
                (0..area)
                    .map(|_| {
                        if rng.gen_f64() < density {
                            Some(if rng.gen_bool() { hi } else { lo })
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            dim,
            period,
            impulses: Arc::new(impulses),
        }
    }

    /// The impulse (if any) applied at `(frame, x, y)`.
    pub fn impulse_at(&self, frame: u32, x: u32, y: u32) -> Option<f64> {
        self.impulses[(frame % self.period) as usize][(y * self.dim.w + x) as usize]
    }

    /// Number of corrupted pixels in the given frame.
    pub fn impulse_count(&self, frame: u32) -> usize {
        self.impulses[(frame % self.period) as usize]
            .iter()
            .flatten()
            .count()
    }

    /// The corrupted pixel value at `(frame, x, y)`: the clean pattern with
    /// impulses applied.
    pub fn pixel(&self, frame: u32, x: u32, y: u32) -> f64 {
        self.impulse_at(frame, x, y)
            .unwrap_or_else(|| crate::reference::pattern_pixel(frame, x, y))
    }

    /// The full corrupted frame as an image.
    pub fn frame(&self, frame: u32) -> crate::reference::Image {
        (0..self.dim.h)
            .map(|y| (0..self.dim.w).map(|x| self.pixel(frame, x, y)).collect())
            .collect()
    }

    /// A frame source emitting the corrupted pattern.
    pub fn source(&self) -> KernelDef {
        let plan = self.clone();
        let gen: PixelGen = Arc::new(move |f, x, y| plan.pixel(f, x, y));
        frame_source(self.dim, gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_in_seed() {
        let dim = Dim2::new(10, 8);
        let a = NoisePlan::salt_and_pepper(dim, 3, 0.1, 0.0, 255.0, 42);
        let b = NoisePlan::salt_and_pepper(dim, 3, 0.1, 0.0, 255.0, 42);
        for f in 0..3 {
            assert_eq!(a.frame(f), b.frame(f));
        }
        let c = NoisePlan::salt_and_pepper(dim, 3, 0.1, 0.0, 255.0, 43);
        assert_ne!(a.frame(0), c.frame(0));
    }

    #[test]
    fn density_controls_corruption_rate() {
        let dim = Dim2::new(40, 40);
        let plan = NoisePlan::salt_and_pepper(dim, 1, 0.1, 0.0, 255.0, 7);
        let count = plan.impulse_count(0);
        // 10% of 1600 = 160; allow generous sampling slack.
        assert!((80..=240).contains(&count), "count {count}");
        let clean = NoisePlan::salt_and_pepper(dim, 1, 0.0, 0.0, 255.0, 7);
        assert_eq!(clean.impulse_count(0), 0);
    }

    #[test]
    fn period_repeats() {
        let dim = Dim2::new(6, 6);
        let plan = NoisePlan::salt_and_pepper(dim, 2, 0.2, -1.0, 1.0, 9);
        assert_eq!(plan.impulse_count(0), plan.impulse_count(2));
        assert_eq!(plan.impulse_at(1, 3, 3), plan.impulse_at(3, 3, 3));
    }

    #[test]
    fn clean_pixels_match_pattern() {
        let dim = Dim2::new(6, 6);
        let plan = NoisePlan::salt_and_pepper(dim, 1, 0.0, 0.0, 255.0, 1);
        for y in 0..6 {
            for x in 0..6 {
                assert_eq!(
                    plan.pixel(0, x, y),
                    crate::reference::pattern_pixel(0, x, y)
                );
            }
        }
    }
}
