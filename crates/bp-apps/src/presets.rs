//! Evaluation configurations: the Small/Big × Slow/Fast scaling points of
//! Fig. 11 and the eleven-benchmark suite of Fig. 13.
//!
//! Sizes and rates are ours (the paper does not publish them); they are
//! tuned so the running example reproduces the paper's replica counts —
//! see DESIGN.md §6. All rates are hard real-time constraints.

use crate::apps::{self, App};
use bp_core::Dim2;

/// The "Small" frame: 20×12 pixels.
pub const SMALL: Dim2 = Dim2::new(20, 12);
/// The "Big" frame: 40×24 pixels (forces buffer splitting at 320-word PEs).
pub const BIG: Dim2 = Dim2::new(40, 24);
/// The "Slow" rate: 50 frames per second.
pub const SLOW: f64 = 50.0;
/// The "Fast" rate: 200 frames per second.
pub const FAST: f64 = 200.0;

/// One scaling point for the Fig. 11 experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Paper label ("Small/Slow" …).
    pub label: &'static str,
    /// Frame size.
    pub dim: Dim2,
    /// Frame rate.
    pub rate_hz: f64,
}

/// The four scaling points of Fig. 11 (a–d).
pub fn fig11_points() -> [ScalePoint; 4] {
    [
        ScalePoint {
            label: "Small/Slow",
            dim: SMALL,
            rate_hz: SLOW,
        },
        ScalePoint {
            label: "Big/Slow",
            dim: BIG,
            rate_hz: SLOW,
        },
        ScalePoint {
            label: "Small/Fast",
            dim: SMALL,
            rate_hz: FAST,
        },
        ScalePoint {
            label: "Big/Fast",
            dim: BIG,
            rate_hz: FAST,
        },
    ]
}

/// One benchmark of the Fig. 13 utilization experiment.
pub struct BenchmarkCase {
    /// Paper label ("1", "1F", …, "SS", …, "5").
    pub label: &'static str,
    /// What it is.
    pub description: &'static str,
    /// Build the source application.
    pub build: fn() -> App,
}

/// The eleven benchmarks of Fig. 13, in the paper's order:
/// 1 & 1F: Bayer demosaicing at baseline and faster input rates;
/// 2 & 2F: image histogram at baseline and faster rates;
/// 3: parallel buffer test; 4: multiple convolutions test;
/// SS/SF/BS/BF: the image-processing example at the four scaling points;
/// 5: the application from Fig. 1(b) at its reference configuration.
pub fn fig13_suite() -> Vec<BenchmarkCase> {
    vec![
        BenchmarkCase {
            label: "1",
            description: "Bayer demosaicing, baseline rate",
            build: || apps::bayer(SMALL, SLOW),
        },
        BenchmarkCase {
            label: "1F",
            description: "Bayer demosaicing, faster rate",
            build: || apps::bayer(SMALL, FAST),
        },
        BenchmarkCase {
            label: "2",
            description: "Image histogram, baseline rate",
            build: || apps::histogram_app(SMALL, SLOW, 32),
        },
        BenchmarkCase {
            label: "2F",
            description: "Image histogram, faster rate",
            build: || apps::histogram_app(SMALL, FAST, 32),
        },
        BenchmarkCase {
            label: "3",
            description: "Parallel buffer test",
            build: || apps::parallel_buffer_test(Dim2::new(64, 12), 20.0),
        },
        BenchmarkCase {
            label: "4",
            description: "Multiple convolutions test",
            build: || apps::multi_conv(SMALL, SLOW, 3),
        },
        BenchmarkCase {
            label: "SS",
            description: "Image processing example, small/slow",
            build: || apps::fig1b(SMALL, SLOW),
        },
        BenchmarkCase {
            label: "SF",
            description: "Image processing example, small/fast",
            build: || apps::fig1b(SMALL, FAST),
        },
        BenchmarkCase {
            label: "BS",
            description: "Image processing example, big/slow",
            build: || apps::fig1b(BIG, SLOW),
        },
        BenchmarkCase {
            label: "BF",
            description: "Image processing example, big/fast",
            build: || apps::fig1b(BIG, FAST),
        },
        BenchmarkCase {
            label: "5",
            description: "Application from Fig. 1(b), reference configuration",
            build: || apps::fig1b(SMALL, 100.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_benchmarks() {
        let suite = fig13_suite();
        assert_eq!(suite.len(), 11);
        let labels: Vec<&str> = suite.iter().map(|b| b.label).collect();
        assert_eq!(
            labels,
            vec!["1", "1F", "2", "2F", "3", "4", "SS", "SF", "BS", "BF", "5"]
        );
    }

    #[test]
    fn every_benchmark_builds_and_validates() {
        for case in fig13_suite() {
            let app = (case.build)();
            app.graph.validate().unwrap();
        }
    }

    #[test]
    fn fig11_points_cover_the_grid() {
        let pts = fig11_points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].dim, SMALL);
        assert_eq!(pts[3].dim, BIG);
        assert_eq!(pts[3].rate_hz, FAST);
    }
}
