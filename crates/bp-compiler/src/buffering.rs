//! Automatic buffer insertion (§III-B): wherever a channel's producer grain
//! differs from its consumer's window parameterization, splice in a
//! parameterized buffer kernel sized from the data-flow analysis — plus the
//! feedback-aware channel-capacity derivation (§III-D) that sizes loop
//! back edges so every primed feedback cycle can drain.

use crate::dataflow::analyze;
use bp_core::capacity::{derive_channel_capacities, feedback_loops, ChannelCapacities};
use bp_core::graph::AppGraph;
use bp_core::kernel::NodeRole;
use bp_core::{BpError, Dim2, Result, Step2};

/// One inserted buffer.
#[derive(Clone, Debug)]
pub struct InsertedBuffer {
    /// Node name, e.g. `"Buffer(Median.in)"`.
    pub name: String,
    /// Producer grain entering the buffer.
    pub producer: Dim2,
    /// Window emitted to the consumer.
    pub window: Dim2,
    /// Window step.
    pub step: Step2,
    /// Logical data extent buffered over.
    pub data: Dim2,
    /// Paper-rule storage size in words (double buffer of the larger grain
    /// across the data width) — the `[20x10]`-style annotations of Fig. 11.
    pub storage_words: u64,
}

impl InsertedBuffer {
    /// The paper's `[WxH]` annotation: data width × double the window rows.
    pub fn annotation(&self) -> String {
        format!(
            "[{}x{}]",
            self.data.w,
            2 * self.window.h.max(self.producer.h)
        )
    }
}

/// Report of the buffering pass.
#[derive(Clone, Debug, Default)]
pub struct BufferingReport {
    /// Buffers inserted, in insertion order.
    pub inserted: Vec<InsertedBuffer>,
}

/// One feedback loop with its derived back-edge capacity, rendered with
/// node and channel names for compile reports.
#[derive(Clone, Debug)]
pub struct LoopCapacity {
    /// Loop member node names, in node-id order.
    pub nodes: Vec<String>,
    /// Back edges (channels leaving the loop's feedback kernels), as
    /// `"Src.out -> Dst.in"`.
    pub back_edges: Vec<String>,
    /// Items the loop's feedback kernels prime before any input arrives.
    pub initial_tokens: u64,
    /// Derived capacity of each back edge.
    pub capacity: usize,
}

/// Report of the capacity derivation pass: the resolved per-channel plan
/// plus one human-readable entry per feedback loop that needed sizing.
#[derive(Clone, Debug)]
pub struct CapacityReport {
    /// The per-channel plan the simulator resolves by default.
    pub plan: ChannelCapacities,
    /// Every primed feedback loop, with names (including loops whose
    /// population already fits the flat default).
    pub loops: Vec<LoopCapacity>,
}

/// Derive the per-channel capacity plan for a (compiled) graph and render
/// the feedback-loop entries for reporting. Pure analysis — the simulator
/// runs the same derivation itself when no explicit plan is configured, so
/// this exists for visibility (`bpc`, compile summaries) rather than
/// correctness.
pub fn derive_capacities(graph: &AppGraph) -> CapacityReport {
    let plan = derive_channel_capacities(graph);
    let chan_name = |cid| {
        let c = graph.channel(cid);
        let src = graph.node(c.src.node);
        let dst = graph.node(c.dst.node);
        format!(
            "{}.{} -> {}.{}",
            src.name,
            src.spec().outputs[c.src.port].name,
            dst.name,
            dst.spec().inputs[c.dst.port].name
        )
    };
    let loops = feedback_loops(graph)
        .into_iter()
        .map(|lp| LoopCapacity {
            nodes: lp
                .nodes
                .iter()
                .map(|&id| graph.node(id).name.clone())
                .collect(),
            back_edges: lp.back_edges.iter().map(|&cid| chan_name(cid)).collect(),
            initial_tokens: lp.initial_tokens,
            capacity: lp.back_edge_capacity,
        })
        .collect();
    CapacityReport { plan, loops }
}

/// Insert buffers on every grain-mismatched channel. Must run after
/// alignment (§III-C) and before parallelization (§IV).
pub fn insert_buffers(graph: &mut AppGraph) -> Result<BufferingReport> {
    let df = analyze(graph)?;
    let mut report = BufferingReport::default();

    let channels: Vec<_> = graph.channels().collect();
    for (cid, ch) in channels {
        let dst_node = graph.node(ch.dst.node);
        let dspec = dst_node.spec();
        // Sinks accept any grain; buffers themselves and other plumbing are
        // inserted with matching grains by construction.
        if matches!(dspec.role, NodeRole::Sink) {
            continue;
        }
        let din = &dspec.inputs[ch.dst.port];
        let src_node = graph.node(ch.src.node);
        let sout = &src_node.spec().outputs[ch.src.port];
        if sout.size == din.size && sout.step == din.step {
            continue; // grains agree; the ports' implicit buffers suffice
        }
        let info = df.channels.get(&cid).ok_or_else(|| {
            BpError::Transform(format!(
                "no data-flow info for channel into '{}'",
                dst_node.name
            ))
        })?;
        let producer = sout.size;
        let window = din.size;
        let step = din.step;
        let data = info.shape;
        let consumer = dst_node.name.clone();
        let input_name = din.name.clone();
        let def = bp_kernels::buffer(producer, window, step, data);
        let storage = def.spec.state_words;
        let name = format!("Buffer({consumer}.{input_name})");
        graph.splice(cid, name.clone(), def, 0, 0);
        report.inserted.push(InsertedBuffer {
            name,
            producer,
            window,
            step,
            data,
            storage_words: storage,
        });
    }
    // The transformed graph must still analyze cleanly.
    analyze(graph)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::GraphBuilder;
    use bp_kernels as k;

    /// Unbuffered Fig. 1(a)-style pipeline: source feeds median and conv
    /// directly; subtract needs alignment first, so here we use a single
    /// filter path to isolate buffering.
    #[test]
    fn inserts_buffer_between_source_and_windowed_kernel() {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let med = b.add("Median", k::median(3, 3));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", med, "in");
        b.connect(med, "out", snk, "in");
        let mut g = b.build().unwrap();

        let report = insert_buffers(&mut g).unwrap();
        assert_eq!(report.inserted.len(), 1);
        let buf = &report.inserted[0];
        assert_eq!(buf.window, Dim2::new(3, 3));
        assert_eq!(buf.data, dim);
        assert_eq!(buf.storage_words, 2 * 20 * 3);
        assert_eq!(buf.annotation(), "[20x6]");
        // Topology: Input -> Buffer -> Median.
        let med = g.find_node("Median").unwrap();
        let (_, ch) = g.channel_into(med, 0).unwrap();
        assert_eq!(g.node(ch.src.node).name, "Buffer(Median.in)");
        g.validate().unwrap();
    }

    #[test]
    fn matched_grains_get_no_buffer() {
        let dim = Dim2::new(8, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let sc = b.add("Scale", k::scale(1.0, 0.0));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", sc, "in");
        b.connect(sc, "out", snk, "in");
        let mut g = b.build().unwrap();
        let report = insert_buffers(&mut g).unwrap();
        assert!(report.inserted.is_empty());
    }

    #[test]
    fn coefficient_inputs_are_not_buffered() {
        let dim = Dim2::new(12, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(conv, "out", snk, "in");
        let mut g = b.build().unwrap();
        let report = insert_buffers(&mut g).unwrap();
        // Only the data path gets a buffer; the coeff grain already matches.
        assert_eq!(report.inserted.len(), 1);
        assert_eq!(report.inserted[0].window, Dim2::new(5, 5));
        assert_eq!(report.inserted[0].annotation(), "[12x10]");
    }

    #[test]
    fn capacity_report_names_the_feedback_loop() {
        // A temporal-IIR-shaped loop at 20x12: FrameDelay primes
        // 20*12 + 12 + 1 = 253 items, so the back edge must grow to 254
        // (the whole population parks there whenever external input
        // pauses) while everything else keeps the default.
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let mix = b.add("Mix", k::add());
        let half = b.add("Half", k::scale(0.5, 0.0));
        let fb = b.add("FrameDelay", k::feedback_frame(dim, 0.0));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", mix, "in0");
        b.connect(fb, "out", mix, "in1");
        b.connect(mix, "out", half, "in");
        b.connect(half, "out", fb, "in");
        b.connect(half, "out", snk, "in");
        let g = b.build().unwrap();

        let report = derive_capacities(&g);
        assert_eq!(report.plan.default, 64);
        assert_eq!(report.loops.len(), 1);
        let lp = &report.loops[0];
        assert_eq!(lp.nodes, ["Mix", "Half", "FrameDelay"]);
        assert_eq!(lp.back_edges, ["FrameDelay.out -> Mix.in1"]);
        assert_eq!(lp.initial_tokens, 253);
        assert_eq!(lp.capacity, 254);
        assert_eq!(report.plan.overrides().len(), 1);
    }

    #[test]
    fn acyclic_capacity_report_has_no_loops() {
        let dim = Dim2::new(8, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let sc = b.add("Scale", k::scale(1.0, 0.0));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", sc, "in");
        b.connect(sc, "out", snk, "in");
        let g = b.build().unwrap();
        let report = derive_capacities(&g);
        assert!(report.loops.is_empty());
        assert!(report.plan.overrides().is_empty());
    }

    #[test]
    fn paper_fig3_buffer_sizes() {
        // The running example at 20x12: conv path [20x10], median [20x6].
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let med = b.add("Median", k::median(3, 3));
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (s1, _h1) = k::sink();
        let (s2, _h2) = k::sink();
        let o1 = b.add("O1", s1);
        let o2 = b.add("O2", s2);
        b.connect(src, "out", med, "in");
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(med, "out", o1, "in");
        b.connect(conv, "out", o2, "in");
        let mut g = b.build().unwrap();
        let report = insert_buffers(&mut g).unwrap();
        let mut annotations: Vec<String> = report.inserted.iter().map(|b| b.annotation()).collect();
        annotations.sort();
        assert_eq!(annotations, vec!["[20x10]", "[20x6]"]);
    }
}
