//! Inset analysis (§III-C): how far each intermediate result is offset from
//! the original application input, propagated through the graph so the
//! compiler can detect unaligned data at multi-input kernels (Fig. 8) and
//! compute the trim or pad margins that reconcile them.

use crate::dataflow::Dataflow;
use bp_core::graph::{AppGraph, ChannelId, NodeId};
use bp_core::kernel::{NodeRole, ShapeTransform};
use bp_core::{BpError, Result};
use std::collections::HashMap;

/// Offset of a channel's data origin relative to its application input's
/// origin, in source pixels (fractional for downsampled paths).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InsetInfo {
    /// Columns between the source origin and this data's first column.
    pub x: f64,
    /// Rows between the source origin and this data's first row.
    pub y: f64,
    /// The application input this data derives from, when unique.
    pub source: Option<NodeId>,
}

impl InsetInfo {
    /// Zero inset from the given source.
    pub fn origin(source: NodeId) -> Self {
        Self {
            x: 0.0,
            y: 0.0,
            source: Some(source),
        }
    }
}

/// Result of the inset analysis: per-channel insets.
#[derive(Clone, Debug, Default)]
pub struct InsetAnalysis {
    /// Inset of the data on each channel.
    pub channels: HashMap<ChannelId, InsetInfo>,
}

impl InsetAnalysis {
    /// The inset of the channel feeding `(node, port)`.
    pub fn input_inset(&self, graph: &AppGraph, node: NodeId, port: usize) -> Option<InsetInfo> {
        let (cid, _) = graph.channel_into(node, port)?;
        self.channels.get(&cid).copied()
    }
}

/// Propagate insets through the graph in topological order. Requires a
/// completed [`Dataflow`] only for consistency of traversal (shapes are not
/// needed to accumulate offsets).
pub fn analyze_insets(graph: &AppGraph) -> Result<InsetAnalysis> {
    let order = graph.topo_order()?;
    let mut out = InsetAnalysis::default();

    for id in order {
        let node = graph.node(id);
        let spec = node.spec();
        // Gather input insets by port.
        let in_insets: Vec<Option<InsetInfo>> = (0..spec.inputs.len())
            .map(|p| out.input_inset(graph, id, p))
            .collect();

        let produced: Option<InsetInfo> = match spec.role {
            NodeRole::Source => Some(InsetInfo::origin(id)),
            NodeRole::Const => None,
            NodeRole::Buffer
            | NodeRole::Split
            | NodeRole::Join
            | NodeRole::Replicate
            | NodeRole::Feedback
            | NodeRole::Sink => in_insets.first().copied().flatten(),
            NodeRole::Inset | NodeRole::Pad | NodeRole::User => windowed_inset(spec, &in_insets),
        };

        if let Some(inset) = produced {
            for port in 0..spec.outputs.len() {
                for (cid, _) in graph.channels_from(id, port) {
                    out.channels.insert(cid, inset);
                }
            }
        }
    }
    Ok(out)
}

/// Inset produced by a windowed kernel: the data input's inset plus the
/// input's declared offset. Multiple data inputs contribute the
/// element-wise maximum (the intersection origin); the alignment pass is
/// responsible for making them equal.
fn windowed_inset(
    spec: &bp_core::KernelSpec,
    in_insets: &[Option<InsetInfo>],
) -> Option<InsetInfo> {
    let mut acc: Option<InsetInfo> = None;
    for m in &spec.methods {
        if !m.is_data_method() {
            continue;
        }
        for t in &m.triggers {
            let pi = spec.input_index(&t.input)?;
            let inp = &spec.inputs[pi];
            if inp.replicated {
                continue;
            }
            let base = in_insets[pi]?;
            let adj = match spec.shape {
                ShapeTransform::Crop { left, top, .. } => InsetInfo {
                    x: base.x + left as f64,
                    y: base.y + top as f64,
                    source: base.source,
                },
                ShapeTransform::Pad { left, top, .. } => InsetInfo {
                    x: base.x - left as f64,
                    y: base.y - top as f64,
                    source: base.source,
                },
                _ => InsetInfo {
                    x: base.x + inp.offset.x,
                    y: base.y + inp.offset.y,
                    source: base.source,
                },
            };
            acc = Some(match acc {
                None => adj,
                Some(prev) => InsetInfo {
                    x: prev.x.max(adj.x),
                    y: prev.y.max(adj.y),
                    source: if prev.source == adj.source {
                        prev.source
                    } else {
                        None
                    },
                },
            });
        }
    }
    acc
}

/// The per-input alignment regions at a multi-input kernel: each input's
/// data occupies `[inset, inset + shape)` in source coordinates (Fig. 8).
#[derive(Clone, Debug, PartialEq)]
pub struct AlignmentRegions {
    /// `(port, inset, shape)` for every non-replicated data-method input.
    pub inputs: Vec<(usize, InsetInfo, bp_core::Dim2)>,
}

impl AlignmentRegions {
    /// The intersection of the input regions: `(lo_x, lo_y, hi_x, hi_y)`.
    pub fn intersection(&self) -> (f64, f64, f64, f64) {
        let lo_x = self
            .inputs
            .iter()
            .map(|(_, i, _)| i.x)
            .fold(f64::MIN, f64::max);
        let lo_y = self
            .inputs
            .iter()
            .map(|(_, i, _)| i.y)
            .fold(f64::MIN, f64::max);
        let hi_x = self
            .inputs
            .iter()
            .map(|(_, i, s)| i.x + s.w as f64)
            .fold(f64::MAX, f64::min);
        let hi_y = self
            .inputs
            .iter()
            .map(|(_, i, s)| i.y + s.h as f64)
            .fold(f64::MAX, f64::min);
        (lo_x, lo_y, hi_x, hi_y)
    }

    /// The union of the input regions: `(lo_x, lo_y, hi_x, hi_y)`.
    pub fn union(&self) -> (f64, f64, f64, f64) {
        let lo_x = self
            .inputs
            .iter()
            .map(|(_, i, _)| i.x)
            .fold(f64::MAX, f64::min);
        let lo_y = self
            .inputs
            .iter()
            .map(|(_, i, _)| i.y)
            .fold(f64::MAX, f64::min);
        let hi_x = self
            .inputs
            .iter()
            .map(|(_, i, s)| i.x + s.w as f64)
            .fold(f64::MIN, f64::max);
        let hi_y = self
            .inputs
            .iter()
            .map(|(_, i, s)| i.y + s.h as f64)
            .fold(f64::MIN, f64::max);
        (lo_x, lo_y, hi_x, hi_y)
    }
}

/// Compute the alignment regions for one misaligned node, combining the
/// lenient data-flow shapes with the inset analysis.
pub fn regions_for(
    graph: &AppGraph,
    df: &Dataflow,
    insets: &InsetAnalysis,
    node: NodeId,
    input_ports: &[(usize, bp_core::Dim2)],
) -> Result<AlignmentRegions> {
    let _ = df;
    let mut inputs = Vec::new();
    for (port, shape) in input_ports {
        let inset = insets.input_inset(graph, node, *port).ok_or_else(|| {
            BpError::Analysis(format!(
                "no inset information for input {port} of node '{}'",
                graph.node(node).name
            ))
        })?;
        inputs.push((*port, inset, *shape));
    }
    Ok(AlignmentRegions { inputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Dim2, GraphBuilder, Step2};
    use bp_kernels as k;

    /// The paper's Fig. 8 situation: 3x3 median and 5x5 conv outputs feeding
    /// a subtract.
    fn fig8_graph() -> (AppGraph, NodeId) {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let mbuf = b.add(
            "BufM",
            k::buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, dim),
        );
        let med = b.add("Median", k::median(3, 3));
        let cbuf = b.add(
            "BufC",
            k::buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, dim),
        );
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let sub = b.add("Subtract", k::subtract());
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", mbuf, "in");
        b.connect(mbuf, "out", med, "in");
        b.connect(src, "out", cbuf, "in");
        b.connect(cbuf, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(med, "out", sub, "in0");
        b.connect(conv, "out", sub, "in1");
        b.connect(sub, "out", snk, "in");
        (b.build().unwrap(), sub)
    }

    #[test]
    fn fig8_insets_are_1_and_2() {
        let (g, sub) = fig8_graph();
        let insets = analyze_insets(&g).unwrap();
        let med_in = insets.input_inset(&g, sub, 0).unwrap();
        let conv_in = insets.input_inset(&g, sub, 1).unwrap();
        assert_eq!((med_in.x, med_in.y), (1.0, 1.0));
        assert_eq!((conv_in.x, conv_in.y), (2.0, 2.0));
        assert_eq!(med_in.source, conv_in.source);
    }

    #[test]
    fn fig8_regions_and_margins() {
        let (g, sub) = fig8_graph();
        let insets = analyze_insets(&g).unwrap();
        let df = crate::dataflow::analyze_with(&g, crate::dataflow::Strictness::Lenient).unwrap();
        assert_eq!(df.misalignments.len(), 1);
        let mis = &df.misalignments[0];
        assert_eq!(mis.node, sub);
        let regions = regions_for(&g, &df, &insets, sub, &mis.inputs).unwrap();
        // Median output 18x10 at (1,1); conv output 16x8 at (2,2).
        let (lo_x, lo_y, hi_x, hi_y) = regions.intersection();
        assert_eq!((lo_x, lo_y, hi_x, hi_y), (2.0, 2.0, 18.0, 10.0));
        let (ux, uy, uhx, uhy) = regions.union();
        assert_eq!((ux, uy, uhx, uhy), (1.0, 1.0, 19.0, 11.0));
    }

    #[test]
    fn source_channels_have_zero_inset() {
        let (g, _) = fig8_graph();
        let insets = analyze_insets(&g).unwrap();
        let src = g.find_node("Input").unwrap();
        for (cid, _) in g.out_channels(src) {
            let i = insets.channels[&cid];
            assert_eq!((i.x, i.y), (0.0, 0.0));
            assert_eq!(i.source, Some(src));
        }
    }
}
