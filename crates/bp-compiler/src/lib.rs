//! # bp-compiler — analyses and transformations for block-parallel programs
//!
//! Implements the compiler of the paper:
//! - [`dataflow`]: iteration sizes and rates from static input sizes/rates
//!   (§III-A), with feedback support via a work-list fixpoint (§III-D);
//! - [`inset`]: inset propagation and alignment regions (§III-C, Fig. 8);
//! - [`mod@align`]: automatic trim/pad insertion (§III-C);
//! - [`buffering`]: automatic buffer insertion and sizing (§III-B);
//! - [`mod@parallelize`]: replication with split/join insertion, dependency-edge
//!   caps, and column-wise buffer splitting (§IV, Fig. 10);
//! - [`multiplex`]: 1:1 and greedy kernel-to-PE mappings (§V);
//! - [`pipeline`]: the end-to-end driver.

#![warn(missing_docs)]

pub mod align;
pub mod buffering;
pub mod check;
pub mod dataflow;
pub mod fuse;
pub mod inset;
pub mod multiplex;
pub mod parallelize;
pub mod pipeline;
pub mod place;
pub mod reuse;

pub use align::{align, AlignPolicy, AlignReport};
pub use buffering::{
    derive_capacities, insert_buffers, BufferingReport, CapacityReport, LoopCapacity,
};
pub use check::{check_compiled, CheckReport, CheckViolation};
pub use dataflow::{analyze, analyze_with, ChannelInfo, Dataflow, NodeAnalysis, Strictness};
pub use fuse::{fuse_pipelines, FuseReport};
pub use inset::{analyze_insets, InsetAnalysis, InsetInfo};
pub use multiplex::{map, map_greedy, map_one_to_one, map_packed, MappingKind};
pub use parallelize::{parallelize, ParallelizeReport, ReplicaReason};
pub use pipeline::{compile, summarize, to_dot, CompileOptions, CompileReport, Compiled};
pub use place::{place_annealed, AnnealConfig, Placement};
pub use reuse::{parallelize_with_reuse, ReuseReport, ReuseVariant};
