//! Reuse-optimized buffering (Fig. 9): an alternative parallelization for
//! buffer→kernel pairs.
//!
//! The default transformation (Fig. 9a) round-robins windows from one
//! buffer to the kernel replicas, which destroys the in-order data reuse a
//! windowed kernel could otherwise exploit (each replica sees every k-th
//! window, so consecutive windows share nothing). The reuse-optimized form
//! replicates the *input buffer* column-wise so each replica consumes its
//! own column range in order (Fig. 9b), recovering the `(wh - s_x s_y)/wh`
//! steady-state reuse; correct output buffering (Fig. 9c) adds slack after
//! each replica so none stalls the in-order collection. The paper describes
//! this optimization but did not evaluate it; here it is implemented and
//! benchmarked as an ablation.

use crate::dataflow::analyze;
use crate::parallelize::{parallelize, ParallelizeReport};
use bp_core::geometry::steady_state_reuse;
use bp_core::graph::{AppGraph, NodeId, PortRef};
use bp_core::kernel::{NodeRole, Parallelism};
use bp_core::machine::MachineSpec;
use bp_core::{BpError, Dim2, Result, Step2};
use bp_kernels::split::plan_column_ranges;

/// Which Fig. 9 buffering strategy to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuseVariant {
    /// Fig. 9a: single input buffer, round-robin split (the default pass).
    RoundRobin,
    /// Fig. 9b: column-split input buffers feeding replicas directly, no
    /// extra output buffering.
    SplitInput,
    /// Fig. 9c: 9b plus pass-through output buffers for stall-free
    /// collection.
    SplitInputBufferedOutput,
}

/// Report of the reuse transformation.
#[derive(Clone, Debug)]
pub struct ReuseReport {
    /// Variant applied.
    pub variant: ReuseVariant,
    /// `(buffer, kernel, replicas)` groups transformed.
    pub groups: Vec<(String, String, u32)>,
    /// Steady-state reuse fraction each replica now enjoys at the
    /// buffer→kernel interface (0 under round-robin distribution).
    pub reuse_fraction: f64,
    /// The standard parallelization report for the rest of the graph.
    pub parallelize: ParallelizeReport,
}

/// Apply the selected Fig. 9 strategy to every buffer→kernel pair that
/// needs compute replication, then run the standard parallelization pass
/// for everything else. Expects an aligned, buffered graph.
pub fn parallelize_with_reuse(
    graph: &mut AppGraph,
    machine: &MachineSpec,
    variant: ReuseVariant,
) -> Result<ReuseReport> {
    let mut groups = Vec::new();
    let mut reuse_fraction = 0.0;
    if variant != ReuseVariant::RoundRobin {
        let df = analyze(graph)?;
        // Find candidates first (immutable scan), then transform.
        let mut candidates: Vec<(NodeId, NodeId, u32)> = Vec::new();
        for (id, node) in graph.nodes() {
            let spec = node.spec();
            if spec.role != NodeRole::Buffer {
                continue;
            }
            let outs = graph.out_channels(id);
            if outs.len() != 1 {
                continue;
            }
            let consumer = outs[0].1.dst.node;
            let cspec = graph.node(consumer).spec();
            if cspec.role != NodeRole::User
                || cspec.parallelism != Parallelism::DataParallel
                || cspec.outputs.len() != 1
            {
                continue;
            }
            // Consumer must have exactly one non-replicated data input (the
            // buffered one).
            let data_inputs = cspec.inputs.iter().filter(|i| !i.replicated).count();
            if data_inputs != 1 {
                continue;
            }
            let util = df.nodes[consumer.0].total_cycles_per_sec(machine)
                / machine.usable_cycles_per_sec();
            let k = util.ceil().max(1.0) as u32;
            if k < 2 {
                continue;
            }
            candidates.push((id, consumer, k));
        }
        for (buf, consumer, k) in candidates {
            let spec = graph.node(consumer).spec().clone();
            let input = spec.inputs.iter().find(|i| !i.replicated).unwrap();
            reuse_fraction = steady_state_reuse(input.size, input.step);
            let bname = graph.node(buf).name.clone();
            let cname = graph.node(consumer).name.clone();
            transform_group(graph, &df, buf, consumer, k, variant)?;
            groups.push((bname, cname, k));
        }
    }
    let parallelize_report = parallelize(graph, machine)?;
    Ok(ReuseReport {
        variant,
        groups,
        reuse_fraction,
        parallelize: parallelize_report,
    })
}

fn transform_group(
    graph: &mut AppGraph,
    df: &crate::dataflow::Dataflow,
    buf: NodeId,
    consumer: NodeId,
    k: u32,
    variant: ReuseVariant,
) -> Result<()> {
    let bspec = graph.node(buf).spec().clone();
    let cspec = graph.node(consumer).spec().clone();
    let out = bspec.outputs[0].clone();
    let producer = bspec.inputs[0].size;
    if producer != Dim2::ONE {
        return Err(BpError::Transform(
            "reuse optimization requires pixel-grain buffer input".into(),
        ));
    }
    let (in_cid, in_ch) = graph.channel_into(buf, 0).unwrap();
    let data = df
        .channels
        .get(&in_cid)
        .map(|c| c.shape)
        .ok_or_else(|| BpError::Transform("no shape at reuse buffer".into()))?;
    let ranges = plan_column_ranges(data.w, out.size.w, out.step.x, k as usize);
    let kk = ranges.len();
    if kk < 2 {
        return Ok(());
    }
    let counts: Vec<u32> = ranges
        .iter()
        .map(|r| (r.width() - out.size.w) / out.step.x + 1)
        .collect();
    let iters_y = (data.h - out.size.h) / out.step.y + 1;

    let bname = graph.node(buf).name.clone();
    let cname = graph.node(consumer).name.clone();

    // Split FSM on the pixel stream.
    let split = graph.add_node(
        format!("Split({bname})"),
        bp_kernels::split_columns(ranges.clone()),
    );
    graph.set_channel(
        in_cid,
        bp_core::Channel {
            src: in_ch.src,
            dst: PortRef {
                node: split,
                port: 0,
            },
        },
    );

    // Column-range sub-buffers; the original becomes part 0.
    let mut bufs = Vec::with_capacity(kk);
    for (i, r) in ranges.iter().enumerate() {
        let part_data = Dim2::new(r.width(), data.h);
        let def = bp_kernels::buffer(producer, out.size, out.step, part_data);
        if i == 0 {
            graph.node_mut(buf).name = format!("{bname}_0");
            graph.node_mut(buf).def = def;
            bufs.push(buf);
        } else {
            bufs.push(graph.add_node(format!("{bname}_{i}"), def));
        }
        graph.add_channel(
            PortRef {
                node: split,
                port: i,
            },
            PortRef {
                node: bufs[i],
                port: 0,
            },
        );
    }

    // Consumer replicas, each fed in-order by its own buffer.
    let cdef = graph.node(consumer).def.clone();
    let data_port = cspec.inputs.iter().position(|i| !i.replicated).unwrap();
    let mut reps = Vec::with_capacity(kk);
    graph.node_mut(consumer).name = format!("{cname}_0");
    reps.push(consumer);
    for i in 1..kk {
        reps.push(graph.add_node(format!("{cname}_{i}"), cdef.clone()));
    }
    // Retarget the buffer->consumer channel to buffer_0 -> consumer_0; it
    // already points there (buf is part 0, consumer is replica 0).
    for (i, (&b, &c)) in bufs.iter().zip(&reps).enumerate() {
        if i == 0 {
            continue;
        }
        graph.add_channel(
            PortRef { node: b, port: 0 },
            PortRef {
                node: c,
                port: data_port,
            },
        );
    }

    // Replicated (coefficient) inputs fan out to every replica.
    for (port, input) in cspec.inputs.iter().enumerate() {
        if !input.replicated {
            continue;
        }
        let (cid, ch) = graph.channel_into(consumer, port).unwrap();
        let rep = graph.add_node(
            format!("Replicate({cname}.{})", input.name),
            bp_kernels::replicate(kk, input.size),
        );
        graph.set_channel(
            cid,
            bp_core::Channel {
                src: ch.src,
                dst: PortRef { node: rep, port: 0 },
            },
        );
        for (i, &c) in reps.iter().enumerate() {
            graph.add_channel(PortRef { node: rep, port: i }, PortRef { node: c, port });
        }
    }

    // Optional pass-through output buffers (Fig. 9c).
    let tails: Vec<NodeId> = if variant == ReuseVariant::SplitInputBufferedOutput {
        reps.iter()
            .enumerate()
            .map(|(i, &c)| {
                let ob = graph.add_node(
                    format!("OutBuf({cname}_{i})"),
                    bp_kernels::buffer(
                        cspec.outputs[0].size,
                        cspec.outputs[0].size,
                        Step2::new(cspec.outputs[0].size.w, cspec.outputs[0].size.h),
                        Dim2::new(counts[i] * cspec.outputs[0].size.w, iters_y),
                    ),
                );
                graph.add_channel(PortRef { node: c, port: 0 }, PortRef { node: ob, port: 0 });
                ob
            })
            .collect()
    } else {
        reps.clone()
    };

    // Column-group join restores scan order.
    let join = graph.add_node(
        format!("Join({cname})"),
        bp_kernels::join_columns(
            counts.clone(),
            cspec.outputs[0].size,
            Dim2::new(
                counts.iter().sum::<u32>() * cspec.outputs[0].size.w,
                iters_y * cspec.outputs[0].size.h,
            ),
        ),
    );
    for (cid, ch) in graph.channels_from(consumer, 0) {
        if ch.dst.node == join || bufs.contains(&ch.dst.node) || tails.contains(&ch.dst.node) {
            continue;
        }
        graph.set_channel(
            cid,
            bp_core::Channel {
                src: PortRef {
                    node: join,
                    port: 0,
                },
                dst: ch.dst,
            },
        );
    }
    for (i, &t) in tails.iter().enumerate() {
        graph.add_channel(
            PortRef { node: t, port: 0 },
            PortRef {
                node: join,
                port: i,
            },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{align, AlignPolicy};
    use crate::buffering::insert_buffers;
    use bp_core::GraphBuilder;
    use bp_kernels as k;

    fn conv_app(rate: f64) -> (AppGraph, k::SinkHandle) {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, rate);
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (sdef, h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(conv, "out", snk, "in");
        (b.build().unwrap(), h)
    }

    fn prepared(rate: f64) -> (AppGraph, k::SinkHandle) {
        let (mut g, h) = conv_app(rate);
        align(&mut g, AlignPolicy::Trim).unwrap();
        insert_buffers(&mut g).unwrap();
        (g, h)
    }

    #[test]
    fn split_input_variant_builds_per_replica_buffers() {
        let (mut g, _h) = prepared(200.0);
        let report = parallelize_with_reuse(
            &mut g,
            &MachineSpec::default_eval(),
            ReuseVariant::SplitInput,
        )
        .unwrap();
        assert_eq!(report.groups.len(), 1);
        let (_, _, k) = report.groups[0];
        assert!(k >= 2);
        assert!((report.reuse_fraction - 24.0 / 25.0).abs() < 1e-12);
        assert!(g.find_node("Conv_0").is_some());
        assert!(g.find_node("Buffer(Conv.in)_0").is_some());
        assert!(g.find_node("Join(Conv)").is_some());
        // No round-robin split of windows was inserted for the conv.
        assert!(g.find_node("Split(Conv.in)").is_none());
        g.validate().unwrap();
    }

    #[test]
    fn buffered_output_variant_adds_out_buffers() {
        let (mut g, _h) = prepared(200.0);
        parallelize_with_reuse(
            &mut g,
            &MachineSpec::default_eval(),
            ReuseVariant::SplitInputBufferedOutput,
        )
        .unwrap();
        assert!(g.find_node("OutBuf(Conv_0)").is_some());
        g.validate().unwrap();
    }

    #[test]
    fn round_robin_variant_is_the_default_pass() {
        let (mut g, _h) = prepared(200.0);
        let report = parallelize_with_reuse(
            &mut g,
            &MachineSpec::default_eval(),
            ReuseVariant::RoundRobin,
        )
        .unwrap();
        assert!(report.groups.is_empty());
        assert_eq!(report.reuse_fraction, 0.0);
        assert!(g.find_node("Split(Conv.in)").is_some());
    }

    #[test]
    fn slow_rate_leaves_graph_unchanged() {
        let (mut g, _h) = prepared(50.0);
        let report = parallelize_with_reuse(
            &mut g,
            &MachineSpec::default_eval(),
            ReuseVariant::SplitInput,
        )
        .unwrap();
        assert!(report.groups.is_empty());
    }

    #[test]
    fn all_variants_are_functionally_identical() {
        use bp_sim::FunctionalExecutor;
        let mut outputs = Vec::new();
        for variant in [
            ReuseVariant::RoundRobin,
            ReuseVariant::SplitInput,
            ReuseVariant::SplitInputBufferedOutput,
        ] {
            let (mut g, h) = prepared(200.0);
            parallelize_with_reuse(&mut g, &MachineSpec::default_eval(), variant).unwrap();
            let mut ex = FunctionalExecutor::new(&g).unwrap();
            ex.run_frames(2).unwrap();
            assert_eq!(ex.residual_items(), 0, "{variant:?}");
            outputs.push(h.frames());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
        assert_eq!(outputs[0].len(), 2);
    }
}
