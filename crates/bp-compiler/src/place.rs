//! Simulated-annealing placement of PEs onto a 2-D mesh (§IV-D).
//!
//! The paper implemented an annealing placement pass but did not integrate
//! it with the simulator (communication delay does not affect throughput in
//! its model). We implement it as an optional post-mapping pass: it
//! minimizes total traffic × Manhattan-distance over the mesh, which stands
//! in for on-chip network energy.

use crate::dataflow::Dataflow;
use bp_core::graph::AppGraph;
use bp_core::machine::Mapping;
use bp_core::{CommModel, Rng64};

/// A placement of PEs on a rectangular mesh.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Mesh dimensions (columns, rows).
    pub mesh: (u32, u32),
    /// Coordinates of each PE, indexed by PE id.
    pub coords: Vec<(u32, u32)>,
    /// Final cost: Σ (words/s between PEs × Manhattan distance).
    pub cost: f64,
    /// Cost of the initial (row-major) placement, for comparison.
    pub initial_cost: f64,
}

impl Placement {
    /// Relative improvement of annealing over the row-major layout.
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.cost / self.initial_cost
    }

    /// A grid [`CommModel`] bound to this placement's coordinates: each
    /// inter-PE message pays `base_latency_s + per_hop_s × Manhattan hops`
    /// on the annealed layout (plus `per_word_s` serialization). This is
    /// the bridge from the placement pass to the timed simulators — the
    /// same distance the annealer minimized becomes the delay the
    /// simulation charges.
    pub fn comm_model(&self, base_latency_s: f64, per_hop_s: f64, per_word_s: f64) -> CommModel {
        CommModel::grid(base_latency_s, per_hop_s, per_word_s).with_coords(self.coords.clone())
    }

    /// Aggregate latency cost of this placement under `model`: Σ over
    /// inter-PE channel traffic of words/s × per-message latency. Unlike
    /// the annealing objective (pure traffic × distance), this weighs hops
    /// by the model's actual seconds-per-hop, so alternative placements
    /// can be compared in simulated-latency terms.
    pub fn latency_cost(&self, traffic: &[Vec<f64>], model: &CommModel) -> f64 {
        let m = model.clone().with_coords(self.coords.clone());
        let n = self.coords.len();
        let mut cost = 0.0;
        for (i, row) in traffic.iter().enumerate() {
            for (j, w) in row.iter().enumerate() {
                if *w > 0.0 && i != j {
                    cost += *w * m.channel_latency_s(i, j, n);
                }
            }
        }
        cost
    }
}

/// Inter-PE traffic matrix: words per second flowing between distinct PEs.
pub fn traffic_matrix(graph: &AppGraph, df: &Dataflow, mapping: &Mapping) -> Vec<Vec<f64>> {
    let n = mapping.num_pes;
    let mut m = vec![vec![0.0; n]; n];
    for (cid, ch) in graph.channels() {
        let Some(info) = df.channels.get(&cid) else {
            continue;
        };
        let a = mapping.pe_of_node[ch.src.node.0];
        let b = mapping.pe_of_node[ch.dst.node.0];
        if a != b {
            m[a][b] += info.words_per_sec();
        }
    }
    m
}

fn manhattan(a: (u32, u32), b: (u32, u32)) -> f64 {
    ((a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs()) as f64
}

fn total_cost(traffic: &[Vec<f64>], coords: &[(u32, u32)]) -> f64 {
    let mut cost = 0.0;
    for (i, row) in traffic.iter().enumerate() {
        for (j, w) in row.iter().enumerate() {
            if *w > 0.0 {
                cost += *w * manhattan(coords[i], coords[j]);
            }
        }
    }
    cost
}

/// Annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Swap attempts.
    pub iterations: u32,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied every `iterations / 100` steps.
    pub cooling: f64,
    /// RNG seed (placement must be reproducible).
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            initial_temp_frac: 0.1,
            cooling: 0.95,
            seed: 0xb10c_9a11,
        }
    }
}

/// Place the mapping's PEs on the smallest square mesh that fits, then
/// anneal pairwise swaps to reduce traffic-weighted distance.
pub fn place_annealed(
    graph: &AppGraph,
    df: &Dataflow,
    mapping: &Mapping,
    config: &AnnealConfig,
) -> Placement {
    let n = mapping.num_pes;
    let side = (n as f64).sqrt().ceil() as u32;
    let mesh = (side, side.max(1));
    // Row-major initial placement.
    let mut coords: Vec<(u32, u32)> = (0..n as u32).map(|i| (i % side, i / side)).collect();
    let traffic = traffic_matrix(graph, df, mapping);
    let initial_cost = total_cost(&traffic, &coords);
    if n < 2 {
        return Placement {
            mesh,
            coords,
            cost: initial_cost,
            initial_cost,
        };
    }

    let mut rng = Rng64::seed_from_u64(config.seed);
    let mut cost = initial_cost;
    let mut temp = (initial_cost * config.initial_temp_frac).max(1e-9);
    let cool_every = (config.iterations / 100).max(1);
    for it in 0..config.iterations {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a == b {
            continue;
        }
        coords.swap(a, b);
        let new_cost = total_cost(&traffic, &coords);
        let delta = new_cost - cost;
        if delta <= 0.0 || rng.gen_f64() < (-delta / temp).exp() {
            cost = new_cost;
        } else {
            coords.swap(a, b); // revert
        }
        if it % cool_every == 0 {
            temp *= config.cooling;
        }
    }
    Placement {
        mesh,
        coords,
        cost,
        initial_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use crate::multiplex::map_one_to_one;
    use bp_core::{Dim2, GraphBuilder, Step2};
    use bp_kernels as k;

    fn chain(n: usize) -> AppGraph {
        let dim = Dim2::new(16, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let mut prev = src;
        for i in 0..n {
            let s = b.add(format!("S{i}"), k::scale(1.0, 0.0));
            b.connect(prev, "out", s, "in");
            prev = s;
        }
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(prev, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn annealing_never_worsens_the_layout() {
        let g = chain(10);
        let df = analyze(&g).unwrap();
        let m = map_one_to_one(&g);
        let p = place_annealed(&g, &df, &m, &AnnealConfig::default());
        assert!(p.cost <= p.initial_cost + 1e-9);
        assert_eq!(p.coords.len(), m.num_pes);
        // All coordinates distinct and inside the mesh.
        let mut seen = std::collections::HashSet::new();
        for c in &p.coords {
            assert!(c.0 < p.mesh.0 && c.1 < p.mesh.1);
            assert!(seen.insert(*c));
        }
    }

    #[test]
    fn annealing_is_deterministic_for_a_seed() {
        let g = chain(8);
        let df = analyze(&g).unwrap();
        let m = map_one_to_one(&g);
        let cfg = AnnealConfig::default();
        let p1 = place_annealed(&g, &df, &m, &cfg);
        let p2 = place_annealed(&g, &df, &m, &cfg);
        assert_eq!(p1.coords, p2.coords);
        assert_eq!(p1.cost, p2.cost);
    }

    #[test]
    fn pipeline_placement_improves_over_row_major() {
        // A 12-stage pipeline on a 4x4 mesh: row-major puts consecutive
        // stages 3 hops apart at row wraps; annealing should recover a
        // snake-like layout with lower cost.
        let g = chain(14);
        let df = analyze(&g).unwrap();
        let m = map_one_to_one(&g);
        let p = place_annealed(&g, &df, &m, &AnnealConfig::default());
        assert!(
            p.cost < p.initial_cost,
            "cost {} vs initial {}",
            p.cost,
            p.initial_cost
        );
        assert!(p.improvement() > 0.0);
    }

    #[test]
    fn comm_model_inherits_annealed_coordinates() {
        let g = chain(14);
        let df = analyze(&g).unwrap();
        let m = map_one_to_one(&g);
        let p = place_annealed(&g, &df, &m, &AnnealConfig::default());
        let model = p.comm_model(1e-6, 2e-7, 0.0);
        assert_eq!(model.coords.as_deref(), Some(p.coords.as_slice()));
        // Hop counts must agree with the placement's own Manhattan metric
        // for every PE pair, so the simulator charges exactly the distance
        // the annealer optimized.
        let n = m.num_pes;
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    model.hops(i, j, n) as f64,
                    manhattan(p.coords[i], p.coords[j]),
                    "hop mismatch for PE pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn latency_cost_tracks_annealing_cost_for_pure_hop_models() {
        // With base = 0 and per_word = 0, the latency cost is per_hop ×
        // (traffic × distance) = per_hop × annealing cost, so a better
        // placement under the annealer is better under the comm model too.
        let g = chain(14);
        let df = analyze(&g).unwrap();
        let m = map_one_to_one(&g);
        let traffic = traffic_matrix(&g, &df, &m);
        let p = place_annealed(&g, &df, &m, &AnnealConfig::default());
        let per_hop = 3e-8;
        let model = CommModel::grid(0.0, per_hop, 0.0);
        let got = p.latency_cost(&traffic, &model);
        assert!((got - per_hop * p.cost).abs() <= 1e-9 * per_hop * p.cost.max(1.0));
        // Row-major initial layout must cost at least as much.
        let side = (m.num_pes as f64).sqrt().ceil() as u32;
        let row_major = Placement {
            mesh: p.mesh,
            coords: (0..m.num_pes as u32)
                .map(|i| (i % side, i / side))
                .collect(),
            cost: p.initial_cost,
            initial_cost: p.initial_cost,
        };
        assert!(row_major.latency_cost(&traffic, &model) >= got - 1e-12);
    }

    #[test]
    fn single_pe_is_trivial() {
        let dim = Dim2::new(4, 4);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let buf = b.add(
            "B",
            k::buffer(Dim2::ONE, Dim2::new(2, 2), Step2::new(2, 2), dim),
        );
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", snk, "in");
        let g = b.build().unwrap();
        let df = analyze(&g).unwrap();
        let m = Mapping::from_assignment(vec![0, 0, 0]);
        let p = place_annealed(&g, &df, &m, &AnnealConfig::default());
        assert_eq!(p.coords.len(), 1);
        assert_eq!(p.cost, 0.0);
    }
}
