//! Data-flow analysis (§III-A): propagate the application inputs' statically
//! known sizes and rates through the graph, producing per-channel logical
//! shapes and item rates and per-kernel iteration sizes, method rates, and
//! resource demands.
//!
//! The analysis runs as a work-list fixpoint (rather than a strict
//! topological sweep) so that feedback loops broken by feedback kernels
//! (§III-D) converge: a feedback kernel's output shape becomes known once
//! its input shape does.

use bp_core::geometry::{iterations, Dim2};
use bp_core::graph::{AppGraph, ChannelId, NodeId};
use bp_core::kernel::{method_read_words, NodeRole, ShapeTransform};
use bp_core::method::{MethodSpec, TriggerOn};
use bp_core::token::TokenKind;
use bp_core::{BpError, Result};
use std::collections::HashMap;

/// Everything the analysis knows about the data on one channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelInfo {
    /// Logical extent of one dataset (e.g. one image) flowing here.
    pub shape: Dim2,
    /// Datasets per source frame (1 for ordinary image paths; e.g. the
    /// per-line outputs of an end-of-line-triggered method have one dataset
    /// per row).
    pub per_frame: f64,
    /// Source frame rate in Hz.
    pub frame_rate_hz: f64,
    /// Size of each transferred item (the producing port's grain).
    pub item_dim: Dim2,
    /// Items per second.
    pub items_per_sec: f64,
    /// Item rows per second — the rate of `EndOfLine` tokens.
    pub rows_per_sec: f64,
    /// `EndOfFrame` tokens per second.
    pub eof_per_sec: f64,
}

impl ChannelInfo {
    /// Datasets per second.
    pub fn datasets_per_sec(&self) -> f64 {
        self.per_frame * self.frame_rate_hz
    }

    /// Data words per second.
    pub fn words_per_sec(&self) -> f64 {
        self.items_per_sec * self.item_dim.area() as f64
    }
}

/// Per-node analysis results.
#[derive(Clone, Debug, Default)]
pub struct NodeAnalysis {
    /// Iteration grid of the node's primary windowed data method, if any.
    pub iterations: Option<Dim2>,
    /// Invocations per second of each method (indexed like the spec).
    pub method_rate_hz: Vec<f64>,
    /// Total compute demand (method cycles only).
    pub compute_cycles_per_sec: f64,
    /// Words read from inputs per second.
    pub read_words_per_sec: f64,
    /// Words written to outputs per second.
    pub write_words_per_sec: f64,
}

impl NodeAnalysis {
    /// Total PE cycles per second demanded, charging reads and writes at
    /// the machine's per-word costs — this is what parallelization divides
    /// by the PE capacity (§IV).
    pub fn total_cycles_per_sec(&self, machine: &bp_core::MachineSpec) -> f64 {
        self.compute_cycles_per_sec
            + self.read_words_per_sec * machine.read_cost_per_word
            + self.write_words_per_sec * machine.write_cost_per_word
    }
}

/// How the analysis reacts to inputs that disagree on iteration counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strictness {
    /// Disagreement is an error (the language's static guarantee).
    Strict,
    /// Disagreement is recorded as a [`Misalignment`] and analysis continues
    /// with the intersection of the input shapes — used by the alignment
    /// pass (§III-C) to decide where to insert trim/pad kernels.
    Lenient,
}

/// A multi-input data method whose inputs carry differently-sized data
/// (differing halos, Fig. 8).
#[derive(Clone, Debug, PartialEq)]
pub struct Misalignment {
    /// The affected node.
    pub node: NodeId,
    /// Index of the method whose trigger inputs disagree.
    pub method: usize,
    /// `(input port, logical shape)` for every non-replicated trigger input.
    pub inputs: Vec<(usize, Dim2)>,
}

/// Result of the data-flow analysis.
#[derive(Clone, Debug, Default)]
pub struct Dataflow {
    /// Per-channel info, keyed by channel id.
    pub channels: HashMap<ChannelId, ChannelInfo>,
    /// Per-node analysis, indexed by node id.
    pub nodes: Vec<NodeAnalysis>,
    /// Misalignments found (lenient mode only).
    pub misalignments: Vec<Misalignment>,
}

impl Dataflow {
    /// The info on the single channel feeding `(node, input port)`.
    pub fn input_info(&self, graph: &AppGraph, node: NodeId, port: usize) -> Option<ChannelInfo> {
        let (cid, _) = graph.channel_into(node, port)?;
        self.channels.get(&cid).copied()
    }
}

fn token_rate(info: &ChannelInfo, kind: TokenKind, method: &MethodSpec) -> f64 {
    match kind {
        TokenKind::EndOfLine => info.rows_per_sec,
        TokenKind::EndOfFrame => info.eof_per_sec,
        TokenKind::Custom(_) => method.max_rate_hz.unwrap_or(0.0),
    }
}

/// Run the analysis strictly. Errors if data inputs of a method disagree on
/// shape or iteration counts, or if a windowed access does not tile its
/// input — the static guarantees the language requires (§II).
pub fn analyze(graph: &AppGraph) -> Result<Dataflow> {
    analyze_with(graph, Strictness::Strict)
}

/// Run the analysis with the given strictness.
pub fn analyze_with(graph: &AppGraph, mode: Strictness) -> Result<Dataflow> {
    let n = graph.node_count();
    let mut df = Dataflow {
        channels: HashMap::new(),
        nodes: vec![NodeAnalysis::default(); n],
        misalignments: Vec::new(),
    };

    // Seed sources.
    let mut ready: Vec<bool> = vec![false; n];
    let mut pending: Vec<NodeId> = graph.topo_order()?;
    // Fixpoint over the (mostly topological) order; feedback nodes may need
    // a second visit once their in-channel is known.
    let mut guard = 0usize;
    while !pending.is_empty() {
        guard += 1;
        if guard > 4 * n + 8 {
            return Err(BpError::Analysis(
                "data-flow analysis did not converge (unbroken cycle?)".into(),
            ));
        }
        let mut next = Vec::new();
        let mut progressed = false;
        for id in pending {
            if ready[id.0] {
                continue;
            }
            match try_analyze_node(graph, &mut df, id, mode)? {
                true => {
                    ready[id.0] = true;
                    progressed = true;
                }
                false => next.push(id),
            }
        }
        if !next.is_empty() && !progressed {
            // No ordinary progress: a feedback node may need its output
            // shape seeded lazily (§III-D work-list rule). Otherwise we are
            // stuck.
            let forced = force_feedback(graph, &mut df, &mut ready, &next)?;
            if !forced {
                let names: Vec<&str> = next
                    .iter()
                    .map(|id| graph.node(*id).name.as_str())
                    .collect();
                return Err(BpError::Analysis(format!(
                    "data-flow analysis stuck at nodes: {}",
                    names.join(", ")
                )));
            }
        }
        pending = next;
    }
    Ok(df)
}

/// A feedback node whose input shape is still unknown can be seeded from
/// the shape that will eventually feed it — for frame-delay loops that is
/// the shape of the loop's forward input. We seed it from its *downstream*
/// consumer's other inputs once those are known; failing that, from the
/// application source shape.
fn force_feedback(
    graph: &AppGraph,
    df: &mut Dataflow,
    ready: &mut [bool],
    pending: &[NodeId],
) -> Result<bool> {
    for id in pending {
        let node = graph.node(*id);
        if node.spec().role != NodeRole::Feedback {
            continue;
        }
        // Find the consumer of the feedback output and any of its *other*
        // input channels that is already analyzed; mirror that shape.
        for (_, out_ch) in graph.out_channels(*id) {
            let consumer = out_ch.dst.node;
            for (cid, ch) in graph.in_channels(consumer) {
                if ch.src.node == *id {
                    continue;
                }
                if let Some(info) = df.channels.get(&cid).copied() {
                    for (ocid, _) in graph.out_channels(*id) {
                        df.channels.insert(ocid, info);
                    }
                    ready[id.0] = true;
                    // Leave the node analysis rates to a later visit; the
                    // pass below recomputes them when the in-channel is
                    // known. For now approximate with the mirrored info.
                    let mut na = NodeAnalysis {
                        method_rate_hz: vec![0.0; node.spec().methods.len()],
                        ..Default::default()
                    };
                    if let Some(mi) = node.spec().methods.iter().position(|m| m.is_data_method()) {
                        na.method_rate_hz[mi] = info.items_per_sec;
                        na.compute_cycles_per_sec =
                            info.items_per_sec * node.spec().methods[mi].cost.cycles as f64;
                        na.read_words_per_sec = info.words_per_sec();
                        na.write_words_per_sec = info.words_per_sec();
                    }
                    df.nodes[id.0] = na;
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

/// Try to compute a node's analysis; returns false when its inputs are not
/// all known yet.
fn try_analyze_node(
    graph: &AppGraph,
    df: &mut Dataflow,
    id: NodeId,
    mode: Strictness,
) -> Result<bool> {
    let node = graph.node(id);
    let spec = node.spec();

    // Collect input infos (by port).
    let mut inputs: Vec<Option<ChannelInfo>> = Vec::with_capacity(spec.inputs.len());
    for port in 0..spec.inputs.len() {
        match graph.channel_into(id, port) {
            Some((cid, _)) => inputs.push(df.channels.get(&cid).copied()),
            None => inputs.push(None),
        }
    }
    // Constant inputs (fed by Const nodes) get rate-zero info immediately,
    // so they never block readiness.
    if spec.role != NodeRole::Source && inputs.iter().any(|i| i.is_none()) {
        return Ok(false);
    }

    let mut na = NodeAnalysis {
        iterations: None,
        method_rate_hz: vec![0.0; spec.methods.len()],
        compute_cycles_per_sec: 0.0,
        read_words_per_sec: 0.0,
        write_words_per_sec: 0.0,
    };

    // Per-port output info to install on out channels.
    let mut out_info: Vec<Option<ChannelInfo>> = vec![None; spec.outputs.len()];

    match spec.role {
        NodeRole::Source => {
            let info = graph.source_info(id).ok_or_else(|| {
                BpError::Analysis(format!("source '{}' missing rate info", node.name))
            })?;
            let ci = ChannelInfo {
                shape: info.frame,
                per_frame: 1.0,
                frame_rate_hz: info.rate_hz,
                item_dim: Dim2::ONE,
                items_per_sec: info.frame.area() as f64 * info.rate_hz,
                rows_per_sec: info.frame.h as f64 * info.rate_hz,
                eof_per_sec: info.rate_hz,
            };
            for oi in out_info.iter_mut() {
                *oi = Some(ci);
            }
            if let Some(mi) = spec.methods.iter().position(|m| m.is_source()) {
                na.method_rate_hz[mi] = ci.items_per_sec;
                na.compute_cycles_per_sec = ci.items_per_sec * spec.methods[mi].cost.cycles as f64;
                na.write_words_per_sec = ci.items_per_sec;
            }
        }
        NodeRole::Const => {
            // Fires once: rates are ~0; downstream sees the block shape.
            let dim = spec.outputs.first().map(|o| o.size).unwrap_or(Dim2::ONE);
            let ci = ChannelInfo {
                shape: dim,
                per_frame: 0.0,
                frame_rate_hz: 0.0,
                item_dim: dim,
                items_per_sec: 0.0,
                rows_per_sec: 0.0,
                eof_per_sec: 0.0,
            };
            for oi in out_info.iter_mut() {
                *oi = Some(ci);
            }
        }
        NodeRole::Buffer => {
            let in_info = inputs[0].unwrap();
            let out = &spec.outputs[0];
            // Buffers know the data extent they were constructed for; a
            // column-split buffer's input channel still carries the full
            // stream's nominal shape, so the constructed extent governs.
            let data = match spec.shape {
                ShapeTransform::Fixed { data } => data,
                _ => in_info.shape,
            };
            let iters = iterations(data, out.size, out.step).ok_or_else(|| {
                BpError::Analysis(format!(
                    "buffer '{}': window {} step {} does not tile data {}",
                    node.name, out.size, out.step, data
                ))
            })?;
            na.iterations = Some(iters);
            let items = iters.area() as f64 * in_info.datasets_per_sec();
            out_info[0] = Some(ChannelInfo {
                shape: data,
                per_frame: in_info.per_frame,
                frame_rate_hz: in_info.frame_rate_hz,
                item_dim: out.size,
                items_per_sec: items,
                rows_per_sec: iters.h as f64 * in_info.datasets_per_sec(),
                eof_per_sec: in_info.eof_per_sec,
            });
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Split => {
            let in_info = inputs[0].unwrap();
            let k = spec.outputs.len() as f64;
            match spec.kind.as_str() {
                "split_cols" => {
                    // Pixel-routed by column range; approximate each branch
                    // by its width share (overlap makes the total slightly
                    // exceed 1.0, which is faithful: shared columns are
                    // sent twice).
                    for (i, oi) in out_info.iter_mut().enumerate() {
                        let _ = i;
                        *oi = Some(ChannelInfo {
                            items_per_sec: in_info.items_per_sec / k,
                            ..in_info
                        });
                    }
                }
                _ => {
                    for oi in out_info.iter_mut() {
                        *oi = Some(ChannelInfo {
                            items_per_sec: in_info.items_per_sec / k,
                            ..in_info
                        });
                    }
                }
            }
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Join => {
            let total: f64 = inputs.iter().map(|i| i.unwrap().items_per_sec).sum();
            let first = inputs[0].unwrap();
            // Column-group joins reassemble the full extent recorded at
            // construction; round-robin joins pass the branch shape through.
            let shape = match spec.shape {
                ShapeTransform::Fixed { data } => data,
                _ => first.shape,
            };
            out_info[0] = Some(ChannelInfo {
                shape,
                items_per_sec: total,
                ..first
            });
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Replicate => {
            let in_info = inputs[0].unwrap();
            for oi in out_info.iter_mut() {
                *oi = Some(in_info);
            }
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Feedback => {
            // Pass-through; shape mirrors the input.
            let in_info = inputs[0].unwrap();
            out_info[0] = Some(in_info);
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Sink => {
            rate_methods(spec, &inputs, &mut na);
        }
        NodeRole::Inset | NodeRole::Pad | NodeRole::User => {
            analyze_windowed(
                id,
                node.name.as_str(),
                spec,
                &inputs,
                &mut na,
                &mut out_info,
                mode,
                &mut df.misalignments,
            )?;
        }
    }

    // Charge read/write words from the rates (generic path; sources set
    // their own above).
    if spec.role != NodeRole::Source {
        for (mi, m) in spec.methods.iter().enumerate() {
            na.read_words_per_sec += na.method_rate_hz[mi] * method_read_words(spec, m) as f64;
        }
        na.compute_cycles_per_sec = spec
            .methods
            .iter()
            .enumerate()
            .map(|(mi, m)| na.method_rate_hz[mi] * m.cost.cycles as f64)
            .sum();
        // Writes follow the out-channel item rates (exact for buffers too).
        na.write_words_per_sec = out_info.iter().flatten().map(|ci| ci.words_per_sec()).sum();
    }

    // Install out-channel infos.
    for (port, oi) in out_info.iter().enumerate() {
        if let Some(ci) = oi {
            for (cid, _) in graph.channels_from(id, port) {
                df.channels.insert(cid, *ci);
            }
        }
    }
    df.nodes[id.0] = na;
    Ok(true)
}

/// Method rates for plumbing kernels: data methods fire per incoming item,
/// token methods per incoming token.
fn rate_methods(spec: &bp_core::KernelSpec, inputs: &[Option<ChannelInfo>], na: &mut NodeAnalysis) {
    for (mi, m) in spec.methods.iter().enumerate() {
        if m.triggers.is_empty() {
            continue;
        }
        let t = &m.triggers[0];
        let Some(pi) = spec.input_index(&t.input) else {
            continue;
        };
        let Some(info) = inputs[pi] else { continue };
        na.method_rate_hz[mi] = match t.on {
            TriggerOn::Data => info.items_per_sec,
            TriggerOn::Token(kind) => token_rate(&info, kind, m),
        };
    }
}

/// The general §III-A rule for user/inset/pad kernels: iteration counts from
/// each data method's windowed inputs, output shapes from iteration grid ×
/// output size (or token-rate blocks for token-triggered outputs).
#[allow(clippy::too_many_arguments)]
fn analyze_windowed(
    id: NodeId,
    name: &str,
    spec: &bp_core::KernelSpec,
    inputs: &[Option<ChannelInfo>],
    na: &mut NodeAnalysis,
    out_info: &mut [Option<ChannelInfo>],
    mode: Strictness,
    misalignments: &mut Vec<Misalignment>,
) -> Result<()> {
    // Data methods run first: when a data method and a token method write
    // the same output (e.g. a trim kernel's pass-through of EOL/EOF), the
    // data method defines the output's shape; the tokens merely punctuate
    // the same stream.
    let mut data_owned: Vec<bool> = vec![false; spec.outputs.len()];
    for (mi, m) in spec.methods.iter().enumerate() {
        if m.triggers.is_empty() || !m.is_data_method() {
            continue;
        }
        // Data method: every non-replicated trigger input contributes an
        // iteration count; all must agree.
        let mut contributions: Vec<(usize, Dim2, Dim2, ChannelInfo)> = Vec::new();
        for t in &m.triggers {
            let pi = spec.input_index(&t.input).unwrap();
            let inp = &spec.inputs[pi];
            let info = inputs[pi].unwrap();
            if inp.replicated {
                // Coefficient-style: does not constrain iteration space.
                na.method_rate_hz[mi] = na.method_rate_hz[mi].max(info.items_per_sec);
                continue;
            }
            let it = iterations(info.shape, inp.size, inp.step).ok_or_else(|| {
                BpError::Analysis(format!(
                    "kernel '{name}': input '{}' {}{} does not tile data {}",
                    inp.name, inp.size, inp.step, info.shape
                ))
            })?;
            contributions.push((pi, it, info.shape, info));
        }
        if contributions.is_empty() {
            // Pure replicated-input method (e.g. loadCoeff): rate set above.
            continue;
        }
        let agreed = contributions.windows(2).all(|w| w[0].1 == w[1].1);
        if !agreed {
            match mode {
                Strictness::Strict => {
                    let detail: Vec<String> = contributions
                        .iter()
                        .map(|(pi, it, sh, _)| {
                            format!("'{}': data {} -> {} iters", spec.inputs[*pi].name, sh, it)
                        })
                        .collect();
                    return Err(BpError::Analysis(format!(
                        "kernel '{name}': inputs disagree on iteration count \
                         ({}); run the alignment pass (§III-C)",
                        detail.join(", ")
                    )));
                }
                Strictness::Lenient => {
                    misalignments.push(Misalignment {
                        node: id,
                        method: mi,
                        inputs: contributions
                            .iter()
                            .map(|(pi, _, sh, _)| (*pi, *sh))
                            .collect(),
                    });
                }
            }
        }
        // Proceed with the intersection of the iteration grids (exact when
        // aligned; the lenient approximation otherwise).
        let it = contributions
            .iter()
            .map(|(_, it, _, _)| *it)
            .reduce(|a, b| Dim2::new(a.w.min(b.w), a.h.min(b.h)))
            .unwrap();
        let info = contributions[0].3;
        // The firing rate is the *item* rate of the trigger channels when
        // that is lower than the logical iteration rate: a round-robin
        // split hands each replica only its share of the windows, while a
        // raw (not yet buffered) pixel channel carries more items than the
        // kernel has iterations.
        let logical_rate = it.area() as f64 * info.datasets_per_sec();
        let channel_rate = contributions
            .iter()
            .map(|(_, _, _, ci)| ci.items_per_sec)
            .fold(f64::MAX, f64::min);
        let rate = logical_rate.min(channel_rate);
        let division = if logical_rate > 0.0 {
            rate / logical_rate
        } else {
            0.0
        };
        na.method_rate_hz[mi] = rate;
        if na.iterations.is_none() || it.area() > na.iterations.unwrap().area() {
            na.iterations = Some(it);
        }
        // Output shapes.
        for oname in &m.outputs {
            let oi = spec.output_index(oname).unwrap();
            let o = &spec.outputs[oi];
            let shape = match spec.shape {
                ShapeTransform::Crop {
                    left,
                    right,
                    top,
                    bottom,
                } => Dim2::new(info.shape.w - left - right, info.shape.h - top - bottom),
                ShapeTransform::Pad {
                    left,
                    right,
                    top,
                    bottom,
                } => Dim2::new(info.shape.w + left + right, info.shape.h + top + bottom),
                _ => Dim2::new(it.w * o.size.w, it.h * o.size.h),
            };
            let items =
                shape.area() as f64 / o.size.area() as f64 * info.datasets_per_sec() * division;
            out_info[oi] = Some(ChannelInfo {
                shape,
                per_frame: info.per_frame,
                frame_rate_hz: info.frame_rate_hz,
                item_dim: o.size,
                items_per_sec: items,
                rows_per_sec: (shape.h / o.size.h) as f64 * info.datasets_per_sec(),
                eof_per_sec: info.eof_per_sec,
            });
            data_owned[oi] = true;
        }
    }
    // Token-triggered methods second; they only define outputs no data
    // method owns (e.g. the histogram's per-frame counts block).
    for (mi, m) in spec.methods.iter().enumerate() {
        if m.triggers.is_empty() || m.is_data_method() {
            continue;
        }
        let t = &m.triggers[0];
        let pi = spec.input_index(&t.input).unwrap();
        let info = inputs[pi].unwrap();
        let TriggerOn::Token(kind) = t.on else {
            unreachable!()
        };
        let rate = token_rate(&info, kind, m);
        na.method_rate_hz[mi] = rate;
        for oname in &m.outputs {
            let oi = spec.output_index(oname).unwrap();
            if data_owned[oi] {
                continue;
            }
            let o = &spec.outputs[oi];
            out_info[oi] = Some(ChannelInfo {
                shape: o.size,
                per_frame: match kind {
                    TokenKind::EndOfFrame => info.per_frame,
                    TokenKind::EndOfLine => info.per_frame * info.shape.h as f64,
                    TokenKind::Custom(_) => 0.0,
                },
                frame_rate_hz: info.frame_rate_hz,
                item_dim: o.size,
                items_per_sec: rate,
                rows_per_sec: rate,
                eof_per_sec: rate,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{GraphBuilder, Step2};
    use bp_kernels as k;

    /// source(100x100 @50) -> buffer -> conv5x5 -> sink, per the paper's
    /// §III-A example: conv iterates 96x96 at 50 Hz.
    fn conv_app() -> (AppGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let src = b.add_source(
            "Input",
            k::pattern_source(Dim2::new(100, 100)),
            Dim2::new(100, 100),
            50.0,
        );
        let buf = b.add(
            "Buf",
            k::buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, Dim2::new(100, 100)),
        );
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(conv, "out", snk, "in");
        let g = b.build().unwrap();
        (g, conv, buf)
    }

    #[test]
    fn paper_example_iteration_counts() {
        let (g, conv, buf) = conv_app();
        let df = analyze(&g).unwrap();
        assert_eq!(df.nodes[conv.0].iterations, Some(Dim2::new(96, 96)));
        assert_eq!(df.nodes[buf.0].iterations, Some(Dim2::new(96, 96)));
        // Conv fires 96*96*50 times per second.
        let run_idx = g.node(conv).spec().method_index("runConvolve").unwrap();
        let rate = df.nodes[conv.0].method_rate_hz[run_idx];
        assert!((rate - 96.0 * 96.0 * 50.0).abs() < 1e-6);
        // Output shape is 96x96 at 50 Hz.
        let (ocid, _) = g.out_channels(conv)[0];
        let info = df.channels[&ocid];
        assert_eq!(info.shape, Dim2::new(96, 96));
        assert_eq!(info.frame_rate_hz, 50.0);
        assert_eq!(info.item_dim, Dim2::ONE);
    }

    #[test]
    fn buffer_output_item_rate_is_iteration_rate() {
        let (g, _conv, buf) = conv_app();
        let df = analyze(&g).unwrap();
        let (ocid, _) = g.out_channels(buf)[0];
        let info = df.channels[&ocid];
        assert_eq!(info.item_dim, Dim2::new(5, 5));
        assert!((info.items_per_sec - 96.0 * 96.0 * 50.0).abs() < 1e-6);
        // Logical shape is unchanged by the buffer.
        assert_eq!(info.shape, Dim2::new(100, 100));
    }

    #[test]
    fn compute_demand_follows_costs() {
        let (g, conv, _buf) = conv_app();
        let df = analyze(&g).unwrap();
        let rate = 96.0 * 96.0 * 50.0;
        let expected = rate * (10.0 + 3.0 * 25.0);
        assert!((df.nodes[conv.0].compute_cycles_per_sec - expected).abs() < 1.0);
        // Reads: 25 words per firing.
        assert!((df.nodes[conv.0].read_words_per_sec - rate * 25.0).abs() < 1.0);
        // Writes: 1 word per firing.
        assert!((df.nodes[conv.0].write_words_per_sec - rate).abs() < 1.0);
    }

    #[test]
    fn misaligned_multi_input_kernel_is_detected() {
        // source -> median(3x3) path and direct path into subtract: the
        // median output is 2 smaller, so subtract's inputs disagree.
        let mut b = GraphBuilder::new();
        let src = b.add_source(
            "Input",
            k::pattern_source(Dim2::new(8, 8)),
            Dim2::new(8, 8),
            10.0,
        );
        let buf = b.add(
            "Buf",
            k::buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, Dim2::new(8, 8)),
        );
        let med = b.add("Med", k::median(3, 3));
        let sub = b.add("Sub", k::subtract());
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", med, "in");
        b.connect(med, "out", sub, "in0");
        b.connect(src, "out", sub, "in1");
        b.connect(sub, "out", snk, "in");
        let g = b.build().unwrap();
        let err = analyze(&g).unwrap_err();
        assert!(err.to_string().contains("disagree"), "{err}");
    }

    #[test]
    fn histogram_rates_per_frame() {
        let mut b = GraphBuilder::new();
        let dim = Dim2::new(16, 8);
        let src = b.add_source("Input", k::pattern_source(dim), dim, 30.0);
        let hist = b.add("Hist", k::histogram(32));
        let bins = b.add(
            "Bins",
            k::const_source("bins", k::uniform_bins(32, 0.0, 256.0)),
        );
        let merge = b.add("Merge", k::histogram_merge(32));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", hist, "in");
        b.connect(bins, "out", hist, "bins");
        b.connect(hist, "out", merge, "in");
        b.connect(merge, "out", snk, "in");
        let g = b.build().unwrap();
        let df = analyze(&g).unwrap();
        let spec = g.node(hist).spec().clone();
        let count_i = spec.method_index("count").unwrap();
        let finish_i = spec.method_index("finishCount").unwrap();
        let na = &df.nodes[hist.0];
        assert!((na.method_rate_hz[count_i] - 16.0 * 8.0 * 30.0).abs() < 1e-6);
        assert!((na.method_rate_hz[finish_i] - 30.0).abs() < 1e-9);
        // Histogram output: one 32x1 block per frame.
        let (ocid, _) = g.out_channels(hist)[0];
        let info = df.channels[&ocid];
        assert_eq!(info.shape, Dim2::new(32, 1));
        assert!((info.items_per_sec - 30.0).abs() < 1e-9);
        // Merge accumulates once per frame.
        let mna = &df.nodes[merge.0];
        let acc_i = g.node(merge).spec().method_index("accumulate").unwrap();
        assert!((mna.method_rate_hz[acc_i] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn feedback_loop_converges() {
        let mut b = GraphBuilder::new();
        let dim = Dim2::new(4, 4);
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let mix = b.add("Mix", k::add());
        let sc = b.add("Scale", k::scale(0.5, 0.0));
        let fb = b.add("Fb", k::feedback_frame(dim, 0.0));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", mix, "in0");
        b.connect(fb, "out", mix, "in1");
        b.connect(mix, "out", sc, "in");
        b.connect(sc, "out", fb, "in");
        b.connect(sc, "out", snk, "in");
        let g = b.build().unwrap();
        let df = analyze(&g).unwrap();
        assert_eq!(df.nodes[mix.0].iterations, Some(dim));
        let (ocid, _) = g.out_channels(fb)[0];
        assert_eq!(df.channels[&ocid].shape, dim);
    }
}
