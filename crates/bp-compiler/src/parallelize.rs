//! Automatic parallelization (§IV): replicate kernels to meet the real-time
//! throughput constraint, inserting split/join FSM kernels to distribute
//! and collect the data, replicating coefficient-style inputs, honoring
//! data-dependency edges (§IV-B), and splitting storage-bound buffers
//! column-wise with halo replication (§IV-C, Fig. 10).

use crate::dataflow::{analyze, Dataflow};
use bp_core::graph::{AppGraph, NodeId, PortRef};
use bp_core::kernel::{NodeRole, Parallelism};
use bp_core::machine::MachineSpec;
use bp_core::{BpError, Dim2, Result};
use bp_kernels::split::plan_column_ranges;

/// Why a node received its replica count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaReason {
    /// One instance suffices.
    Single,
    /// Compute (cycles + I/O time) exceeded one PE.
    Compute,
    /// Storage exceeded one PE's memory (buffers).
    Memory,
    /// A data-dependency edge capped the count (§IV-B).
    DepEdgeCapped,
}

/// Per-node parallelization decision.
#[derive(Clone, Debug)]
pub struct NodePlan {
    /// Node name before transformation.
    pub name: String,
    /// Replicas demanded by resources alone.
    pub desired: u32,
    /// Replicas actually instantiated.
    pub granted: u32,
    /// Why.
    pub reason: ReplicaReason,
    /// PE-utilization estimate of one instance before replication.
    pub utilization: f64,
}

/// Report of the parallelization pass.
#[derive(Clone, Debug, Default)]
pub struct ParallelizeReport {
    /// Decisions for every node considered.
    pub plans: Vec<NodePlan>,
    /// Names of serial kernels whose single instance exceeds one PE — the
    /// application cannot meet its rate (reported, not fatal, so callers
    /// can present diagnostics).
    pub infeasible_serial: Vec<String>,
    /// Split kernels inserted.
    pub splits_inserted: usize,
    /// Join kernels inserted.
    pub joins_inserted: usize,
    /// Replicate kernels inserted.
    pub replicates_inserted: usize,
}

impl ParallelizeReport {
    /// Total replicas across all parallelized kernels.
    pub fn total_replicas(&self) -> u32 {
        self.plans.iter().map(|p| p.granted).sum()
    }

    /// The plan for a node by (pre-transformation) name.
    pub fn plan_for(&self, name: &str) -> Option<&NodePlan> {
        self.plans.iter().find(|p| p.name == name)
    }
}

/// Compute required replicas for every node and transform the graph.
/// Requires a buffered, aligned graph (run §III passes first).
pub fn parallelize(graph: &mut AppGraph, machine: &MachineSpec) -> Result<ParallelizeReport> {
    let df = analyze(graph)?;
    let mut report = ParallelizeReport::default();

    // Desired replica counts.
    let n = graph.node_count();
    let mut desired: Vec<u32> = vec![1; n];
    let mut reasons: Vec<ReplicaReason> = vec![ReplicaReason::Single; n];
    let mut utils: Vec<f64> = vec![0.0; n];
    for (id, node) in graph.nodes() {
        let spec = node.spec();
        let na = &df.nodes[id.0];
        let cpu = na.total_cycles_per_sec(machine) / machine.usable_cycles_per_sec();
        utils[id.0] = cpu;
        let k_cpu = cpu.ceil().max(1.0) as u32;
        let k_mem = if spec.role == NodeRole::Buffer {
            (spec.memory_words() as f64 / machine.pe_memory_words as f64)
                .ceil()
                .max(1.0) as u32
        } else {
            1
        };
        match spec.parallelism {
            Parallelism::DataParallel if spec.role == NodeRole::User => {
                if spec.memory_words() > machine.pe_memory_words {
                    return Err(BpError::Transform(format!(
                        "kernel '{}' needs {} words but a PE has {}; \
                         data-parallel kernels cannot be split across PEs",
                        node.name,
                        spec.memory_words(),
                        machine.pe_memory_words
                    )));
                }
                desired[id.0] = k_cpu;
                if k_cpu > 1 {
                    reasons[id.0] = ReplicaReason::Compute;
                }
            }
            Parallelism::ColumnSplit => {
                desired[id.0] = k_cpu.max(k_mem);
                if desired[id.0] > 1 {
                    reasons[id.0] = if k_mem >= k_cpu {
                        ReplicaReason::Memory
                    } else {
                        ReplicaReason::Compute
                    };
                }
            }
            _ => {
                // Serial kernels, sources, sinks, consts, plumbing.
                if cpu > 1.0 && spec.parallelism == Parallelism::Serial {
                    report.infeasible_serial.push(node.name.clone());
                }
            }
        }
    }

    // Data-dependency caps (§IV-B), to fixpoint.
    let deps: Vec<_> = graph.dep_edges().to_vec();
    loop {
        let mut changed = false;
        for d in &deps {
            let cap = desired[d.src.0];
            if desired[d.dst.0] > cap {
                desired[d.dst.0] = cap.max(1);
                reasons[d.dst.0] = ReplicaReason::DepEdgeCapped;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Transform. Node ids are stable (nodes are only added), so we iterate
    // over the original id range.
    for idx in 0..n {
        let id = NodeId(idx);
        let k = desired[idx];
        report.plans.push(NodePlan {
            name: graph.node(id).name.clone(),
            desired: desired[idx],
            granted: k,
            reason: reasons[idx],
            utilization: utils[idx],
        });
        if k <= 1 {
            continue;
        }
        match graph.node(id).spec().parallelism {
            Parallelism::DataParallel => {
                replicate_data_parallel(graph, &df, id, k, &mut report)?;
            }
            Parallelism::ColumnSplit => {
                split_buffer_columns(graph, &df, id, k, &mut report)?;
            }
            Parallelism::Serial => unreachable!("serial kernels keep k = 1"),
        }
    }

    graph.validate()?;
    Ok(report)
}

/// Replicate a data-parallel kernel behind round-robin split/join kernels
/// (§IV-A). Replicated inputs get replicate fan-outs instead of splits.
fn replicate_data_parallel(
    graph: &mut AppGraph,
    df: &Dataflow,
    id: NodeId,
    k: u32,
    report: &mut ParallelizeReport,
) -> Result<()> {
    let base_name = graph.node(id).name.clone();
    let def = graph.node(id).def.clone();
    let spec = def.spec.clone();

    // Create replicas 1..k; the original node becomes replica 0.
    graph.node_mut(id).name = format!("{base_name}_0");
    let mut replicas = vec![id];
    for r in 1..k {
        let nid = graph.add_node(format!("{base_name}_{r}"), def.clone());
        replicas.push(nid);
    }

    // Inputs: split or replicate.
    for (port, input) in spec.inputs.iter().enumerate() {
        let (cid, ch) = graph.channel_into(id, port).ok_or_else(|| {
            BpError::Transform(format!(
                "input '{}' of '{base_name}' unconnected",
                input.name
            ))
        })?;
        let grain = df
            .channels
            .get(&cid)
            .map(|c| c.item_dim)
            .unwrap_or(input.size);
        let (node_def, label) = if input.replicated {
            report.replicates_inserted += 1;
            (
                bp_kernels::replicate(k as usize, grain),
                format!("Replicate({base_name}.{})", input.name),
            )
        } else {
            report.splits_inserted += 1;
            (
                bp_kernels::split_rr(k as usize, grain),
                format!("Split({base_name}.{})", input.name),
            )
        };
        let dist = graph.add_node(label, node_def);
        // Retarget the original channel to the distributor...
        graph.set_channel(
            cid,
            bp_core::Channel {
                src: ch.src,
                dst: PortRef {
                    node: dist,
                    port: 0,
                },
            },
        );
        // ...and fan out to the replicas.
        for (r, rep) in replicas.iter().enumerate() {
            graph.add_channel(
                PortRef {
                    node: dist,
                    port: r,
                },
                PortRef { node: *rep, port },
            );
        }
    }

    // Outputs: join back in order.
    for (port, output) in spec.outputs.iter().enumerate() {
        let out_channels = graph.channels_from(id, port);
        if out_channels.is_empty() {
            continue;
        }
        report.joins_inserted += 1;
        let join = graph.add_node(
            format!("Join({base_name}.{})", output.name),
            bp_kernels::join_rr(k as usize, output.size),
        );
        // Original consumers now read from the join.
        for (cid, ch) in out_channels {
            graph.set_channel(
                cid,
                bp_core::Channel {
                    src: PortRef {
                        node: join,
                        port: 0,
                    },
                    dst: ch.dst,
                },
            );
        }
        // Replicas feed the join.
        for (r, rep) in replicas.iter().enumerate() {
            graph.add_channel(
                PortRef { node: *rep, port },
                PortRef {
                    node: join,
                    port: r,
                },
            );
        }
    }
    Ok(())
}

/// Split a storage-bound buffer column-wise (§IV-C, Fig. 10): overlapping
/// column ranges with the consumer window's halo replicated, collected by a
/// column-group join that restores scan-line order.
fn split_buffer_columns(
    graph: &mut AppGraph,
    df: &Dataflow,
    id: NodeId,
    k: u32,
    report: &mut ParallelizeReport,
) -> Result<()> {
    let base_name = graph.node(id).name.clone();
    let spec = graph.node(id).spec().clone();
    let out = spec.outputs[0].clone();
    let producer = spec.inputs[0].size;
    if producer != Dim2::ONE {
        return Err(BpError::Transform(format!(
            "buffer '{base_name}' with non-pixel producer grain {} cannot be column-split",
            producer
        )));
    }

    let (in_cid, in_ch) = graph
        .channel_into(id, 0)
        .ok_or_else(|| BpError::Transform(format!("buffer '{base_name}' unconnected")))?;
    let data = df
        .channels
        .get(&in_cid)
        .map(|c| c.shape)
        .ok_or_else(|| BpError::Transform("no shape for buffer input".into()))?;

    let ranges = plan_column_ranges(data.w, out.size.w, out.step.x, k as usize);
    let kk = ranges.len();
    if kk < 2 {
        return Ok(()); // cannot split further; single instance stands
    }
    let counts: Vec<u32> = ranges
        .iter()
        .map(|r| (r.width() - out.size.w) / out.step.x + 1)
        .collect();

    // Split FSM in front.
    report.splits_inserted += 1;
    let split = graph.add_node(
        format!("Split({base_name})"),
        bp_kernels::split_columns(ranges.clone()),
    );
    graph.set_channel(
        in_cid,
        bp_core::Channel {
            src: in_ch.src,
            dst: PortRef {
                node: split,
                port: 0,
            },
        },
    );

    // Sub-buffers: the original node becomes part 0 with a narrower extent.
    let mut parts = Vec::with_capacity(kk);
    for (i, r) in ranges.iter().enumerate() {
        let part_data = Dim2::new(r.width(), data.h);
        let def = bp_kernels::buffer(producer, out.size, out.step, part_data);
        if i == 0 {
            graph.node_mut(id).name = format!("{base_name}_0");
            graph.node_mut(id).def = def;
            parts.push(id);
        } else {
            parts.push(graph.add_node(format!("{base_name}_{i}"), def));
        }
    }
    for (i, part) in parts.iter().enumerate() {
        graph.add_channel(
            PortRef {
                node: split,
                port: i,
            },
            PortRef {
                node: *part,
                port: 0,
            },
        );
    }

    // Column-group join behind.
    report.joins_inserted += 1;
    let join = graph.add_node(
        format!("Join({base_name})"),
        bp_kernels::join_columns(counts, out.size, data),
    );
    for (cid, ch) in graph.channels_from(id, 0) {
        // Skip the channels we just added from split to part 0.
        if ch.dst.node == id || parts.contains(&ch.dst.node) {
            continue;
        }
        graph.set_channel(
            cid,
            bp_core::Channel {
                src: PortRef {
                    node: join,
                    port: 0,
                },
                dst: ch.dst,
            },
        );
    }
    for (i, part) in parts.iter().enumerate() {
        graph.add_channel(
            PortRef {
                node: *part,
                port: 0,
            },
            PortRef {
                node: join,
                port: i,
            },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::kernel::NodeRole;
    use bp_core::{GraphBuilder, Step2};
    use bp_kernels as k;

    fn machine() -> MachineSpec {
        MachineSpec::default_eval()
    }

    /// Buffered conv pipeline at a rate that demands ~3 replicas:
    /// 16x8 iterations/frame * 200 Hz * (85 + 25r + 1w) cycles ≈ 2.8 PEs.
    fn conv_pipeline(rate: f64) -> AppGraph {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, rate);
        let buf = b.add(
            "Buffer(Conv.in)",
            k::buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, dim),
        );
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(conv, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn fast_input_replicates_conv_three_ways() {
        let mut g = conv_pipeline(200.0);
        let report = parallelize(&mut g, &machine()).unwrap();
        let plan = report.plan_for("Conv").unwrap();
        assert_eq!(plan.granted, 3, "utilization {:.2}", plan.utilization);
        assert_eq!(plan.reason, ReplicaReason::Compute);
        // Conv_0..2 exist, one split on the data path, one replicate for
        // the coefficients, one join on the output.
        assert!(g.find_node("Conv_0").is_some());
        assert!(g.find_node("Conv_2").is_some());
        assert!(g.find_node("Split(Conv.in)").is_some());
        assert!(g.find_node("Replicate(Conv.coeff)").is_some());
        assert!(g.find_node("Join(Conv.out)").is_some());
        g.validate().unwrap();
    }

    #[test]
    fn slow_input_needs_no_replication() {
        let mut g = conv_pipeline(50.0);
        let before = g.node_count();
        let report = parallelize(&mut g, &machine()).unwrap();
        assert_eq!(report.plan_for("Conv").unwrap().granted, 1);
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn dep_edge_caps_merge_parallelism() {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        // Very fast input: histogram alone would want several replicas.
        let src = b.add_source("Input", k::pattern_source(dim), dim, 400.0);
        let hist = b.add("Histogram", k::histogram(32));
        let bins = b.add(
            "Bins",
            k::const_source("bins", k::uniform_bins(32, 0.0, 256.0)),
        );
        let merge = b.add("Merge", k::histogram_merge(32));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", hist, "in");
        b.connect(bins, "out", hist, "bins");
        b.connect(hist, "out", merge, "in");
        b.connect(merge, "out", snk, "in");
        b.dep_edge(src, merge);
        let mut g = b.build().unwrap();
        let report = parallelize(&mut g, &machine()).unwrap();
        let hp = report.plan_for("Histogram").unwrap();
        assert!(hp.granted > 1, "histogram should replicate: {hp:?}");
        let mp = report.plan_for("Merge").unwrap();
        assert_eq!(mp.granted, 1);
        g.validate().unwrap();
    }

    #[test]
    fn oversized_buffer_splits_by_columns() {
        // 64-wide data: buffer storage 64*10=640 words > 320/PE => 2+ parts.
        let dim = Dim2::new(64, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let buf = b.add(
            "Buffer(Conv.in)",
            k::buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, dim),
        );
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(conv, "out", snk, "in");
        let mut g = b.build().unwrap();
        let report = parallelize(&mut g, &machine()).unwrap();
        let bp = report.plan_for("Buffer(Conv.in)").unwrap();
        assert!(bp.granted >= 2, "{bp:?}");
        assert_eq!(bp.reason, ReplicaReason::Memory);
        assert!(g.find_node("Split(Buffer(Conv.in))").is_some());
        assert!(g.find_node("Join(Buffer(Conv.in))").is_some());
        assert!(g.find_node("Buffer(Conv.in)_0").is_some());
        assert!(g.find_node("Buffer(Conv.in)_1").is_some());
        // Each part's storage now fits a PE.
        let p0 = g.find_node("Buffer(Conv.in)_0").unwrap();
        assert!(g.node(p0).spec().state_words <= machine().pe_memory_words);
        g.validate().unwrap();
    }

    #[test]
    fn role_census_matches_fig4_shape() {
        // Small/fast: conv x3 and its split/join/replicate set.
        let mut g = conv_pipeline(200.0);
        parallelize(&mut g, &machine()).unwrap();
        let census = g.role_census();
        assert_eq!(census.get(&NodeRole::Split).copied().unwrap_or(0), 1);
        assert_eq!(census.get(&NodeRole::Join).copied().unwrap_or(0), 1);
        assert_eq!(census.get(&NodeRole::Replicate).copied().unwrap_or(0), 1);
        assert_eq!(census.get(&NodeRole::User).copied().unwrap_or(0), 3);
    }
}
