//! Pipeline fusion (§IV-B's "multiple parallel pipelines"): when a
//! round-robin join immediately feeds a round-robin split of the same
//! width, the pair is an identity routing — item `j` leaves replica
//! `j mod k` of the producer and re-enters replica `j mod k` of the
//! consumer. Fusing bypasses both FSMs, wiring replica `i` of the upstream
//! stage directly to replica `i` of the downstream stage: the compiler's
//! realization of parallel pipelines, saving two kernels, their PE time,
//! and a hop of latency per stage boundary.
//!
//! The rewrite is safe for the automatic tokens too: the split broadcast
//! every EOL/EOF to all upstream replicas, so each replica's output stream
//! already carries the full token sequence the downstream replica expects.

use bp_core::graph::{AppGraph, NodeId};
use bp_core::kernel::NodeRole;
use bp_core::{BpError, Result};

/// Report of the fusion pass.
#[derive(Clone, Debug, Default)]
pub struct FuseReport {
    /// `(join, split)` pairs bypassed, by node name.
    pub fused: Vec<(String, String)>,
}

/// Fuse every `join_rr -> split_rr` pair of matching width whose join output
/// has the split as its only consumer. Returns what was fused; the graph is
/// compacted (the orphaned FSM nodes disappear and node ids are renumbered).
pub fn fuse_pipelines(graph: &mut AppGraph) -> Result<FuseReport> {
    let mut report = FuseReport::default();
    while let Some((join, split)) = find_candidate(graph) {
        let k = graph.node(join).spec().inputs.len();
        let jname = graph.node(join).name.clone();
        let sname = graph.node(split).name.clone();

        // Per lane i: retarget the channel feeding join.in_i to the
        // destination of split.out_i, then drop the split-side channel.
        for i in 0..k {
            let (a_cid, _a_ch) = graph.channel_into(join, i).ok_or_else(|| {
                BpError::Transform(format!("join '{jname}' input {i} unconnected"))
            })?;
            let outs = graph.channels_from(split, i);
            if outs.len() != 1 {
                return Err(BpError::Transform(format!(
                    "split '{sname}' output {i} has fan-out {}, expected 1",
                    outs.len()
                )));
            }
            let (b_cid, b_ch) = outs[0];
            let a_ch = graph.channel(a_cid);
            graph.set_channel(
                a_cid,
                bp_core::Channel {
                    src: a_ch.src,
                    dst: b_ch.dst,
                },
            );
            graph.remove_channel(b_cid);
        }
        // Drop the join -> split link; both nodes are now fully detached.
        let (js_cid, _) = graph
            .channel_into(split, 0)
            .ok_or_else(|| BpError::Transform(format!("split '{sname}' input unconnected")))?;
        graph.remove_channel(js_cid);
        graph.compact();
        report.fused.push((jname, sname));
    }
    if !report.fused.is_empty() {
        graph.validate()?;
    }
    Ok(report)
}

/// Find one fusable `join_rr -> split_rr` pair.
fn find_candidate(graph: &AppGraph) -> Option<(NodeId, NodeId)> {
    for (id, node) in graph.nodes() {
        let spec = node.spec();
        if spec.role != NodeRole::Join || spec.kind != "join_rr" {
            continue;
        }
        let outs = graph.channels_from(id, 0);
        if outs.len() != 1 {
            continue;
        }
        let consumer = outs[0].1.dst.node;
        let cspec = graph.node(consumer).spec();
        if cspec.role != NodeRole::Split || cspec.kind != "split_rr" {
            continue;
        }
        if cspec.outputs.len() != spec.inputs.len() {
            continue; // widths differ: routing is not the identity
        }
        // Every split output must have exactly one consumer for a clean
        // lane-to-lane rewrite.
        let k = cspec.outputs.len();
        if (0..k).any(|i| graph.channels_from(consumer, i).len() != 1) {
            continue;
        }
        return Some((id, consumer));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{align, AlignPolicy};
    use crate::buffering::insert_buffers;
    use crate::parallelize::parallelize;
    use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
    use bp_core::method::{MethodCost, MethodSpec};
    use bp_core::port::{InputSpec, OutputSpec};
    use bp_core::{Dim2, GraphBuilder, MachineSpec, Window};
    use bp_kernels as k;
    use bp_sim::FunctionalExecutor;

    fn heavy(name_cost: u64) -> KernelDef {
        struct H;
        impl KernelBehavior for H {
            fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
                out.window("out", Window::scalar(d.window("in").as_scalar() + 1.0));
            }
        }
        KernelDef::new(
            KernelSpec::new("heavy")
                .input(InputSpec::stream("in"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_data(
                    "run",
                    "in",
                    vec!["out".into()],
                    MethodCost::new(name_cost, 1),
                )),
            || H,
        )
    }

    /// A -> B pipeline where both stages want the same replica count.
    fn pipeline_graph() -> (AppGraph, k::SinkHandle) {
        let dim = Dim2::new(16, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 100.0);
        let a = b.add("A", heavy(200));
        let bb = b.add("B", heavy(200));
        let (sdef, h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", a, "in");
        b.connect(a, "out", bb, "in");
        b.connect(bb, "out", snk, "in");
        b.dep_edge(a, bb);
        (b.build().unwrap(), h)
    }

    fn prepared() -> (AppGraph, k::SinkHandle) {
        let (mut g, h) = pipeline_graph();
        align(&mut g, AlignPolicy::Trim).unwrap();
        insert_buffers(&mut g).unwrap();
        parallelize(&mut g, &MachineSpec::default_eval()).unwrap();
        (g, h)
    }

    #[test]
    fn fuses_matched_join_split_pair() {
        let (mut g, _h) = prepared();
        assert!(g.find_node("Join(A.out)").is_some());
        assert!(g.find_node("Split(B.in)").is_some());
        let before = g.node_count();
        let report = fuse_pipelines(&mut g).unwrap();
        assert_eq!(report.fused.len(), 1);
        assert_eq!(report.fused[0].0, "Join(A.out)");
        assert_eq!(report.fused[0].1, "Split(B.in)");
        assert!(g.find_node("Join(A.out)").is_none());
        assert!(g.find_node("Split(B.in)").is_none());
        assert_eq!(g.node_count(), before - 2);
        // Replica lanes wired through: A_i -> B_i.
        let a0 = g.find_node("A_0").unwrap();
        let (_, ch) = g.out_channels(a0)[0];
        assert!(g.node(ch.dst.node).name.starts_with("B_"));
        g.validate().unwrap();
    }

    #[test]
    fn fused_pipeline_is_bit_identical() {
        let (mut fused, hf) = prepared();
        fuse_pipelines(&mut fused).unwrap();
        let (unfused, hu) = prepared();

        let mut ex = FunctionalExecutor::new(&fused).unwrap();
        ex.run_frames(2).unwrap();
        assert_eq!(ex.residual_items(), 0);
        let mut ex = FunctionalExecutor::new(&unfused).unwrap();
        ex.run_frames(2).unwrap();

        assert_eq!(hf.frames(), hu.frames());
        assert_eq!(hf.frames().len(), 2);
        // Values: pattern + 2 (two +1 stages).
        assert_eq!(
            hf.frames()[0][0],
            bp_apps::reference::pattern_pixel(0, 0, 0) + 2.0
        );
    }

    #[test]
    fn mismatched_widths_are_not_fused() {
        // A x2 feeding B x3 (different costs): widths differ, no fusion.
        let dim = Dim2::new(16, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 100.0);
        let a = b.add("A", heavy(150)); // ~2 replicas
        let bb = b.add("B", heavy(350)); // ~5 replicas
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", a, "in");
        b.connect(a, "out", bb, "in");
        b.connect(bb, "out", snk, "in");
        let mut g = b.build().unwrap();
        align(&mut g, AlignPolicy::Trim).unwrap();
        insert_buffers(&mut g).unwrap();
        let rep = parallelize(&mut g, &MachineSpec::default_eval()).unwrap();
        let ka = rep.plan_for("A").unwrap().granted;
        let kb = rep.plan_for("B").unwrap().granted;
        assert_ne!(ka, kb, "test requires differing widths");
        let report = fuse_pipelines(&mut g).unwrap();
        assert!(report.fused.is_empty());
        g.validate().unwrap();
    }

    #[test]
    fn graph_without_pairs_is_untouched() {
        let (g0, _h) = pipeline_graph();
        let mut g = g0.clone();
        let report = fuse_pipelines(&mut g).unwrap();
        assert!(report.fused.is_empty());
        assert_eq!(g.node_count(), g0.node_count());
    }
}
