//! Kernel-to-processor mapping (§V): the naive 1:1 mapping and the greedy
//! multiplexing algorithm that merges neighboring low-utilization kernels
//! onto one PE when their combined CPU/memory demand fits, raising overall
//! utilization (the paper reports a 1.5× average improvement, 20% → 37% on
//! the running example).

use crate::dataflow::Dataflow;
use bp_core::graph::{AppGraph, NodeId};
use bp_core::kernel::NodeRole;
use bp_core::machine::{MachineSpec, Mapping};

/// Which mapping to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MappingKind {
    /// Every kernel on its own PE.
    OneToOne,
    /// Greedy multiplexing of neighbors (§V).
    Greedy,
    /// First-fit-decreasing bin packing, ignoring adjacency (an ablation of
    /// the paper's neighbor rule).
    Packed,
}

/// The naive mapping: one PE per kernel.
pub fn map_one_to_one(graph: &AppGraph) -> Mapping {
    Mapping::one_to_one(graph.node_count())
}

/// Estimated PE utilization of each node: total cycle demand (compute +
/// I/O) over one PE's clock.
pub fn node_utilizations(graph: &AppGraph, df: &Dataflow, machine: &MachineSpec) -> Vec<f64> {
    (0..graph.node_count())
        .map(|i| df.nodes[i].total_cycles_per_sec(machine) / machine.pe_clock_hz)
        .collect()
}

/// True for nodes the greedy pass must not multiplex: application inputs
/// and the initial input buffers directly downstream of them, which "may
/// block the input if they are not serviced in time" (§V). The upstream
/// walk crosses compiler plumbing (splits, replicates) so column-split
/// input buffers stay pinned too.
pub fn is_pinned(graph: &AppGraph, id: NodeId) -> bool {
    let spec = graph.node(id).spec();
    match spec.role {
        NodeRole::Source => true,
        NodeRole::Buffer => fed_from_source(graph, id, 8),
        _ => false,
    }
}

fn fed_from_source(graph: &AppGraph, id: NodeId, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    for (_, ch) in graph.in_channels(id) {
        let up = ch.src.node;
        let role = graph.node(up).spec().role;
        match role {
            NodeRole::Source => return true,
            NodeRole::Split | NodeRole::Replicate if fed_from_source(graph, up, depth - 1) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Greedy multiplexing (§V): walk the graph in topological order; merge
/// each kernel onto a neighboring kernel's PE when the combined CPU
/// utilization stays below the machine's cap and the combined storage fits
/// one PE. Unmergeable kernels get fresh PEs.
pub fn map_greedy(graph: &AppGraph, df: &Dataflow, machine: &MachineSpec) -> Mapping {
    let n = graph.node_count();
    let util = node_utilizations(graph, df, machine);
    let mem: Vec<u64> = graph
        .nodes()
        .map(|(_, node)| node.spec().memory_words())
        .collect();

    let order = graph
        .topo_order()
        .unwrap_or_else(|_| (0..n).map(NodeId).collect());
    let mut assign: Vec<Option<usize>> = vec![None; n];
    let mut pe_util: Vec<f64> = Vec::new();
    let mut pe_mem: Vec<u64> = Vec::new();
    let mut pe_pinned: Vec<bool> = Vec::new();

    for id in order {
        let i = id.0;
        if is_pinned(graph, id) {
            assign[i] = Some(pe_util.len());
            pe_util.push(util[i]);
            pe_mem.push(mem[i]);
            pe_pinned.push(true);
            continue;
        }
        // Candidate PEs: those of already-assigned graph neighbors, most
        // utilized first (pack tightly), excluding pinned PEs.
        let mut candidates: Vec<usize> = Vec::new();
        for (_, ch) in graph.in_channels(id) {
            if let Some(pe) = assign[ch.src.node.0] {
                if !candidates.contains(&pe) {
                    candidates.push(pe);
                }
            }
        }
        for (_, ch) in graph.out_channels(id) {
            if let Some(pe) = assign[ch.dst.node.0] {
                if !candidates.contains(&pe) {
                    candidates.push(pe);
                }
            }
        }
        candidates.sort_by(|a, b| {
            pe_util[*b]
                .partial_cmp(&pe_util[*a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut placed = false;
        for pe in candidates {
            if pe_pinned[pe] {
                continue;
            }
            if pe_util[pe] + util[i] <= machine.utilization_cap
                && pe_mem[pe] + mem[i] <= machine.pe_memory_words
            {
                assign[i] = Some(pe);
                pe_util[pe] += util[i];
                pe_mem[pe] += mem[i];
                placed = true;
                break;
            }
        }
        if !placed {
            assign[i] = Some(pe_util.len());
            pe_util.push(util[i]);
            pe_mem.push(mem[i]);
            pe_pinned.push(false);
        }
    }
    Mapping::from_assignment(assign.into_iter().map(|a| a.unwrap()).collect())
}

/// First-fit-decreasing bin packing by utilization — an ablation of the
/// paper's neighbor-greedy rule. It packs *any* kernels together when their
/// combined CPU/memory fits, ignoring graph adjacency, which minimizes PE
/// count but scatters communicating kernels across PEs (costly once
/// placement/NoC energy matters — see the placement pass).
pub fn map_packed(graph: &AppGraph, df: &Dataflow, machine: &MachineSpec) -> Mapping {
    let n = graph.node_count();
    let util = node_utilizations(graph, df, machine);
    let mem: Vec<u64> = graph
        .nodes()
        .map(|(_, node)| node.spec().memory_words())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| {
        util[*b]
            .partial_cmp(&util[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assign: Vec<Option<usize>> = vec![None; n];
    let mut pe_util: Vec<f64> = Vec::new();
    let mut pe_mem: Vec<u64> = Vec::new();
    let mut pe_pinned: Vec<bool> = Vec::new();
    for i in order {
        if is_pinned(graph, NodeId(i)) {
            assign[i] = Some(pe_util.len());
            pe_util.push(util[i]);
            pe_mem.push(mem[i]);
            pe_pinned.push(true);
            continue;
        }
        let slot = (0..pe_util.len()).find(|&pe| {
            !pe_pinned[pe]
                && pe_util[pe] + util[i] <= machine.utilization_cap
                && pe_mem[pe] + mem[i] <= machine.pe_memory_words
        });
        match slot {
            Some(pe) => {
                assign[i] = Some(pe);
                pe_util[pe] += util[i];
                pe_mem[pe] += mem[i];
            }
            None => {
                assign[i] = Some(pe_util.len());
                pe_util.push(util[i]);
                pe_mem.push(mem[i]);
                pe_pinned.push(false);
            }
        }
    }
    Mapping::from_assignment(assign.into_iter().map(|a| a.unwrap()).collect())
}

/// Produce the requested mapping.
pub fn map(graph: &AppGraph, df: &Dataflow, machine: &MachineSpec, kind: MappingKind) -> Mapping {
    match kind {
        MappingKind::OneToOne => map_one_to_one(graph),
        MappingKind::Greedy => map_greedy(graph, df, machine),
        MappingKind::Packed => map_packed(graph, df, machine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use bp_core::{Dim2, GraphBuilder, Step2};
    use bp_kernels as k;

    fn pipeline() -> AppGraph {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let buf = b.add(
            "Buf",
            k::buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, dim),
        );
        let med = b.add("Median", k::median(3, 3));
        let sc = b.add("Scale", k::scale(1.0, 0.0));
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", buf, "in");
        b.connect(buf, "out", med, "in");
        b.connect(med, "out", sc, "in");
        b.connect(sc, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn one_to_one_uses_a_pe_per_kernel() {
        let g = pipeline();
        let m = map_one_to_one(&g);
        assert_eq!(m.num_pes, g.node_count());
    }

    #[test]
    fn greedy_uses_fewer_pes_than_one_to_one() {
        let g = pipeline();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let greedy = map_greedy(&g, &df, &machine);
        assert!(greedy.num_pes < g.node_count(), "greedy {}", greedy.num_pes);
        // Every node is mapped.
        assert_eq!(greedy.pe_of_node.len(), g.node_count());
    }

    #[test]
    fn input_buffer_stays_pinned_alone() {
        let g = pipeline();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let greedy = map_greedy(&g, &df, &machine);
        let buf = g.find_node("Buf").unwrap();
        let buf_pe = greedy.pe_of_node[buf.0];
        let sharers = greedy.pe_of_node.iter().filter(|pe| **pe == buf_pe).count();
        assert_eq!(sharers, 1, "initial input buffer must not be multiplexed");
        assert!(is_pinned(&g, buf));
        assert!(is_pinned(&g, g.find_node("Input").unwrap()));
        assert!(!is_pinned(&g, g.find_node("Median").unwrap()));
    }

    #[test]
    fn packed_uses_no_more_pes_than_greedy() {
        let g = pipeline();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let greedy = map_greedy(&g, &df, &machine);
        let packed = map_packed(&g, &df, &machine);
        assert!(packed.num_pes <= greedy.num_pes);
        assert_eq!(packed.pe_of_node.len(), g.node_count());
        // Pinned nodes stay alone under packing too.
        let buf = g.find_node("Buf").unwrap();
        let pe = packed.pe_of_node[buf.0];
        assert_eq!(packed.pe_of_node.iter().filter(|p| **p == pe).count(), 1);
    }

    #[test]
    fn packed_respects_capacity_constraints() {
        let g = pipeline();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let packed = map_packed(&g, &df, &machine);
        let util = node_utilizations(&g, &df, &machine);
        let mut pe_util = vec![0.0; packed.num_pes];
        let mut pe_mem = vec![0u64; packed.num_pes];
        for (id, node) in g.nodes() {
            pe_util[packed.pe_of_node[id.0]] += util[id.0];
            pe_mem[packed.pe_of_node[id.0]] += node.spec().memory_words();
        }
        for (u, m) in pe_util.iter().zip(&pe_mem) {
            assert!(*u <= machine.utilization_cap + 1e-9);
            assert!(*m <= machine.pe_memory_words);
        }
    }

    #[test]
    fn greedy_respects_memory_capacity() {
        let g = pipeline();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let greedy = map_greedy(&g, &df, &machine);
        let mut pe_mem = vec![0u64; greedy.num_pes];
        for (id, node) in g.nodes() {
            pe_mem[greedy.pe_of_node[id.0]] += node.spec().memory_words();
        }
        for m in pe_mem {
            assert!(m <= machine.pe_memory_words, "PE over memory: {m}");
        }
    }
}
