//! Post-compilation verification: check that a compiled graph and mapping
//! actually satisfy the resource and structural invariants the passes are
//! supposed to establish. Used as a compiler self-check in tests and
//! exposed for downstream tooling.

use crate::dataflow::Dataflow;
use crate::multiplex::node_utilizations;
use bp_core::graph::AppGraph;
use bp_core::kernel::NodeRole;
use bp_core::machine::{MachineSpec, Mapping};

/// One violated invariant.
#[derive(Clone, Debug)]
pub struct CheckViolation {
    /// Which invariant (short slug: `node-cpu`, `node-memory`, `pe-cpu`,
    /// `pe-memory`, `grain`, `serial-overload`, `loop-liveness`).
    pub rule: String,
    /// Human-readable description.
    pub detail: String,
}

/// Result of [`check_compiled`].
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All violations found (empty = the graph is consistent).
    pub violations: Vec<CheckViolation>,
}

impl CheckReport {
    /// True when no invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn push(&mut self, rule: &str, detail: String) {
        self.violations.push(CheckViolation {
            rule: rule.into(),
            detail,
        });
    }
}

/// Verify a compiled graph against its machine and mapping:
/// - every instance fits one PE in compute and storage,
/// - every PE's resident set fits in compute and storage,
/// - every non-sink channel has matching producer/consumer grains (the
///   invariant the buffering pass establishes),
/// - serial kernels are not overloaded,
/// - every channel cycle contains a feedback kernel that primes at least
///   one initial token (§III-D) — an unprimed cycle can never fire and
///   would sit silent forever.
pub fn check_compiled(
    graph: &AppGraph,
    df: &Dataflow,
    machine: &MachineSpec,
    mapping: &Mapping,
) -> CheckReport {
    let mut report = CheckReport::default();
    let util = node_utilizations(graph, df, machine);

    // Per-node limits.
    for (id, node) in graph.nodes() {
        let spec = node.spec();
        if spec.role == NodeRole::Source {
            continue;
        }
        if util[id.0] > machine.utilization_cap + 1e-9 {
            report.push(
                if spec.parallelism == bp_core::Parallelism::Serial {
                    "serial-overload"
                } else {
                    "node-cpu"
                },
                format!(
                    "'{}' needs {:.2} PEs of compute ({:.0} cycles/s)",
                    node.name,
                    util[id.0],
                    df.nodes[id.0].total_cycles_per_sec(machine)
                ),
            );
        }
        if spec.memory_words() > machine.pe_memory_words {
            report.push(
                "node-memory",
                format!(
                    "'{}' needs {} words but a PE has {}",
                    node.name,
                    spec.memory_words(),
                    machine.pe_memory_words
                ),
            );
        }
    }

    // Per-PE aggregates under the mapping.
    if mapping.pe_of_node.len() == graph.node_count() {
        let mut pe_util = vec![0.0f64; mapping.num_pes];
        let mut pe_mem = vec![0u64; mapping.num_pes];
        for (id, node) in graph.nodes() {
            pe_util[mapping.pe_of_node[id.0]] += util[id.0];
            pe_mem[mapping.pe_of_node[id.0]] += node.spec().memory_words();
        }
        for (pe, (u, m)) in pe_util.iter().zip(&pe_mem).enumerate() {
            if *u > machine.utilization_cap + 1e-9 {
                report.push("pe-cpu", format!("PE {pe} is budgeted at {:.2}", u));
            }
            if *m > machine.pe_memory_words {
                report.push(
                    "pe-memory",
                    format!(
                        "PE {pe} holds {m} words (limit {})",
                        machine.pe_memory_words
                    ),
                );
            }
        }
    } else {
        report.push(
            "pe-cpu",
            format!(
                "mapping covers {} nodes, graph has {}",
                mapping.pe_of_node.len(),
                graph.node_count()
            ),
        );
    }

    // Grain consistency on every channel into a non-sink consumer.
    for (_, ch) in graph.channels() {
        let dst = graph.node(ch.dst.node);
        if dst.spec().role == NodeRole::Sink {
            continue;
        }
        let din = &dst.spec().inputs[ch.dst.port];
        let src = graph.node(ch.src.node);
        let sout = &src.spec().outputs[ch.src.port];
        // Item sizes must agree (the consumer fires on whole windows). The
        // declared *step* is the consumer's access pattern; pass-through
        // plumbing (splits, joins) declares abutting blocks, so only the
        // size is a transferable invariant.
        if sout.size != din.size {
            report.push(
                "grain",
                format!(
                    "'{}' {} feeds '{}.{}' {} — missing buffer?",
                    src.name, sout.size, dst.name, din.name, din.size
                ),
            );
        }
    }

    // Loop liveness (§III-D): a cycle whose members prime no initial
    // tokens has nothing to circulate — no firing in it can ever trigger.
    for comp in graph.cyclic_sccs() {
        let primed: u64 = comp
            .iter()
            .map(|&id| graph.node(id).spec().initial_tokens)
            .sum();
        if primed == 0 {
            let names: Vec<&str> = comp
                .iter()
                .map(|&id| graph.node(id).name.as_str())
                .collect();
            report.push(
                "loop-liveness",
                format!(
                    "cycle [{}] primes no initial tokens; insert a feedback \
                     kernel with initial values (§III-D)",
                    names.join(", ")
                ),
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use crate::pipeline::{compile, CompileOptions};

    #[test]
    fn every_compiled_benchmark_passes_the_self_check() {
        for case in bp_apps_suite() {
            let app = case();
            let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
            let df = analyze(&compiled.graph).unwrap();
            let machine = bp_core::MachineSpec::default_eval();
            let report = check_compiled(&compiled.graph, &df, &machine, &compiled.mapping);
            assert!(report.is_clean(), "violations: {:#?}", report.violations);
        }
    }

    // A tiny local suite to avoid a circular dev-dependency layout issue:
    // bp-apps already dev-depends on nothing from here, so we can use it.
    fn bp_apps_suite() -> Vec<fn() -> bp_apps::App> {
        vec![
            || bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW),
            || bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST),
            || bp_apps::fig1b(bp_apps::BIG, bp_apps::SLOW),
            || bp_apps::histogram_app(bp_apps::SMALL, bp_apps::FAST, 32),
            || bp_apps::bayer(bp_apps::SMALL, bp_apps::FAST),
            || bp_apps::parallel_buffer_test(bp_core::Dim2::new(64, 12), 20.0),
        ]
    }

    #[test]
    fn uncompiled_graph_fails_grain_check() {
        let app = bp_apps::histogram_app(bp_apps::SMALL, bp_apps::SLOW, 32);
        // No buffering pass has run; the raw source->histogram grain is fine
        // (1x1 everywhere) but a windowed app is not:
        let app2 = bp_apps::parallel_buffer_test(bp_core::Dim2::new(64, 12), 20.0);
        let df = analyze(&app2.graph).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let mapping = bp_core::Mapping::one_to_one(app2.graph.node_count());
        let report = check_compiled(&app2.graph, &df, &machine, &mapping);
        assert!(
            report.violations.iter().any(|v| v.rule == "grain"),
            "{:?}",
            report.violations
        );
        // And the overloaded buffer memory is flagged too (640 > 320).
        assert!(
            report.violations.iter().any(|v| v.rule == "node-memory")
                || report.violations.iter().any(|v| v.rule == "grain")
        );
        let _ = app;
    }

    #[test]
    fn unprimed_cycle_fails_loop_liveness() {
        use bp_core::{Dim2, GraphBuilder};
        let dim = Dim2::new(8, 8);
        // A feedback loop whose feedback kernel declares zero initial
        // tokens: structurally valid, but nothing can ever circulate.
        let mut fb = bp_kernels::feedback_frame(dim, 0.0);
        fb.spec.initial_tokens = 0;
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 10.0);
        let mix = b.add("Mix", bp_kernels::add());
        let delay = b.add("Delay", fb);
        let (sdef, _h) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", mix, "in0");
        b.connect(delay, "out", mix, "in1");
        b.connect(mix, "out", delay, "in");
        b.connect(mix, "out", snk, "in");
        let g = b.build().unwrap();
        let df = analyze(&g).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let mapping = bp_core::Mapping::one_to_one(g.node_count());
        let report = check_compiled(&g, &df, &machine, &mapping);
        let liveness: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == "loop-liveness")
            .collect();
        assert_eq!(liveness.len(), 1, "{:?}", report.violations);
        assert!(liveness[0].detail.contains("Mix"), "{:?}", liveness[0]);
        assert!(liveness[0].detail.contains("Delay"), "{:?}", liveness[0]);

        // The primed version of the same loop passes.
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 10.0);
        let mix = b.add("Mix", bp_kernels::add());
        let delay = b.add("Delay", bp_kernels::feedback_frame(dim, 0.0));
        let (sdef, _h) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", mix, "in0");
        b.connect(delay, "out", mix, "in1");
        b.connect(mix, "out", delay, "in");
        b.connect(mix, "out", snk, "in");
        let g = b.build().unwrap();
        let df = analyze(&g).unwrap();
        let report = check_compiled(&g, &df, &machine, &mapping);
        assert!(
            !report.violations.iter().any(|v| v.rule == "loop-liveness"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn overloaded_serial_kernel_is_flagged() {
        let app = bp_apps::histogram_app(bp_apps::SMALL, 4000.0, 32);
        // Compile will replicate the histogram but the merge is serial and
        // capped; at 4 kHz even the merge's per-frame work may fit, so check
        // the uncompiled graph where the histogram itself is one instance.
        let df = analyze(&app.graph).unwrap();
        let machine = bp_core::MachineSpec::default_eval();
        let mapping = bp_core::Mapping::one_to_one(app.graph.node_count());
        let report = check_compiled(&app.graph, &df, &machine, &mapping);
        assert!(
            report.violations.iter().any(|v| v.rule == "node-cpu"),
            "{:?}",
            report.violations
        );
    }
}
