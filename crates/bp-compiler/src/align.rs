//! Automatic trimming and padding (§III-C): reconcile differently-haloed
//! data at multi-input kernels by inserting inset (trim) or pad kernels.
//!
//! Whether to pad or trim is the programmer's choice — it changes the
//! result — but the margins and insertion points are computed by the
//! compiler from the inset analysis (Fig. 8).

use crate::dataflow::{analyze_with, Strictness};
use crate::inset::{analyze_insets, regions_for};
use bp_core::graph::{AppGraph, NodeId};
use bp_core::kernel::NodeRole;
use bp_core::{BpError, Dim2, Result};
use bp_kernels::inset::Margins;
use bp_kernels::pad::PadMode;

/// Alignment policy chosen by the programmer (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignPolicy {
    /// Discard margin samples from the larger outputs (inset kernels).
    Trim,
    /// Zero-pad the inputs of the deeper-halo kernels so their outputs grow.
    PadZero,
    /// Mirror-pad the inputs of the deeper-halo kernels.
    PadMirror,
}

/// One inserted adjustment kernel.
#[derive(Clone, Debug)]
pub struct InsertedAdjust {
    /// Name of the inserted node.
    pub name: String,
    /// `"inset"`, `"pad_zero"` or `"pad_mirror"`.
    pub kind: String,
    /// Margins in samples (left, right, top, bottom).
    pub margins: (u32, u32, u32, u32),
    /// The consumer `(node name, input name)` this adjustment aligns.
    pub for_input: (String, String),
}

/// Report of the alignment pass.
#[derive(Clone, Debug, Default)]
pub struct AlignReport {
    /// Adjustment kernels inserted, in insertion order.
    pub inserted: Vec<InsertedAdjust>,
}

fn to_margin(v: f64, what: &str) -> Result<u32> {
    if v < -1e-9 {
        return Err(BpError::Transform(format!(
            "negative {what} margin {v}; inputs overlap inconsistently"
        )));
    }
    let r = v.max(0.0).round();
    if (v - r).abs() > 1e-9 {
        return Err(BpError::Transform(format!(
            "fractional {what} margin {v}: pad/trim requires integral insets \
             (downsampled paths must be aligned manually)"
        )));
    }
    Ok(r as u32)
}

/// Run the alignment pass until every multi-input kernel sees consistent
/// data, inserting trim or pad kernels per the policy. Returns what was
/// inserted.
pub fn align(graph: &mut AppGraph, policy: AlignPolicy) -> Result<AlignReport> {
    let mut report = AlignReport::default();
    for _round in 0..8 {
        let df = analyze_with(graph, Strictness::Lenient)?;
        if df.misalignments.is_empty() {
            return Ok(report);
        }
        let insets = analyze_insets(graph)?;
        // Fix the first misalignment, then re-analyze (fixes can interact).
        let mis = &df.misalignments[0];
        let regions = regions_for(graph, &df, &insets, mis.node, &mis.inputs)?;
        match policy {
            AlignPolicy::Trim => {
                let (lo_x, lo_y, hi_x, hi_y) = regions.intersection();
                if hi_x <= lo_x || hi_y <= lo_y {
                    return Err(BpError::Transform(format!(
                        "inputs of '{}' have an empty intersection; trimming impossible",
                        graph.node(mis.node).name
                    )));
                }
                for (port, inset, shape) in regions.inputs.clone() {
                    let left = to_margin(lo_x - inset.x, "left")?;
                    let top = to_margin(lo_y - inset.y, "top")?;
                    let right = to_margin(inset.x + shape.w as f64 - hi_x, "right")?;
                    let bottom = to_margin(inset.y + shape.h as f64 - hi_y, "bottom")?;
                    if left + right + top + bottom == 0 {
                        continue;
                    }
                    insert_trim(
                        graph,
                        &mut report,
                        mis.node,
                        port,
                        Margins {
                            left,
                            right,
                            top,
                            bottom,
                        },
                        shape,
                    )?;
                }
            }
            AlignPolicy::PadZero | AlignPolicy::PadMirror => {
                let (lo_x, lo_y, hi_x, hi_y) = regions.union();
                let mode = if policy == AlignPolicy::PadZero {
                    PadMode::Zero
                } else {
                    PadMode::Mirror
                };
                for (port, inset, shape) in regions.inputs.clone() {
                    let left = to_margin(inset.x - lo_x, "left")?;
                    let top = to_margin(inset.y - lo_y, "top")?;
                    let right = to_margin(hi_x - (inset.x + shape.w as f64), "right")?;
                    let bottom = to_margin(hi_y - (inset.y + shape.h as f64), "bottom")?;
                    if left + right + top + bottom == 0 {
                        continue;
                    }
                    insert_pad_upstream(
                        graph,
                        &mut report,
                        mis.node,
                        port,
                        Margins {
                            left,
                            right,
                            top,
                            bottom,
                        },
                        mode,
                    )?;
                }
            }
        }
    }
    // Final consistency check.
    analyze_with(graph, Strictness::Strict)?;
    Ok(report)
}

/// Insert an inset kernel on the channel feeding `(node, port)`.
fn insert_trim(
    graph: &mut AppGraph,
    report: &mut AlignReport,
    node: NodeId,
    port: usize,
    margins: Margins,
    data: Dim2,
) -> Result<()> {
    let (cid, _ch) = graph
        .channel_into(node, port)
        .ok_or_else(|| BpError::Transform("misaligned input has no channel".into()))?;
    let consumer = graph.node(node).name.clone();
    let input_name = graph.node(node).spec().inputs[port].name.clone();
    let name = format!("Inset({consumer}.{input_name})");
    let def = bp_kernels::inset(margins, data);
    graph.splice(cid, name.clone(), def, 0, 0);
    report.inserted.push(InsertedAdjust {
        name,
        kind: "inset".into(),
        margins: (margins.left, margins.right, margins.top, margins.bottom),
        for_input: (consumer, input_name),
    });
    Ok(())
}

/// Insert a pad kernel on the *windowed input* of the kernel producing the
/// too-small data, so that its output grows (the paper pads the input to
/// the convolution filter rather than its output).
fn insert_pad_upstream(
    graph: &mut AppGraph,
    report: &mut AlignReport,
    node: NodeId,
    port: usize,
    margins: Margins,
    mode: PadMode,
) -> Result<()> {
    let (_cid, ch) = graph
        .channel_into(node, port)
        .ok_or_else(|| BpError::Transform("misaligned input has no channel".into()))?;
    let producer = ch.src.node;
    let pspec = graph.node(producer).spec().clone();
    if pspec.role != NodeRole::User {
        return Err(BpError::Transform(format!(
            "cannot pad upstream of '{}': producer '{}' is not a windowed kernel; \
             use the Trim policy instead",
            graph.node(node).name,
            graph.node(producer).name
        )));
    }
    // Find the producer's windowed (non-replicated) data input.
    let win_port = pspec
        .inputs
        .iter()
        .position(|i| !i.replicated && i.is_windowed())
        .ok_or_else(|| {
            BpError::Transform(format!(
                "producer '{}' has no windowed input to pad; use the Trim policy",
                graph.node(producer).name
            ))
        })?;
    let (mut wcid, mut wch) = graph
        .channel_into(producer, win_port)
        .ok_or_else(|| BpError::Transform("windowed input has no channel".into()))?;
    // Pad the raw pixel stream: walk upstream through any single-input
    // plumbing (buffers) so the pad sees 1x1 items. When this pass runs in
    // its intended position — before buffering — this is a no-op.
    while graph.node(wch.src.node).spec().role.is_plumbing()
        && graph.node(wch.src.node).spec().inputs.len() == 1
    {
        let up = graph
            .channel_into(wch.src.node, 0)
            .ok_or_else(|| BpError::Transform("plumbing input has no channel".into()))?;
        wcid = up.0;
        wch = up.1;
    }
    // Logical shape of the data feeding that input.
    let df = analyze_with(graph, Strictness::Lenient)?;
    let data = df
        .channels
        .get(&wcid)
        .map(|c| c.shape)
        .ok_or_else(|| BpError::Transform("no shape for pad insertion point".into()))?;
    let pname = graph.node(producer).name.clone();
    let name = format!("Pad({pname}.in)");
    let def = bp_kernels::pad(margins, mode, data);
    let kind = def.spec.kind.clone();
    graph.splice(wcid, name.clone(), def, 0, 0);
    let consumer = graph.node(node).name.clone();
    let input_name = graph.node(node).spec().inputs[port].name.clone();
    report.inserted.push(InsertedAdjust {
        name,
        kind,
        margins: (margins.left, margins.right, margins.top, margins.bottom),
        for_input: (consumer, input_name),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use bp_core::GraphBuilder;
    use bp_kernels as k;

    /// The Fig. 8 situation as the programmer writes it (unbuffered — this
    /// pass runs before buffering): median and conv paths into a subtract.
    fn fig8_graph() -> AppGraph {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
        let med = b.add("Median", k::median(3, 3));
        let conv = b.add("Conv", k::conv2d(5, 5));
        let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
        let sub = b.add("Subtract", k::subtract());
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", med, "in");
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(med, "out", sub, "in0");
        b.connect(conv, "out", sub, "in1");
        b.connect(sub, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn trim_policy_inserts_single_inset_on_median_path() {
        let mut g = fig8_graph();
        let report = align(&mut g, AlignPolicy::Trim).unwrap();
        // Median output (18x10 at inset 1) trims 1 on each side; conv output
        // (16x8 at inset 2) is already the intersection.
        assert_eq!(report.inserted.len(), 1);
        let adj = &report.inserted[0];
        assert_eq!(adj.kind, "inset");
        assert_eq!(adj.margins, (1, 1, 1, 1));
        assert_eq!(adj.for_input.0, "Subtract");
        // Strict analysis now succeeds with 16x8 at the subtract.
        let df = analyze(&g).unwrap();
        let sub = g.find_node("Subtract").unwrap();
        assert_eq!(df.nodes[sub.0].iterations, Some(Dim2::new(16, 8)));
    }

    #[test]
    fn pad_policy_pads_conv_input() {
        let mut g = fig8_graph();
        let report = align(&mut g, AlignPolicy::PadZero).unwrap();
        assert_eq!(report.inserted.len(), 1);
        let adj = &report.inserted[0];
        assert_eq!(adj.kind, "pad_zero");
        assert_eq!(adj.margins, (1, 1, 1, 1));
        // Strict analysis: subtract now sees 18x10 on both inputs.
        let df = analyze(&g).unwrap();
        let sub = g.find_node("Subtract").unwrap();
        assert_eq!(df.nodes[sub.0].iterations, Some(Dim2::new(18, 10)));
        // The pad sits on the raw pixel stream, upstream of the conv's
        // buffer (walked back through the plumbing).
        let pad = g.find_node("Pad(Conv.in)").expect("pad inserted");
        let (_, ch) = g.channel_into(pad, 0).unwrap();
        assert_eq!(g.node(ch.src.node).name, "Input");
    }

    #[test]
    fn aligned_graph_is_untouched() {
        let dim = Dim2::new(8, 8);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, 10.0);
        let s1 = b.add("S1", k::scale(2.0, 0.0));
        let s2 = b.add("S2", k::scale(3.0, 0.0));
        let sub = b.add("Sub", k::subtract());
        let (sdef, _h) = k::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", s1, "in");
        b.connect(src, "out", s2, "in");
        b.connect(s1, "out", sub, "in0");
        b.connect(s2, "out", sub, "in1");
        b.connect(sub, "out", snk, "in");
        let mut g = b.build().unwrap();
        let before = g.node_count();
        let report = align(&mut g, AlignPolicy::Trim).unwrap();
        assert!(report.inserted.is_empty());
        assert_eq!(g.node_count(), before);
    }
}
