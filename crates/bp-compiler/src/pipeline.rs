//! The compiler driver: analyze → align → buffer → parallelize → map.
//!
//! Mirrors the paper's flow: the programmer supplies the application graph
//! with real-time input rates and an alignment policy; the compiler handles
//! buffering, data sizing, parallelization and processor mapping.

use crate::align::{align, AlignPolicy, AlignReport};
use crate::buffering::{derive_capacities, insert_buffers, BufferingReport, CapacityReport};
use crate::dataflow::{analyze, Dataflow};
use crate::fuse::{fuse_pipelines, FuseReport};
use crate::multiplex::{map, MappingKind};
use crate::parallelize::{parallelize, ParallelizeReport};
use bp_core::graph::AppGraph;
use bp_core::kernel::NodeRole;
use bp_core::machine::{MachineSpec, Mapping};
use bp_core::Result;
use std::collections::HashMap;

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Target machine.
    pub machine: MachineSpec,
    /// Alignment policy (§III-C); programmer-chosen because it changes the
    /// result.
    pub align: AlignPolicy,
    /// Kernel-to-PE mapping strategy (§V).
    pub mapping: MappingKind,
    /// Fuse matched join/split pairs into direct replica-to-replica lanes
    /// (§IV-B's parallel pipelines). On by default; results are identical
    /// either way.
    pub fuse: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            machine: MachineSpec::default_eval(),
            align: AlignPolicy::Trim,
            mapping: MappingKind::Greedy,
            fuse: true,
        }
    }
}

/// Summary statistics of a compiled graph, for reports and the figure
/// harnesses.
#[derive(Clone, Debug, Default)]
pub struct GraphCensus {
    /// Node count per role name.
    pub roles: HashMap<String, usize>,
    /// Total nodes.
    pub nodes: usize,
    /// Total channels.
    pub channels: usize,
}

impl GraphCensus {
    /// Build from a graph.
    pub fn of(graph: &AppGraph) -> Self {
        let mut roles = HashMap::new();
        for (_, n) in graph.nodes() {
            *roles.entry(format!("{:?}", n.spec().role)).or_insert(0) += 1;
        }
        Self {
            roles,
            nodes: graph.node_count(),
            channels: graph.channel_count(),
        }
    }

    /// Count for a role name (e.g. `"Buffer"`).
    pub fn role(&self, name: &str) -> usize {
        self.roles.get(name).copied().unwrap_or(0)
    }
}

/// Everything the compiler produced.
pub struct Compiled {
    /// The transformed, parallelized graph.
    pub graph: AppGraph,
    /// Kernel-to-PE mapping.
    pub mapping: Mapping,
    /// Final data-flow analysis of the transformed graph.
    pub dataflow: Dataflow,
    /// Pass reports.
    pub report: CompileReport,
}

impl Compiled {
    /// Lower the compiled graph into a direct-threaded program: one
    /// specialized firing routine per node method, with trigger masks and
    /// port indices constant-folded (DESIGN.md §13). This is the same
    /// lowering the timed simulators perform when the compiled backend
    /// (`bp_sim::Backend::Compiled`) is selected; it is exposed here so
    /// clients can lower once and inspect or reuse the threaded form.
    pub fn lower_to_threaded(&self) -> Result<bp_codegen::ThreadedProgram> {
        bp_codegen::lower_graph(&self.graph)
    }
}

/// Reports from each pass plus final statistics.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Alignment insertions (§III-C).
    pub align: AlignReport,
    /// Buffer insertions (§III-B).
    pub buffering: BufferingReport,
    /// Feedback-aware channel-capacity derivation (§III-D) over the final
    /// graph: the per-channel plan the simulator resolves by default, plus
    /// one entry per primed feedback loop.
    pub capacities: CapacityReport,
    /// Parallelization decisions (§IV).
    pub parallelize: ParallelizeReport,
    /// Pipeline fusions applied (§IV-B).
    pub fuse: FuseReport,
    /// Census of the final graph.
    pub census: GraphCensus,
    /// PEs used by the final mapping.
    pub pes_used: usize,
    /// Estimated mean PE utilization under the final mapping.
    pub estimated_utilization: f64,
}

/// Compile an application graph for the given machine. The input graph is
/// left untouched; the transformed copy is returned.
pub fn compile(graph: &AppGraph, opts: &CompileOptions) -> Result<Compiled> {
    let mut g = graph.clone();
    g.validate()?;

    let align_report = align(&mut g, opts.align)?;
    let buffering_report = insert_buffers(&mut g)?;
    let parallelize_report = parallelize(&mut g, &opts.machine)?;
    let fuse_report = if opts.fuse {
        fuse_pipelines(&mut g)?
    } else {
        FuseReport::default()
    };

    let dataflow = analyze(&g)?;
    let mapping = map(&g, &dataflow, &opts.machine, opts.mapping);
    let capacities = derive_capacities(&g);

    // Estimated utilization: total demand over allocated capacity.
    let total_demand: f64 = (0..g.node_count())
        .map(|i| dataflow.nodes[i].total_cycles_per_sec(&opts.machine))
        .sum();
    let estimated_utilization = total_demand / (mapping.num_pes as f64 * opts.machine.pe_clock_hz);

    let census = GraphCensus::of(&g);
    Ok(Compiled {
        mapping: mapping.clone(),
        dataflow,
        report: CompileReport {
            align: align_report,
            buffering: buffering_report,
            capacities,
            parallelize: parallelize_report,
            fuse: fuse_report,
            census,
            pes_used: mapping.num_pes,
            estimated_utilization,
        },
        graph: g,
    })
}

/// Render a human-readable summary of a compilation (used by examples and
/// the figure harnesses).
pub fn summarize(c: &Compiled) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "graph: {} nodes, {} channels\n",
        c.report.census.nodes, c.report.census.channels
    ));
    let mut roles: Vec<(&String, &usize)> = c.report.census.roles.iter().collect();
    roles.sort();
    for (role, count) in roles {
        s.push_str(&format!("  {role:<10} {count}\n"));
    }
    for b in &c.report.buffering.inserted {
        s.push_str(&format!(
            "buffer {} {} ({}x{})[{}..] over {}\n",
            b.name,
            b.annotation(),
            b.window.w,
            b.window.h,
            b.step.x,
            b.data
        ));
    }
    for (join, split) in &c.report.fuse.fused {
        s.push_str(&format!("fused pipeline lanes: {join} + {split}\n"));
    }
    for lp in &c.report.capacities.loops {
        s.push_str(&format!(
            "feedback loop [{}]: {} primed items, back edge {} sized to {} \
             (default {})\n",
            lp.nodes.join(", "),
            lp.initial_tokens,
            lp.back_edges.join(", "),
            lp.capacity,
            c.report.capacities.plan.default
        ));
    }
    for p in &c.report.parallelize.plans {
        if p.granted > 1 {
            s.push_str(&format!(
                "parallelize {} -> x{} ({:?}, util {:.2})\n",
                p.name, p.granted, p.reason, p.utilization
            ));
        }
    }
    s.push_str(&format!(
        "mapping: {} PEs, estimated utilization {:.1}%\n",
        c.report.pes_used,
        100.0 * c.report.estimated_utilization
    ));
    s
}

/// Export the graph in Graphviz dot format (buffers as parallelograms,
/// split/join as diamonds, insets as inverted houses — echoing the paper's
/// figure conventions).
pub fn to_dot(graph: &AppGraph) -> String {
    let mut s = String::from("digraph app {\n  rankdir=LR;\n");
    for (id, node) in graph.nodes() {
        let shape = match node.spec().role {
            NodeRole::Buffer => "parallelogram",
            NodeRole::Split | NodeRole::Join => "diamond",
            NodeRole::Inset => "invhouse",
            NodeRole::Pad => "house",
            NodeRole::Source | NodeRole::Sink => "oval",
            NodeRole::Replicate => "triangle",
            _ => "box",
        };
        s.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            id.0, node.name, shape
        ));
    }
    for (_, ch) in graph.channels() {
        let style = if graph.node(ch.dst.node).spec().inputs[ch.dst.port].replicated {
            " [style=dashed]"
        } else {
            ""
        };
        s.push_str(&format!(
            "  n{} -> n{}{};\n",
            ch.src.node.0, ch.dst.node.0, style
        ));
    }
    for d in graph.dep_edges() {
        s.push_str(&format!(
            "  n{} -> n{} [style=dotted, constraint=false];\n",
            d.src.0, d.dst.0
        ));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Dim2, GraphBuilder};
    use bp_kernels as k;

    /// The full Fig. 1(b) application, unbuffered and unaligned, exactly as
    /// a programmer would write it.
    pub fn fig1b(dim: Dim2, rate: f64) -> (AppGraph, k::SinkHandle) {
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", k::pattern_source(dim), dim, rate);
        let med = b.add("3x3 Median", k::median(3, 3));
        let conv = b.add("5x5 Conv", k::conv2d(5, 5));
        let coeff = b.add(
            "5x5 Coeff",
            k::const_source("coeff", k::box_coefficients(5, 5)),
        );
        let sub = b.add("Subtract", k::subtract());
        let hist = b.add("Histogram", k::histogram(32));
        let bins = b.add(
            "Hist Bins",
            k::const_source("bins", k::uniform_bins(32, -128.0, 128.0)),
        );
        let merge = b.add("Merge", k::histogram_merge(32));
        let (sdef, handle) = k::sink();
        let snk = b.add("result", sdef);
        b.connect(src, "out", med, "in");
        b.connect(src, "out", conv, "in");
        b.connect(coeff, "out", conv, "coeff");
        b.connect(med, "out", sub, "in0");
        b.connect(conv, "out", sub, "in1");
        b.connect(sub, "out", hist, "in");
        b.connect(bins, "out", hist, "bins");
        b.connect(hist, "out", merge, "in");
        b.connect(merge, "out", snk, "in");
        b.dep_edge(src, merge);
        (b.build().unwrap(), handle)
    }

    #[test]
    fn compiles_the_running_example() {
        let (g, _h) = fig1b(Dim2::new(20, 12), 50.0);
        let c = compile(&g, &CompileOptions::default()).unwrap();
        // Buffers on both filter paths, an inset on the median path.
        assert_eq!(c.report.buffering.inserted.len(), 2);
        assert_eq!(c.report.align.inserted.len(), 1);
        assert!(c.report.pes_used > 0);
        assert!(c.report.estimated_utilization > 0.0);
        c.graph.validate().unwrap();
        let dot = to_dot(&c.graph);
        assert!(dot.contains("parallelogram"));
        let summary = summarize(&c);
        assert!(summary.contains("mapping:"));
    }

    #[test]
    fn fast_rate_parallelizes_compute() {
        let (g, _h) = fig1b(Dim2::new(20, 12), 200.0);
        let c = compile(&g, &CompileOptions::default()).unwrap();
        let conv = c.report.parallelize.plan_for("5x5 Conv").unwrap();
        let med = c.report.parallelize.plan_for("3x3 Median").unwrap();
        assert_eq!(conv.granted, 3, "{conv:?}");
        assert_eq!(med.granted, 2, "{med:?}");
        // Merge stays serial via the dep edge.
        let merge = c.report.parallelize.plan_for("Merge").unwrap();
        assert_eq!(merge.granted, 1);
    }

    #[test]
    fn greedy_mapping_beats_one_to_one_on_pe_count() {
        let (g, _h) = fig1b(Dim2::new(20, 12), 50.0);
        let one = compile(
            &g,
            &CompileOptions {
                mapping: MappingKind::OneToOne,
                ..Default::default()
            },
        )
        .unwrap();
        let greedy = compile(&g, &CompileOptions::default()).unwrap();
        assert!(greedy.report.pes_used < one.report.pes_used);
        assert!(greedy.report.estimated_utilization > one.report.estimated_utilization);
    }
}
