//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! greedy multiplexing vs 1:1 mapping, the Fig. 9 reuse-optimized buffering
//! variants, and the simulated-annealing placement pass.

use bp_bench::microbench::{BenchmarkId, Criterion};
use bp_bench::{criterion_group, criterion_main};
use bp_compiler::place::{place_annealed, AnnealConfig};
use bp_compiler::{
    align, analyze, compile, insert_buffers, parallelize_with_reuse, AlignPolicy, CompileOptions,
    MappingKind, ReuseVariant,
};
use bp_core::MachineSpec;
use bp_sim::{SimConfig, TimedSimulator};

fn bench_mapping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    group.sample_size(15);
    for (label, kind) in [
        ("one-to-one", MappingKind::OneToOne),
        ("greedy", MappingKind::Greedy),
    ] {
        let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST);
        let compiled = compile(
            &app.graph,
            &CompileOptions {
                mapping: kind,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &compiled, |b, c| {
            b.iter(|| {
                TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(1))
                    .unwrap()
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_reuse_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse");
    group.sample_size(15);
    for (label, variant) in [
        ("round-robin", ReuseVariant::RoundRobin),
        ("split-input", ReuseVariant::SplitInput),
        ("split+outbuf", ReuseVariant::SplitInputBufferedOutput),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &variant, |b, &v| {
            b.iter_batched(
                || {
                    let mut g = bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST).graph;
                    align(&mut g, AlignPolicy::Trim).unwrap();
                    insert_buffers(&mut g).unwrap();
                    g
                },
                |mut g| {
                    parallelize_with_reuse(&mut g, &MachineSpec::default_eval(), v).unwrap();
                    let df = analyze(&g).unwrap();
                    let mapping = bp_compiler::map_greedy(&g, &df, &MachineSpec::default_eval());
                    TimedSimulator::new(&g, &mapping, SimConfig::new(1))
                        .unwrap()
                        .run()
                        .unwrap()
                },
                bp_bench::microbench::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
    let df = analyze(&compiled.graph).unwrap();
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for iters in [1_000u32, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            let cfg = AnnealConfig {
                iterations: iters,
                ..Default::default()
            };
            b.iter(|| place_annealed(&compiled.graph, &df, &compiled.mapping, &cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mapping_ablation,
    bench_reuse_ablation,
    bench_placement
);
criterion_main!(benches);
