//! Criterion benchmarks for the compiler passes: data-flow analysis,
//! alignment, buffering, parallelization, and the full pipeline, across
//! application sizes.

use bp_bench::microbench::{BenchmarkId, Criterion};
use bp_bench::{criterion_group, criterion_main};
use bp_compiler::{
    align, analyze_with, compile, insert_buffers, parallelize, AlignPolicy, CompileOptions,
    Strictness,
};
use bp_core::MachineSpec;

fn bench_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow");
    for (label, app) in [
        ("fig1b-small", bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW)),
        ("fig1b-big", bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST)),
        (
            "multiconv-8",
            bp_apps::multi_conv(bp_apps::BIG, bp_apps::SLOW, 8),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &app, |b, app| {
            // Lenient mode: the source graphs are not yet aligned (§III-C),
            // and the analysis cost is what we measure.
            b.iter(|| analyze_with(&app.graph, Strictness::Lenient).unwrap());
        });
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    group.bench_function("align-trim", |b| {
        b.iter_batched(
            || bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW).graph,
            |mut g| align(&mut g, AlignPolicy::Trim).unwrap(),
            bp_bench::microbench::BatchSize::SmallInput,
        );
    });
    group.bench_function("buffering", |b| {
        b.iter_batched(
            || {
                let mut g = bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW).graph;
                align(&mut g, AlignPolicy::Trim).unwrap();
                g
            },
            |mut g| insert_buffers(&mut g).unwrap(),
            bp_bench::microbench::BatchSize::SmallInput,
        );
    });
    group.bench_function("parallelize-big-fast", |b| {
        b.iter_batched(
            || {
                let mut g = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST).graph;
                align(&mut g, AlignPolicy::Trim).unwrap();
                insert_buffers(&mut g).unwrap();
                g
            },
            |mut g| parallelize(&mut g, &MachineSpec::default_eval()).unwrap(),
            bp_bench::microbench::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_full_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for point in bp_apps::fig11_points() {
        let app = bp_apps::fig1b(point.dim, point.rate_hz);
        group.bench_with_input(
            BenchmarkId::from_parameter(point.label.replace('/', "-")),
            &app,
            |b, app| {
                b.iter(|| compile(&app.graph, &CompileOptions::default()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dataflow, bench_passes, bench_full_compile);
criterion_main!(benches);
