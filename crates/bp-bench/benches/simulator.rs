//! Criterion benchmarks for the executors: untimed functional execution and
//! the timing-accurate discrete-event simulator, on compiled applications.

use bp_bench::microbench::{BenchmarkId, Criterion};
use bp_bench::{criterion_group, criterion_main};
use bp_compiler::{compile, CompileOptions};
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

fn bench_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional");
    group.sample_size(20);
    for (label, dim, rate) in [
        ("fig1b-SS", bp_apps::SMALL, bp_apps::SLOW),
        ("fig1b-SF", bp_apps::SMALL, bp_apps::FAST),
    ] {
        let app = bp_apps::fig1b(dim, rate);
        let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &compiled, |b, c| {
            b.iter(|| {
                let mut ex = FunctionalExecutor::new(&c.graph).unwrap();
                ex.run_frames(1).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_timed(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed");
    group.sample_size(20);
    for (label, dim, rate) in [
        ("fig1b-SS", bp_apps::SMALL, bp_apps::SLOW),
        ("fig1b-SF", bp_apps::SMALL, bp_apps::FAST),
        ("fig1b-BF", bp_apps::BIG, bp_apps::FAST),
    ] {
        let app = bp_apps::fig1b(dim, rate);
        let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &compiled, |b, c| {
            b.iter(|| {
                TimedSimulator::new(&c.graph, &c.mapping, SimConfig::new(1))
                    .unwrap()
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_instantiation(c: &mut Criterion) {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let compiled = compile(&app.graph, &CompileOptions::default()).unwrap();
    c.bench_function("instantiate-big-fast", |b| {
        b.iter(|| bp_sim::Program::instantiate(&compiled.graph).unwrap());
    });
}

criterion_group!(benches, bench_functional, bench_timed, bench_instantiation);
criterion_main!(benches);
