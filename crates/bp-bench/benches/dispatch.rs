//! Dispatch-overhead microbenchmark: the per-firing `plan()` +
//! `execute_with_cost()` cost of the interpreted runtime against the
//! direct-threaded path (mask-test plan + specialized `FireFn`), isolated
//! from the event queue, routing, and time accounting (DESIGN.md §13).
//!
//! Three shapes per backend:
//! - `fire-1`: a unary scalar kernel firing once per iteration (arity-1
//!   pop loop, behavior call, one emission);
//! - `fire-2`: a binary scalar kernel (arity-2, the join shape);
//! - `miss`: a planning *failure* on a half-filled binary kernel — the
//!   engine's most frequent planning outcome, where the compiled backend's
//!   readiness mask test replaces the interpreter's trigger scan.

use bp_bench::criterion_group;
use bp_bench::microbench::{black_box, Criterion, Throughput};
use bp_codegen::{lower_graph, FireArgs, PlannedAction, ThreadedProgram};
use bp_core::{Dim2, GraphBuilder, Item, Window};
use bp_kernels as k;
use bp_sim::{Action, Program};

/// Firings (or plan misses) timed per sample.
const FIRINGS: u64 = 50_000;

/// A minimal graph holding the benchmarked kernels: a unary `scale` and a
/// binary `add` over 1x1 scalar windows (kernel work is a few flops, so
/// dispatch overhead dominates the measurement by construction).
fn build() -> (Program, ThreadedProgram, usize, usize) {
    let dim = Dim2::new(1, 1);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, 50.0);
    let sc = b.add("Scale", k::scale(2.0, 1.0));
    let ad = b.add("Add", k::add());
    let (sdef, _handle) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", sc, "in");
    b.connect(sc, "out", ad, "in0");
    b.connect(sc, "out", ad, "in1");
    b.connect(ad, "out", snk, "in");
    let graph = b.build().expect("dispatch bench graph is well-formed");
    let program = Program::instantiate(&graph).expect("instantiate");
    let threaded = lower_graph(&graph).expect("lower");
    let scale_idx = program
        .nodes
        .iter()
        .position(|n| n.name == "Scale")
        .expect("scale node");
    let add_idx = program
        .nodes
        .iter()
        .position(|n| n.name == "Add")
        .expect("add node");
    (program, threaded, scale_idx, add_idx)
}

fn scalar_item() -> Item {
    Item::Window(Window::scalar(4.0))
}

/// One interpreted firing: fill the trigger queues, `plan()`, execute, and
/// recycle the emit buffer exactly as the timed engine does.
fn interpreted_fire(program: &mut Program, node: usize, item: &Item, arity: usize) {
    let n = &mut program.nodes[node];
    for p in 0..arity {
        n.queues[p].push_back(item.clone());
    }
    let action = n.plan().expect("fireable");
    let (mut emitted, actual) = n.execute_with_cost(action);
    black_box(actual);
    emitted.clear();
    n.recycle_out_buf(emitted);
}

/// One compiled firing: mask-test plan plus the specialized routine,
/// driven with the engine's incrementally known head state (every queue
/// just became nonempty with a window, so `head_data` is the arity mask).
fn compiled_fire(
    program: &mut Program,
    threaded: &ThreadedProgram,
    node: usize,
    item: &Item,
    arity: usize,
    consumed: &mut Vec<(usize, Item)>,
    emitted: &mut Vec<(usize, Item)>,
) {
    let n = &mut program.nodes[node];
    for p in 0..arity {
        n.queues[p].push_back(item.clone());
    }
    let tn = &threaded.nodes[node];
    let head_data = (1u64 << arity) - 1;
    let action = tn
        .plan(head_data, 0, &n.queues, n.behavior.as_ref())
        .expect("fireable");
    let PlannedAction::Fire { method } = action else {
        panic!("expected fire");
    };
    let res = (tn.methods[method].fire)(&mut FireArgs {
        spec: &n.spec,
        queues: &mut n.queues,
        behavior: n.behavior.as_mut(),
        consumed,
        emitted,
    });
    black_box(res.actual_cycles);
    emitted.clear();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group
        .sample_size(20)
        .throughput(Throughput::Elements(FIRINGS));

    let item = scalar_item();
    for (label, arity) in [("fire-1", 1usize), ("fire-2", 2usize)] {
        let (mut program, _, scale_idx, add_idx) = build();
        let node = if arity == 1 { scale_idx } else { add_idx };
        group.bench_function(format!("interpreted-{label}"), |b| {
            b.iter(|| {
                for _ in 0..FIRINGS {
                    interpreted_fire(&mut program, node, &item, arity);
                }
            });
        });
        let (mut program, threaded, scale_idx, add_idx) = build();
        let node = if arity == 1 { scale_idx } else { add_idx };
        let (mut consumed, mut emitted) = (Vec::new(), Vec::new());
        group.bench_function(format!("compiled-{label}"), |b| {
            b.iter(|| {
                for _ in 0..FIRINGS {
                    compiled_fire(
                        &mut program,
                        &threaded,
                        node,
                        &item,
                        arity,
                        &mut consumed,
                        &mut emitted,
                    );
                }
            });
        });
    }

    // Planning miss: `in0` holds a window, `in1` is empty, so the binary
    // method cannot fire and forwarding finds nothing — the plan returns
    // `None` every time.
    let (mut program, threaded, _, add_idx) = build();
    program.nodes[add_idx].queues[0].push_back(item.clone());
    group.bench_function("interpreted-miss", |b| {
        b.iter(|| {
            for _ in 0..FIRINGS {
                black_box(program.nodes[add_idx].plan().is_none());
            }
        });
    });
    group.bench_function("compiled-miss", |b| {
        b.iter(|| {
            let n = &program.nodes[add_idx];
            let tn = &threaded.nodes[add_idx];
            for _ in 0..FIRINGS {
                black_box(tn.plan(0b01, 0, &n.queues, n.behavior.as_ref()).is_none());
            }
        });
    });
    group.finish();
}

fn assert_backends_agree() {
    let (mut program, threaded, scale_idx, _) = build();
    let item = scalar_item();
    let n = &mut program.nodes[scale_idx];
    n.queues[0].push_back(item.clone());
    let interp = n.plan();
    let masked = threaded.nodes[scale_idx].plan(0b1, 0, &n.queues, n.behavior.as_ref());
    match (interp, masked) {
        (Some(Action::Fire { method: a }), Some(PlannedAction::Fire { method: b })) => {
            assert_eq!(a, b, "planners disagree on the fired method");
        }
        other => panic!("planners disagree: {other:?}"),
    }
}

criterion_group!(benches, bench_dispatch);

fn main() {
    assert_backends_agree();
    let mut c = Criterion::default();
    benches(&mut c);
}
