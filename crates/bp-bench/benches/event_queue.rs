//! Microbenchmark of the timed simulator's pending-event queue: the
//! calendar-bucket implementation (`BucketQueue`, used in the hot path)
//! against the binary-heap reference (`HeapQueue`). The workload mimics the
//! simulator's event mix — periodic source ticks plus completion events a
//! few distinct deltas ahead of "now" — at three queue populations.

use bp_bench::microbench::{black_box, BenchmarkId, Criterion};
use bp_bench::{criterion_group, criterion_main};
use bp_core::Rng64;
use bp_sim::{BucketQueue, EventQueue, HeapQueue};

/// Simulated event deltas in seconds: a 200 Hz source period plus a few
/// kernel completion times at a 200 MHz PE clock.
const DELTAS: [f64; 5] = [5.0e-3, 1.2e-6, 7.3e-6, 2.25e-5, 9.01e-5];
/// Bucket width matching the simulator's choice: one PE clock cycle.
const QUANTUM: f64 = 1.0 / 200.0e6;

/// Hold the queue at a steady population of `level` while streaming
/// `ops` push+pop pairs through it, the simulator's steady-state pattern.
fn churn<Q: EventQueue<u32>>(queue: &mut Q, level: usize, ops: usize, rng: &mut Rng64) {
    let mut now = 0.0f64;
    for i in 0..level {
        queue.push(now + DELTAS[rng.gen_index(DELTAS.len())], i as u32);
    }
    for i in 0..ops {
        queue.push(
            now + DELTAS[rng.gen_index(DELTAS.len())],
            (level + i) as u32,
        );
        let ev = queue.pop().expect("queue stays populated");
        now = ev.t;
        black_box(ev.payload);
    }
    while queue.pop().is_some() {}
}

fn bench_queues(c: &mut Criterion) {
    const OPS: usize = 20_000;
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    for level in [4usize, 32, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("bucket-{level}")),
            &level,
            |b, &level| {
                b.iter(|| {
                    let mut q: BucketQueue<u32> = BucketQueue::new(QUANTUM);
                    let mut rng = Rng64::seed_from_u64(level as u64);
                    churn(&mut q, level, OPS, &mut rng);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("heap-{level}")),
            &level,
            |b, &level| {
                b.iter(|| {
                    let mut q: HeapQueue<u32> = HeapQueue::new();
                    let mut rng = Rng64::seed_from_u64(level as u64);
                    churn(&mut q, level, OPS, &mut rng);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
