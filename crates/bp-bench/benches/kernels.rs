//! Criterion benchmarks for individual kernel behaviors: buffer push
//! throughput, convolution/median firings, histogram counting, and the
//! split/join FSMs.

use bp_bench::microbench::{Criterion, Throughput};
use bp_bench::{criterion_group, criterion_main};
use bp_core::kernel::{Emitter, FireData, KernelDef};
use bp_core::{Dim2, Item, Step2, Window};

/// Drive a single-input kernel behavior over a frame's pixel stream.
fn drive_frame(def: &KernelDef, w: u32, h: u32) -> usize {
    let mut b = (def.factory)();
    let mut emitted = 0;
    for y in 0..h {
        for x in 0..w {
            let consumed = vec![(0usize, Item::Window(Window::scalar((y * w + x) as f64)))];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("push", &data, &mut out);
            emitted += out.into_items().len();
        }
        let consumed = vec![(0usize, Item::Control(bp_core::ControlToken::EndOfLine))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("eol", &data, &mut out);
        emitted += out.into_items().len();
    }
    emitted
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");
    let dims = Dim2::new(64, 48);
    group.throughput(Throughput::Elements(dims.area()));
    group.bench_function("push-5x5-64x48", |b| {
        let def = bp_kernels::buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, dims);
        b.iter(|| drive_frame(&def, dims.w, dims.h));
    });
    group.bench_function("push-3x3-64x48", |b| {
        let def = bp_kernels::buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, dims);
        b.iter(|| drive_frame(&def, dims.w, dims.h));
    });
    group.finish();
}

fn bench_compute_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute");
    let window5 = Window::from_fn(Dim2::new(5, 5), |x, y| (y * 5 + x) as f64);
    let conv = bp_kernels::conv2d(5, 5);
    group.bench_function("conv5x5-fire", |b| {
        let mut beh = (conv.factory)();
        // Load coefficients once.
        let consumed = vec![(1usize, Item::Window(bp_kernels::box_coefficients(5, 5)))];
        let data = FireData::new(&conv.spec, &consumed);
        let mut out = Emitter::new(&conv.spec);
        beh.fire("loadCoeff", &data, &mut out);
        b.iter(|| {
            let consumed = vec![(0usize, Item::Window(window5.clone()))];
            let data = FireData::new(&conv.spec, &consumed);
            let mut out = Emitter::new(&conv.spec);
            beh.fire("runConvolve", &data, &mut out);
            out.into_items()
        });
    });

    let median = bp_kernels::median(3, 3);
    let window3 = Window::from_fn(Dim2::new(3, 3), |x, y| ((y * 3 + x) * 7 % 11) as f64);
    group.bench_function("median3x3-fire", |b| {
        let mut beh = (median.factory)();
        b.iter(|| {
            let consumed = vec![(0usize, Item::Window(window3.clone()))];
            let data = FireData::new(&median.spec, &consumed);
            let mut out = Emitter::new(&median.spec);
            beh.fire("runMedian", &data, &mut out);
            out.into_items()
        });
    });

    let hist = bp_kernels::histogram(32);
    group.bench_function("histogram-count", |b| {
        let mut beh = (hist.factory)();
        let consumed = vec![(
            1usize,
            Item::Window(bp_kernels::uniform_bins(32, 0.0, 256.0)),
        )];
        let data = FireData::new(&hist.spec, &consumed);
        let mut out = Emitter::new(&hist.spec);
        beh.fire("configureBins", &data, &mut out);
        let mut v = 0.0;
        b.iter(|| {
            v = (v + 37.0) % 256.0;
            let consumed = vec![(0usize, Item::Window(Window::scalar(v)))];
            let data = FireData::new(&hist.spec, &consumed);
            let mut out = Emitter::new(&hist.spec);
            beh.fire("count", &data, &mut out);
        });
    });
    group.finish();
}

fn bench_split_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitjoin");
    let split = bp_kernels::split_rr(4, Dim2::ONE);
    group.bench_function("split_rr-dispatch", |b| {
        let mut beh = (split.factory)();
        b.iter(|| {
            let consumed = vec![(0usize, Item::Window(Window::scalar(1.0)))];
            let data = FireData::new(&split.spec, &consumed);
            let mut out = Emitter::new(&split.spec);
            beh.fire("dispatch", &data, &mut out);
            out.into_items()
        });
    });
    let ranges = bp_kernels::plan_column_ranges(64, 5, 1, 4);
    let split_cols = bp_kernels::split_columns(ranges);
    group.bench_function("split_cols-line", |b| {
        let mut beh = (split_cols.factory)();
        b.iter(|| {
            let mut n = 0;
            for _x in 0..64 {
                let consumed = vec![(0usize, Item::Window(Window::scalar(1.0)))];
                let data = FireData::new(&split_cols.spec, &consumed);
                let mut out = Emitter::new(&split_cols.spec);
                beh.fire("dispatch", &data, &mut out);
                n += out.into_items().len();
            }
            let consumed = vec![(0usize, Item::Control(bp_core::ControlToken::EndOfLine))];
            let data = FireData::new(&split_cols.spec, &consumed);
            let mut out = Emitter::new(&split_cols.spec);
            beh.fire("eol", &data, &mut out);
            n
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_buffer,
    bench_compute_kernels,
    bench_split_join
);
criterion_main!(benches);
