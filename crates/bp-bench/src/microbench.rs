//! A minimal, dependency-free micro-benchmark harness exposing the subset
//! of the Criterion API the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `throughput`). The container this repository builds in has no crates.io
//! access, so Criterion itself cannot be vendored; this shim keeps the
//! bench sources intact and prints one median-of-samples line per
//! benchmark.
//!
//! Timing methodology: each sample times one invocation of the routine
//! (after a few warm-up runs); the reported figure is the median over
//! `sample_size` samples, which is robust to scheduler noise on shared
//! machines.

use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Identifier for one benchmark inside a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a displayable parameter, Criterion-style.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (samples, windows, pixels) per iteration.
    Elements(u64),
}

/// How batched setup output is sized; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A group of benchmarks sharing a sample size and throughput setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Run a benchmark against a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Finish the group (prints nothing; per-benchmark lines already out).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {:.3} us over {} samples{}",
            self.name,
            id,
            median.as_secs_f64() * 1e6,
            sorted.len(),
            rate
        );
    }
}

/// Per-benchmark timing driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` product per sample (setup time
    /// excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmarked
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point expanding to `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
