//! # bp-bench — harnesses regenerating the paper's figures
//!
//! One binary per evaluation figure (`fig03` … `fig13`, see DESIGN.md §4)
//! plus Criterion micro-benchmarks for the compiler passes, the simulators
//! and the kernel library. This library crate holds the shared plumbing:
//! compiling an application, running the timed simulation, and rendering
//! the small ASCII tables/bars the binaries print.

#![warn(missing_docs)]

pub mod microbench;

use bp_apps::App;
use bp_compiler::{compile, CompileOptions, Compiled};
use bp_core::Result;
use bp_sim::{SimConfig, SimReport, TimedSimulator};

/// Compile an application and run the timed simulator for `frames` frames.
pub fn compile_and_simulate(
    app: &App,
    opts: &CompileOptions,
    frames: u32,
) -> Result<(Compiled, SimReport)> {
    let compiled = compile(&app.graph, opts)?;
    let report = TimedSimulator::new(
        &compiled.graph,
        &compiled.mapping,
        SimConfig::new(frames).with_machine(opts.machine),
    )?
    .run()?;
    Ok((compiled, report))
}

/// Render a percentage as a fixed-width ASCII bar, one `#` per 2%.
pub fn bar(fraction: f64) -> String {
    let n = (fraction * 50.0).round().clamp(0.0, 50.0) as usize;
    format!("{:<50}", "#".repeat(n))
}

/// Format a (run, read, write) utilization breakdown like the stacked bars
/// of Fig. 13.
pub fn breakdown_row(label: &str, report: &SimReport) -> String {
    let (run, read, write) = report.utilization_breakdown();
    let total = run + read + write;
    format!(
        "{label:>6} | {:>5.1}% = run {:>5.1}% + read {:>5.1}% + write {:>5.1}% on {:>3} PEs |{}|",
        100.0 * total,
        100.0 * run,
        100.0 * read,
        100.0 * write,
        report.num_pes(),
        bar(total)
    )
}

/// A minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut s = line(&self.headers);
        s.push('\n');
        s.push_str(&"-".repeat(s.len().saturating_sub(1)));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&line(row));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(0.0).trim(), "");
        assert_eq!(bar(1.0).trim().len(), 50);
        assert_eq!(bar(2.0).trim().len(), 50);
        assert_eq!(bar(0.5).trim().len(), 25);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yyyy".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn compile_and_simulate_small_case() {
        let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW);
        let (c, r) = compile_and_simulate(&app, &CompileOptions::default(), 1).unwrap();
        assert!(r.verdict.met);
        assert!(c.report.pes_used > 0);
        let row = breakdown_row("SS", &r);
        assert!(row.contains("run"));
    }
}
