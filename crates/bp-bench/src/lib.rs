//! # bp-bench — harnesses regenerating the paper's figures
//!
//! One binary per evaluation figure (`fig03` … `fig13`, see DESIGN.md §4)
//! plus Criterion micro-benchmarks for the compiler passes, the simulators
//! and the kernel library. This library crate holds the shared plumbing:
//! compiling an application, running the timed simulation, and rendering
//! the small ASCII tables/bars the binaries print.

#![warn(missing_docs)]

pub mod microbench;

use bp_apps::App;
use bp_compiler::{compile, CompileOptions, Compiled};
use bp_core::Result;
use bp_sim::{ParallelTimedSimulator, SimConfig, SimReport, TimedSimulator};

/// Mapped-PE count at and above which [`compile_and_simulate`] switches to
/// the sharded parallel timed simulator. Below it the sharding bookkeeping
/// isn't worth spinning up workers; above it the engines are
/// interchangeable because their reports are bitwise identical
/// (DESIGN.md §9).
pub const PARALLEL_PE_THRESHOLD: usize = 16;

/// Compile an application and run the timed simulator for `frames` frames.
/// Machines with at least [`PARALLEL_PE_THRESHOLD`] mapped PEs run on the
/// sharded parallel engine with one worker per available core; the report
/// is bitwise identical either way.
pub fn compile_and_simulate(
    app: &App,
    opts: &CompileOptions,
    frames: u32,
) -> Result<(Compiled, SimReport)> {
    let compiled = compile(&app.graph, opts)?;
    let config = SimConfig::new(frames).with_machine(opts.machine);
    let report = if compiled.mapping.num_pes >= PARALLEL_PE_THRESHOLD {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config, workers)?.run()?
    } else {
        TimedSimulator::new(&compiled.graph, &compiled.mapping, config)?.run()?
    };
    Ok((compiled, report))
}

/// Extract the balanced-brace object value of `"key":` from raw JSON text.
/// The `BENCH_sim.json` schema contains no braces inside strings, so brace
/// counting is exact. Shared by `bench_json` (baseline carry-over) and
/// `sim_scaling` (block splicing).
pub fn extract_object(src: &str, key: &str) -> Option<String> {
    let kpos = src.find(&format!("\"{key}\":"))?;
    let start = kpos + src[kpos..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in src[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(src[start..=start + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extract the first numeric value of `"key":` inside `obj`.
pub fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let kpos = obj.find(&format!("\"{key}\":"))?;
    let rest = &obj[kpos + key.len() + 3..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Render a percentage as a fixed-width ASCII bar, one `#` per 2%.
pub fn bar(fraction: f64) -> String {
    let n = (fraction * 50.0).round().clamp(0.0, 50.0) as usize;
    format!("{:<50}", "#".repeat(n))
}

/// Format a (run, read, write) utilization breakdown like the stacked bars
/// of Fig. 13.
pub fn breakdown_row(label: &str, report: &SimReport) -> String {
    let (run, read, write) = report.utilization_breakdown();
    let total = run + read + write;
    format!(
        "{label:>6} | {:>5.1}% = run {:>5.1}% + read {:>5.1}% + write {:>5.1}% on {:>3} PEs |{}|",
        100.0 * total,
        100.0 * run,
        100.0 * read,
        100.0 * write,
        report.num_pes(),
        bar(total)
    )
}

/// A minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut s = line(&self.headers);
        s.push('\n');
        s.push_str(&"-".repeat(s.len().saturating_sub(1)));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&line(row));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(0.0).trim(), "");
        assert_eq!(bar(1.0).trim().len(), 50);
        assert_eq!(bar(2.0).trim().len(), 50);
        assert_eq!(bar(0.5).trim().len(), 25);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yyyy".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn compile_and_simulate_small_case() {
        let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW);
        let (c, r) = compile_and_simulate(&app, &CompileOptions::default(), 1).unwrap();
        assert!(r.verdict.met);
        assert!(c.report.pes_used > 0);
        let row = breakdown_row("SS", &r);
        assert!(row.contains("run"));
    }

    #[test]
    fn json_helpers_roundtrip() {
        let src = r#"{ "a": { "x": 1.5, "nested": { "y": 2 } }, "b": { "z": 3 } }"#;
        let a = extract_object(src, "a").unwrap();
        assert!(a.contains("nested"));
        assert_eq!(extract_number(&a, "x"), Some(1.5));
        assert_eq!(extract_number(&a, "y"), Some(2.0));
        assert_eq!(extract_object(src, "b").unwrap(), r#"{ "z": 3 }"#);
        assert_eq!(extract_object(src, "missing"), None);
        assert_eq!(extract_number(src, "missing"), None);
    }
}
