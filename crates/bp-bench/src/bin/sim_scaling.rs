//! E-perf — thread-scaling study of the sharded parallel timed simulator
//! (DESIGN.md §9) on a machine with many independent PE regions.
//!
//! The workload is `camera_bank(8, ...)`: eight disjoint camera pipelines
//! mapped one-to-one, giving a 384-PE machine (96 in `--smoke`) whose
//! mapped channel graph has eight weakly connected components — the shape
//! the sharded engine parallelizes. For each worker count in {1, 2, 4, 8} the study records
//! median wall time and asserts the `SimReport` fingerprint is identical
//! across *all* counts (the engine's core guarantee), then splices a
//! `"sim_scaling"` object into `BENCH_sim.json` (schema `bench_sim/v2`,
//! see EXPERIMENTS.md).
//!
//! Flags: `--threads N` caps the sweep at N workers; `--smoke` runs a
//! fast configuration and skips the JSON splice (used by CI to exercise
//! the parallel engine end to end).

use bp_bench::{extract_number, extract_object};
use bp_compiler::{compile, CompileOptions, MappingKind};
use bp_sim::{ParallelTimedSimulator, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Camera pipelines in the bank; one weakly connected component each.
const CAMERAS: usize = 8;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

struct SweepPoint {
    threads: usize,
    shards: usize,
    wall_ms_median: f64,
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_string();
    let mut max_threads = 8usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                max_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }
    let (frames, samples, dim, rate) = if smoke {
        (2u32, 3usize, bp_apps::SMALL, bp_apps::SLOW)
    } else {
        (4u32, 9usize, bp_apps::BIG, bp_apps::FAST)
    };

    let app = bp_apps::camera_bank(CAMERAS, dim, rate);
    let opts = CompileOptions {
        mapping: MappingKind::OneToOne,
        ..Default::default()
    };
    let compiled = compile(&app.graph, &opts).expect("compile camera_bank");
    assert!(
        compiled.mapping.num_pes >= 64,
        "scaling study needs a >=64-PE machine, got {}",
        compiled.mapping.num_pes
    );
    let config = SimConfig::new(frames).with_machine(opts.machine);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "camera_bank x{CAMERAS} {}x{} @ {rate} Hz: {} PEs, {} frames, \
         {samples} samples/point, {cores} core(s) available",
        dim.w, dim.h, compiled.mapping.num_pes, frames
    );

    let mut fingerprint: Option<u64> = None;
    let mut points: Vec<SweepPoint> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        if threads > max_threads {
            break;
        }
        let mut walls = Vec::with_capacity(samples);
        let mut shards = 0usize;
        for s in 0..samples + 2 {
            let sim = ParallelTimedSimulator::new(
                &compiled.graph,
                &compiled.mapping,
                config.clone(),
                threads,
            )
            .expect("instantiate");
            shards = sim.num_shards();
            let t0 = Instant::now();
            let report = sim.run().expect("run");
            let wall = t0.elapsed().as_secs_f64();
            let fp = report.fingerprint();
            match fingerprint {
                None => fingerprint = Some(fp),
                Some(want) => assert_eq!(
                    fp, want,
                    "SimReport diverged at {threads} threads — parallel engine \
                     is not bitwise deterministic"
                ),
            }
            if s >= 2 {
                walls.push(wall * 1e3); // first two samples are warm-up
            }
        }
        let wall_ms_median = median(walls);
        let speedup = points
            .first()
            .map(|p| p.wall_ms_median / wall_ms_median)
            .unwrap_or(1.0);
        println!(
            "  {threads} thread(s): {shards} shard(s), median {wall_ms_median:.3} ms \
             ({speedup:.2}x vs 1 thread)"
        );
        points.push(SweepPoint {
            threads,
            shards,
            wall_ms_median,
        });
    }
    let fingerprint = fingerprint.expect("at least one sweep point");
    println!("report fingerprint identical across all thread counts: {fingerprint:#018x}");

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }

    let base = points[0].wall_ms_median;
    let mut block = String::new();
    block.push_str("{\n");
    let _ = writeln!(
        block,
        "    \"app\": \"camera_bank\", \"cameras\": {CAMERAS}, \"dim\": \"{}x{}\", \
         \"rate_hz\": {rate:.1}, \"frames\": {frames}, \"samples\": {samples}, \
         \"num_pes\": {}, \"cores_available\": {cores},",
        dim.w, dim.h, compiled.mapping.num_pes
    );
    let _ = writeln!(block, "    \"fingerprint\": \"{fingerprint:#018x}\",");
    block.push_str("    \"threads\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            block,
            "      {{ \"threads\": {}, \"shards\": {}, \"wall_ms_median\": {:.3}, \
             \"speedup_vs_1_thread\": {:.3} }}{}",
            p.threads,
            p.shards,
            p.wall_ms_median,
            base / p.wall_ms_median,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    block.push_str("    ]\n  }");

    // Splice the block into BENCH_sim.json, replacing any previous one.
    let src = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|e| panic!("{out_path}: {e} — run bench_json first"));
    let out = match extract_object(&src, "sim_scaling") {
        Some(old) => src.replacen(&old, &block, 1),
        None => {
            let anchor = "  \"timed_speedup_vs_baseline\"";
            let at = src.find(anchor).expect("bench_sim schema anchor");
            format!("{}  \"sim_scaling\": {block},\n{}", &src[..at], &src[at..])
        }
    };
    // Sanity: the spliced file still parses for the keys we care about.
    assert!(extract_number(&out, "cores_available").is_some());
    std::fs::write(&out_path, &out).expect("write BENCH_sim.json");
    println!("wrote sim_scaling block into {out_path}");
}
