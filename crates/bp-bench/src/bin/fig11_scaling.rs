//! E7 — Figure 11 (a–d): the running example automatically parallelized at
//! the four input scaling points.
//!
//! Growing the input *size* grows the buffering (buffers replicate to fit
//! PE storage); growing the input *rate* grows the computation (kernels
//! replicate to meet throughput). Every configuration is simulated to
//! verify its real-time constraint, as in the paper.

use bp_bench::{compile_and_simulate, Table};
use bp_compiler::CompileOptions;

fn main() {
    println!("== Figure 11: parallelization vs input size and rate ==\n");
    let mut t = Table::new(&[
        "config",
        "frame",
        "rate",
        "conv",
        "median",
        "hist",
        "buffers",
        "split/join",
        "nodes",
        "verdict",
    ]);
    for point in bp_apps::fig11_points() {
        let app = bp_apps::fig1b(point.dim, point.rate_hz);
        let (compiled, sim) =
            compile_and_simulate(&app, &CompileOptions::default(), 3).expect(point.label);
        let plan = |name: &str| {
            compiled
                .report
                .parallelize
                .plan_for(name)
                .map(|p| p.granted)
                .unwrap_or(1)
        };
        // Buffers after splitting: count nodes with the Buffer role.
        let census = &compiled.report.census;
        t.row(&[
            point.label.to_string(),
            point.dim.to_string(),
            format!("{:.0} Hz", point.rate_hz),
            format!("x{}", plan("5x5 Conv")),
            format!("x{}", plan("3x3 Median")),
            format!("x{}", plan("Histogram")),
            census.role("Buffer").to_string(),
            format!("{}/{}", census.role("Split"), census.role("Join")),
            census.nodes.to_string(),
            if sim.verdict.met {
                format!("met ({:.1} Hz)", sim.verdict.achieved_rate_hz)
            } else {
                format!("MISSED ({} viol.)", sim.verdict.violations)
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Fig. 11): Small/Slow needs little replication; growing the size\n\
         (Big/Slow) multiplies buffers; growing the rate (Small/Fast) multiplies\n\
         computation kernels (conv x3, median x2, histogram x2); Big/Fast grows both.\n\
         All four meet their real-time constraints in simulation."
    );
}
