//! E-perf — machine-readable performance trajectory: writes `BENCH_sim.json`
//! with (a) the Fig. 13 utilization suite and (b) wall-clock throughput of
//! the timed and functional simulators on the Fig. 4 / Fig. 1(b) pipeline
//! at the reference configuration (40x24 @ 200 Hz).
//!
//! The first run records its numbers as the committed `"baseline"` object;
//! later runs keep that object verbatim, refresh `"current"`, and report
//! the speedup over baseline, so the performance history is visible
//! in-tree. Schema documented in EXPERIMENTS.md.

use bp_bench::{compile_and_simulate, extract_number, extract_object};
use bp_compiler::{compile, CompileOptions, MappingKind};
use bp_sim::{
    run_batch, Backend, CommModel, FunctionalExecutor, ParallelTimedSimulator, SimConfig,
    SimReport, TimedSimulator, TraceOptions,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Timed samples per throughput measurement (median reported).
const SAMPLES: usize = 15;
/// Frames simulated per sample at the reference configuration.
const FRAMES: u32 = 4;

/// One simulator throughput measurement.
struct Throughput {
    wall_ms_median: f64,
    firings: u64,
    windows_per_sec: f64,
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Auto => "auto",
        Backend::Interpreted => "interpreted",
        Backend::Compiled => "compiled",
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Wall-clock throughput of the timed simulator at the reference config.
/// "Windows per second" counts kernel firings (each consumes/produces one
/// window or token set) per wall-clock second of simulation. With
/// `threads > 1` the sharded parallel engine runs instead (bitwise-identical
/// report; the fig1b pipeline is one connected component, so this mainly
/// measures the parallel path's overhead). With `trace` set, event tracing
/// records into a default-capacity ring during the measurement.
fn bench_timed(threads: usize, trace: bool, backend: Backend) -> Throughput {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let mut config = SimConfig::new(FRAMES)
        .with_machine(opts.machine)
        .with_backend(backend);
    if trace {
        config = config.with_trace(TraceOptions::default());
    }
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut firings = 0u64;
    let mut fingerprint = 0u64;
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let report = if threads > 1 {
            ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone(), threads)
                .expect("instantiate")
                .run()
                .expect("run")
        } else {
            TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate")
                .run()
                .expect("run")
        };
        let wall = t0.elapsed().as_secs_f64();
        let total: u64 = report.node_firings.iter().sum();
        if firings == 0 {
            firings = total;
            fingerprint = report.fingerprint();
        }
        assert_eq!(total, firings, "timed simulation must be deterministic");
        assert_eq!(
            report.fingerprint(),
            fingerprint,
            "timed simulation must be deterministic"
        );
        if s >= 2 {
            walls.push(wall); // first two samples are warm-up
        }
    }
    let wall = median(walls);
    Throughput {
        wall_ms_median: wall * 1e3,
        firings,
        windows_per_sec: firings as f64 / wall,
    }
}

/// Interpreted-vs-compiled comparison on one workload: medians for both
/// backends, with the fingerprints asserted identical (the compiled
/// backend's defining invariant, DESIGN.md §13).
struct BackendCompare {
    label: &'static str,
    detail: String,
    frames: u32,
    samples: usize,
    interpreted_ms: f64,
    compiled_ms: f64,
    fingerprint: u64,
}

impl BackendCompare {
    fn speedup(&self) -> f64 {
        self.interpreted_ms / self.compiled_ms.max(1e-9)
    }
}

/// Measure one compiled graph under both backends on the sequential timed
/// engine, asserting report fingerprints match bit for bit.
fn compare_backends(
    label: &'static str,
    detail: String,
    compiled: &bp_compiler::Compiled,
    machine: bp_core::MachineSpec,
    frames: u32,
    samples: usize,
) -> BackendCompare {
    let mut medians = [0.0f64; 2];
    let mut fingerprints = [0u64; 2];
    for (i, backend) in [Backend::Interpreted, Backend::Compiled]
        .into_iter()
        .enumerate()
    {
        let config = SimConfig::new(frames)
            .with_machine(machine)
            .with_backend(backend);
        let mut walls = Vec::with_capacity(samples);
        for s in 0..samples + 2 {
            // Instantiate outside the timed region: setup cost (graph
            // instantiation, and for the compiled backend the lowering
            // pass) is a one-time cost per simulation, not part of the
            // per-event execution rate the comparison measures.
            let sim = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate");
            let t0 = Instant::now();
            let report = sim.run().expect("run");
            let wall = t0.elapsed().as_secs_f64();
            fingerprints[i] = report.fingerprint();
            if s >= 2 {
                walls.push(wall * 1e3);
            }
        }
        medians[i] = median(walls);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "{label}: compiled-backend fingerprint diverged from interpreted"
    );
    BackendCompare {
        label,
        detail,
        frames,
        samples,
        interpreted_ms: medians[0],
        compiled_ms: medians[1],
        fingerprint: fingerprints[0],
    }
}

/// The backend comparison suite: the reference fig1b configuration plus the
/// 384-PE camera bank (8 disjoint pipelines, mapped one-to-one).
fn bench_backends() -> Vec<BackendCompare> {
    let mut out = Vec::new();
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    out.push(compare_backends(
        "fig1b",
        "40x24 @ 200 Hz".to_string(),
        &compiled,
        opts.machine,
        FRAMES,
        SAMPLES,
    ));
    let app = bp_apps::camera_bank(8, bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions {
        mapping: MappingKind::OneToOne,
        ..Default::default()
    };
    let compiled = compile(&app.graph, &opts).expect("compile camera_bank");
    out.push(compare_backends(
        "camera_bank",
        format!("x8 40x24 @ 200 Hz, {} PEs", compiled.mapping.num_pes),
        &compiled,
        opts.machine,
        2,
        5,
    ));
    out
}

/// Comm-model measurement: fig1b (one connected component) under a uniform
/// nonzero inter-PE latency, sequential vs lookahead-parallel.
struct CommBench {
    latency_cycles: f64,
    seq_wall_ms: f64,
    par_wall_ms: f64,
    threads: usize,
    shards: usize,
    windows: u64,
    lookahead_s: f64,
}

/// Measure the delay-model engines on fig1b with a uniform per-hop latency.
/// fig1b is a single connected component, so under the zero model the
/// parallel engine degrades to sequential; the positive latency is exactly
/// what lets it shard — `shards > 1` here is the lookahead working. Panics
/// if the parallel fingerprint diverges from the sequential one.
fn bench_comm(threads: usize) -> CommBench {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let latency_cycles = 64.0;
    let comm = CommModel::uniform(latency_cycles / opts.machine.pe_clock_hz, 0.0);
    let config = SimConfig::new(FRAMES)
        .with_machine(opts.machine)
        .with_comm(comm);
    let threads = threads.max(2);
    let mut seq_walls = Vec::with_capacity(SAMPLES);
    let mut par_walls = Vec::with_capacity(SAMPLES);
    let (mut shards, mut windows, mut lookahead_s) = (0usize, 0u64, 0.0f64);
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
            .expect("instantiate")
            .run()
            .expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let seq_fp = report.fingerprint();
        if s >= 2 {
            seq_walls.push(wall * 1e3);
        }
        let t0 = Instant::now();
        let (report, _, stats) = ParallelTimedSimulator::new(
            &compiled.graph,
            &compiled.mapping,
            config.clone(),
            threads,
        )
        .expect("instantiate")
        .run_with_stats()
        .expect("run");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.fingerprint(),
            seq_fp,
            "comm-model parallel fingerprint diverged from sequential"
        );
        shards = stats.shards;
        windows = stats.windows;
        lookahead_s = stats.lookahead_s;
        if s >= 2 {
            par_walls.push(wall * 1e3);
        }
    }
    CommBench {
        latency_cycles,
        seq_wall_ms: median(seq_walls),
        par_wall_ms: median(par_walls),
        threads,
        shards,
        windows,
        lookahead_s,
    }
}

/// Wall-clock throughput of the functional executor at the reference config.
fn bench_functional() -> Throughput {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut firings = 0u64;
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
        ex.run_frames(FRAMES).expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let total: u64 = ex.program().nodes.iter().map(|n| n.firings).sum();
        if firings == 0 {
            firings = total;
        }
        assert_eq!(total, firings, "functional execution must be deterministic");
        if s >= 2 {
            walls.push(wall);
        }
    }
    let wall = median(walls);
    Throughput {
        wall_ms_median: wall * 1e3,
        firings,
        windows_per_sec: firings as f64 / wall,
    }
}

/// One Fig. 13 row: utilization under both mappings.
struct SuiteRow {
    label: &'static str,
    util_one_to_one: f64,
    util_greedy: f64,
}

/// Run the full Fig. 13 suite (11 benchmarks x 2 mappings) in parallel.
fn bench_fig13() -> (Vec<SuiteRow>, f64) {
    let suite = bp_apps::fig13_suite();
    let jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = suite
        .iter()
        .flat_map(|case| {
            [MappingKind::OneToOne, MappingKind::Greedy]
                .into_iter()
                .map(|kind| {
                    let build = case.build;
                    let label = case.label;
                    let f: Box<dyn FnOnce() -> SimReport + Send> = Box::new(move || {
                        let app = build();
                        let opts = CompileOptions {
                            mapping: kind,
                            ..Default::default()
                        };
                        compile_and_simulate(&app, &opts, 3)
                            .unwrap_or_else(|e| panic!("{label} ({kind:?}): {e}"))
                            .1
                    });
                    f
                })
        })
        .collect();
    let results = run_batch(jobs);
    let rows: Vec<SuiteRow> = suite
        .iter()
        .enumerate()
        .map(|(i, case)| SuiteRow {
            label: case.label,
            util_one_to_one: results[2 * i].avg_utilization(),
            util_greedy: results[2 * i + 1].avg_utilization(),
        })
        .collect();
    let avg = rows
        .iter()
        .map(|r| r.util_greedy / r.util_one_to_one.max(1e-9))
        .sum::<f64>()
        / rows.len() as f64;
    (rows, avg)
}

/// Render one snapshot (baseline or current) as a JSON object.
#[allow(clippy::too_many_arguments)]
fn snapshot_json(
    timed: &Throughput,
    traced: Option<&Throughput>,
    func: &Throughput,
    comm: &CommBench,
    rows: &[SuiteRow],
    avg_imp: f64,
    threads: usize,
    backend: Backend,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "    \"timed_primary\": {{ \"app\": \"fig1b\", \"dim\": \"40x24\", \"rate_hz\": 200.0, \
         \"frames\": {FRAMES}, \"samples\": {SAMPLES}, \"threads\": {threads}, \
         \"backend\": \"{}\", \"wall_ms_median\": {:.3}, \
         \"firings\": {}, \"windows_per_sec\": {:.1} }},",
        backend_name(backend),
        timed.wall_ms_median,
        timed.firings,
        timed.windows_per_sec
    );
    if let Some(tr) = traced {
        let overhead = 100.0 * (tr.wall_ms_median / timed.wall_ms_median.max(1e-9) - 1.0);
        let _ = writeln!(
            s,
            "    \"timed_traced\": {{ \"app\": \"fig1b\", \"wall_ms_median\": {:.3}, \
             \"windows_per_sec\": {:.1}, \"trace_overhead_pct\": {overhead:.2} }},",
            tr.wall_ms_median, tr.windows_per_sec
        );
    }
    let _ = writeln!(
        s,
        "    \"functional_primary\": {{ \"app\": \"fig1b\", \"dim\": \"40x24\", \"rate_hz\": 200.0, \
         \"frames\": {FRAMES}, \"samples\": {SAMPLES}, \"wall_ms_median\": {:.3}, \
         \"firings\": {}, \"windows_per_sec\": {:.1} }},",
        func.wall_ms_median, func.firings, func.windows_per_sec
    );
    let _ = writeln!(
        s,
        "    \"comm_model\": {{ \"app\": \"fig1b\", \"model\": \"uniform\", \
         \"latency_cycles\": {:.1}, \"seq_wall_ms_median\": {:.3}, \
         \"par_wall_ms_median\": {:.3}, \"threads\": {}, \"shards\": {}, \
         \"windows\": {}, \"lookahead_s\": {:.6e} }},",
        comm.latency_cycles,
        comm.seq_wall_ms,
        comm.par_wall_ms,
        comm.threads,
        comm.shards,
        comm.windows,
        comm.lookahead_s
    );
    s.push_str("    \"fig13\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"bench\": \"{}\", \"util_one_to_one\": {:.4}, \"util_greedy\": {:.4} }}{}",
            r.label,
            r.util_one_to_one,
            r.util_greedy,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("    ],\n");
    let _ = writeln!(s, "    \"fig13_avg_improvement\": {avg_imp:.3}");
    s.push_str("  }");
    s
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_string();
    let mut threads = 1usize;
    let mut trace = false;
    let mut assert_overhead: Option<f64> = None;
    let mut assert_backend_speedup: Option<f64> = None;
    let mut backend = Backend::Auto;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--trace" => trace = true,
            "--backend" => {
                backend = match args.next().as_deref() {
                    Some("auto") => Backend::Auto,
                    Some("interpreted") => Backend::Interpreted,
                    Some("compiled") => Backend::Compiled,
                    other => panic!("--backend needs auto|interpreted|compiled, got {other:?}"),
                };
            }
            "--assert-overhead" => {
                assert_overhead = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-overhead needs a percentage"),
                );
            }
            "--assert-backend-speedup" => {
                assert_backend_speedup = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-backend-speedup needs a ratio"),
                );
            }
            other => out_path = other.to_string(),
        }
    }

    println!(
        "measuring timed-simulator throughput \
         (fig1b 40x24 @ 200 Hz, {FRAMES} frames, {threads} thread(s), {} backend)...",
        backend_name(backend)
    );
    let timed = bench_timed(threads, false, backend);
    println!(
        "  timed: median {:.3} ms, {} firings, {:.0} windows/s",
        timed.wall_ms_median, timed.firings, timed.windows_per_sec
    );
    let traced = trace.then(|| {
        println!("measuring timed-simulator throughput with event tracing enabled...");
        let tr = bench_timed(threads, true, backend);
        println!(
            "  traced: median {:.3} ms ({:+.2}% vs untraced)",
            tr.wall_ms_median,
            100.0 * (tr.wall_ms_median / timed.wall_ms_median.max(1e-9) - 1.0)
        );
        tr
    });
    println!("measuring functional-executor throughput...");
    let func = bench_functional();
    println!(
        "  functional: median {:.3} ms, {} firings, {:.0} windows/s",
        func.wall_ms_median, func.firings, func.windows_per_sec
    );
    println!("measuring comm-model engines (fig1b, uniform latency, seq vs par)...");
    let comm = bench_comm(threads);
    println!(
        "  comm: seq {:.3} ms, par {:.3} ms on {} shard(s), {} window(s)",
        comm.seq_wall_ms, comm.par_wall_ms, comm.shards, comm.windows
    );
    println!("measuring interpreted vs compiled backends (fingerprint-asserted)...");
    let backends = bench_backends();
    for c in &backends {
        println!(
            "  {} ({}): interpreted {:.3} ms, compiled {:.3} ms ({:.2}x), \
             fingerprint {:#018x}",
            c.label,
            c.detail,
            c.interpreted_ms,
            c.compiled_ms,
            c.speedup(),
            c.fingerprint
        );
    }
    println!("running Fig. 13 suite (22 parallel simulations)...");
    let (rows, avg_imp) = bench_fig13();
    println!("  fig13 average GM/1:1 utilization improvement: {avg_imp:.2}x");

    let current = snapshot_json(
        &timed,
        traced.as_ref(),
        &func,
        &comm,
        &rows,
        avg_imp,
        threads,
        backend,
    );

    // Keep an existing committed baseline verbatim; otherwise this run is it.
    let previous = std::fs::read_to_string(&out_path).ok();
    let baseline = previous
        .as_deref()
        .and_then(|p| extract_object(p, "baseline"))
        .unwrap_or_else(|| current.clone());

    let base_wps = extract_number(&baseline, "windows_per_sec").unwrap_or(timed.windows_per_sec);
    let speedup = timed.windows_per_sec / base_wps.max(1e-9);

    // A `sim_scaling` block written by the `sim_scaling` binary is carried
    // over verbatim; rerun that binary to refresh it.
    let scaling = previous
        .as_deref()
        .and_then(|p| extract_object(p, "sim_scaling"));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_sim/v3\",\n");
    let _ = writeln!(out, "  \"baseline\": {baseline},");
    let _ = writeln!(out, "  \"current\": {current},");
    out.push_str("  \"backend_compare\": [\n");
    for (i, c) in backends.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"app\": \"{}\", \"config\": \"{}\", \"frames\": {}, \"samples\": {}, \
             \"interpreted_wall_ms_median\": {:.3}, \"compiled_wall_ms_median\": {:.3}, \
             \"compiled_speedup\": {:.3}, \"fingerprint\": \"{:#018x}\" }}{}",
            c.label,
            c.detail,
            c.frames,
            c.samples,
            c.interpreted_ms,
            c.compiled_ms,
            c.speedup(),
            c.fingerprint,
            if i + 1 < backends.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    if let Some(scaling) = scaling {
        let _ = writeln!(out, "  \"sim_scaling\": {scaling},");
    }
    let _ = writeln!(out, "  \"timed_speedup_vs_baseline\": {speedup:.3}");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write BENCH_sim.json");
    println!("wrote {out_path} (timed speedup vs baseline: {speedup:.2}x)");

    // CI guard: with tracing compiled in (but disabled for the primary
    // measurement), throughput must stay within PCT percent of the
    // committed baseline.
    if let Some(pct) = assert_overhead {
        let floor = 1.0 - pct / 100.0;
        if speedup < floor {
            eprintln!(
                "FAIL: timed speedup vs baseline {speedup:.3} is below the \
                 {floor:.3} floor (--assert-overhead {pct})"
            );
            std::process::exit(1);
        }
        println!("overhead check passed: speedup {speedup:.3} >= {floor:.3}");
    }

    // CI guard: the compiled backend must beat the interpreter by at least
    // the given ratio on the reference workload (fingerprints already
    // asserted identical above).
    if let Some(floor) = assert_backend_speedup {
        let got = backends[0].speedup();
        if got < floor {
            eprintln!(
                "FAIL: compiled-backend speedup {got:.3} on {} is below the \
                 {floor:.3} floor (--assert-backend-speedup)",
                backends[0].label
            );
            std::process::exit(1);
        }
        println!("backend speedup check passed: {got:.3} >= {floor:.3}");
    }
}
