//! E-perf — machine-readable performance trajectory: writes `BENCH_sim.json`
//! with (a) the Fig. 13 utilization suite and (b) wall-clock throughput of
//! the timed and functional simulators on the Fig. 4 / Fig. 1(b) pipeline
//! at the reference configuration (40x24 @ 200 Hz).
//!
//! The first run records its numbers as the committed `"baseline"` object;
//! later runs keep that object verbatim, refresh `"current"`, and report
//! the speedup over baseline, so the performance history is visible
//! in-tree. Schema documented in EXPERIMENTS.md.

use bp_bench::{compile_and_simulate, extract_number, extract_object};
use bp_compiler::{compile, CompileOptions, MappingKind};
use bp_sim::{
    run_batch, CommModel, FunctionalExecutor, ParallelTimedSimulator, SimConfig, SimReport,
    TimedSimulator, TraceOptions,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Timed samples per throughput measurement (median reported).
const SAMPLES: usize = 15;
/// Frames simulated per sample at the reference configuration.
const FRAMES: u32 = 4;

/// One simulator throughput measurement.
struct Throughput {
    wall_ms_median: f64,
    firings: u64,
    windows_per_sec: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Wall-clock throughput of the timed simulator at the reference config.
/// "Windows per second" counts kernel firings (each consumes/produces one
/// window or token set) per wall-clock second of simulation. With
/// `threads > 1` the sharded parallel engine runs instead (bitwise-identical
/// report; the fig1b pipeline is one connected component, so this mainly
/// measures the parallel path's overhead). With `trace` set, event tracing
/// records into a default-capacity ring during the measurement.
fn bench_timed(threads: usize, trace: bool) -> Throughput {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let mut config = SimConfig::new(FRAMES).with_machine(opts.machine);
    if trace {
        config = config.with_trace(TraceOptions::default());
    }
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut firings = 0u64;
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let report = if threads > 1 {
            ParallelTimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone(), threads)
                .expect("instantiate")
                .run()
                .expect("run")
        } else {
            TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
                .expect("instantiate")
                .run()
                .expect("run")
        };
        let wall = t0.elapsed().as_secs_f64();
        let total: u64 = report.node_firings.iter().sum();
        if firings == 0 {
            firings = total;
        }
        assert_eq!(total, firings, "timed simulation must be deterministic");
        if s >= 2 {
            walls.push(wall); // first two samples are warm-up
        }
    }
    let wall = median(walls);
    Throughput {
        wall_ms_median: wall * 1e3,
        firings,
        windows_per_sec: firings as f64 / wall,
    }
}

/// Comm-model measurement: fig1b (one connected component) under a uniform
/// nonzero inter-PE latency, sequential vs lookahead-parallel.
struct CommBench {
    latency_cycles: f64,
    seq_wall_ms: f64,
    par_wall_ms: f64,
    threads: usize,
    shards: usize,
    windows: u64,
    lookahead_s: f64,
}

/// Measure the delay-model engines on fig1b with a uniform per-hop latency.
/// fig1b is a single connected component, so under the zero model the
/// parallel engine degrades to sequential; the positive latency is exactly
/// what lets it shard — `shards > 1` here is the lookahead working. Panics
/// if the parallel fingerprint diverges from the sequential one.
fn bench_comm(threads: usize) -> CommBench {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let latency_cycles = 64.0;
    let comm = CommModel::uniform(latency_cycles / opts.machine.pe_clock_hz, 0.0);
    let config = SimConfig::new(FRAMES)
        .with_machine(opts.machine)
        .with_comm(comm);
    let threads = threads.max(2);
    let mut seq_walls = Vec::with_capacity(SAMPLES);
    let mut par_walls = Vec::with_capacity(SAMPLES);
    let (mut shards, mut windows, mut lookahead_s) = (0usize, 0u64, 0.0f64);
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let report = TimedSimulator::new(&compiled.graph, &compiled.mapping, config.clone())
            .expect("instantiate")
            .run()
            .expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let seq_fp = report.fingerprint();
        if s >= 2 {
            seq_walls.push(wall * 1e3);
        }
        let t0 = Instant::now();
        let (report, _, stats) = ParallelTimedSimulator::new(
            &compiled.graph,
            &compiled.mapping,
            config.clone(),
            threads,
        )
        .expect("instantiate")
        .run_with_stats()
        .expect("run");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.fingerprint(),
            seq_fp,
            "comm-model parallel fingerprint diverged from sequential"
        );
        shards = stats.shards;
        windows = stats.windows;
        lookahead_s = stats.lookahead_s;
        if s >= 2 {
            par_walls.push(wall * 1e3);
        }
    }
    CommBench {
        latency_cycles,
        seq_wall_ms: median(seq_walls),
        par_wall_ms: median(par_walls),
        threads,
        shards,
        windows,
        lookahead_s,
    }
}

/// Wall-clock throughput of the functional executor at the reference config.
fn bench_functional() -> Throughput {
    let app = bp_apps::fig1b(bp_apps::BIG, bp_apps::FAST);
    let opts = CompileOptions::default();
    let compiled = compile(&app.graph, &opts).expect("compile fig1b BIG/FAST");
    let mut walls = Vec::with_capacity(SAMPLES);
    let mut firings = 0u64;
    for s in 0..SAMPLES + 2 {
        let t0 = Instant::now();
        let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
        ex.run_frames(FRAMES).expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let total: u64 = ex.program().nodes.iter().map(|n| n.firings).sum();
        if firings == 0 {
            firings = total;
        }
        assert_eq!(total, firings, "functional execution must be deterministic");
        if s >= 2 {
            walls.push(wall);
        }
    }
    let wall = median(walls);
    Throughput {
        wall_ms_median: wall * 1e3,
        firings,
        windows_per_sec: firings as f64 / wall,
    }
}

/// One Fig. 13 row: utilization under both mappings.
struct SuiteRow {
    label: &'static str,
    util_one_to_one: f64,
    util_greedy: f64,
}

/// Run the full Fig. 13 suite (11 benchmarks x 2 mappings) in parallel.
fn bench_fig13() -> (Vec<SuiteRow>, f64) {
    let suite = bp_apps::fig13_suite();
    let jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = suite
        .iter()
        .flat_map(|case| {
            [MappingKind::OneToOne, MappingKind::Greedy]
                .into_iter()
                .map(|kind| {
                    let build = case.build;
                    let label = case.label;
                    let f: Box<dyn FnOnce() -> SimReport + Send> = Box::new(move || {
                        let app = build();
                        let opts = CompileOptions {
                            mapping: kind,
                            ..Default::default()
                        };
                        compile_and_simulate(&app, &opts, 3)
                            .unwrap_or_else(|e| panic!("{label} ({kind:?}): {e}"))
                            .1
                    });
                    f
                })
        })
        .collect();
    let results = run_batch(jobs);
    let rows: Vec<SuiteRow> = suite
        .iter()
        .enumerate()
        .map(|(i, case)| SuiteRow {
            label: case.label,
            util_one_to_one: results[2 * i].avg_utilization(),
            util_greedy: results[2 * i + 1].avg_utilization(),
        })
        .collect();
    let avg = rows
        .iter()
        .map(|r| r.util_greedy / r.util_one_to_one.max(1e-9))
        .sum::<f64>()
        / rows.len() as f64;
    (rows, avg)
}

/// Render one snapshot (baseline or current) as a JSON object.
fn snapshot_json(
    timed: &Throughput,
    traced: Option<&Throughput>,
    func: &Throughput,
    comm: &CommBench,
    rows: &[SuiteRow],
    avg_imp: f64,
    threads: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "    \"timed_primary\": {{ \"app\": \"fig1b\", \"dim\": \"40x24\", \"rate_hz\": 200.0, \
         \"frames\": {FRAMES}, \"samples\": {SAMPLES}, \"threads\": {threads}, \
         \"wall_ms_median\": {:.3}, \
         \"firings\": {}, \"windows_per_sec\": {:.1} }},",
        timed.wall_ms_median, timed.firings, timed.windows_per_sec
    );
    if let Some(tr) = traced {
        let overhead = 100.0 * (tr.wall_ms_median / timed.wall_ms_median.max(1e-9) - 1.0);
        let _ = writeln!(
            s,
            "    \"timed_traced\": {{ \"app\": \"fig1b\", \"wall_ms_median\": {:.3}, \
             \"windows_per_sec\": {:.1}, \"trace_overhead_pct\": {overhead:.2} }},",
            tr.wall_ms_median, tr.windows_per_sec
        );
    }
    let _ = writeln!(
        s,
        "    \"functional_primary\": {{ \"app\": \"fig1b\", \"dim\": \"40x24\", \"rate_hz\": 200.0, \
         \"frames\": {FRAMES}, \"samples\": {SAMPLES}, \"wall_ms_median\": {:.3}, \
         \"firings\": {}, \"windows_per_sec\": {:.1} }},",
        func.wall_ms_median, func.firings, func.windows_per_sec
    );
    let _ = writeln!(
        s,
        "    \"comm_model\": {{ \"app\": \"fig1b\", \"model\": \"uniform\", \
         \"latency_cycles\": {:.1}, \"seq_wall_ms_median\": {:.3}, \
         \"par_wall_ms_median\": {:.3}, \"threads\": {}, \"shards\": {}, \
         \"windows\": {}, \"lookahead_s\": {:.6e} }},",
        comm.latency_cycles,
        comm.seq_wall_ms,
        comm.par_wall_ms,
        comm.threads,
        comm.shards,
        comm.windows,
        comm.lookahead_s
    );
    s.push_str("    \"fig13\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"bench\": \"{}\", \"util_one_to_one\": {:.4}, \"util_greedy\": {:.4} }}{}",
            r.label,
            r.util_one_to_one,
            r.util_greedy,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("    ],\n");
    let _ = writeln!(s, "    \"fig13_avg_improvement\": {avg_imp:.3}");
    s.push_str("  }");
    s
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_string();
    let mut threads = 1usize;
    let mut trace = false;
    let mut assert_overhead: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--trace" => trace = true,
            "--assert-overhead" => {
                assert_overhead = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-overhead needs a percentage"),
                );
            }
            other => out_path = other.to_string(),
        }
    }

    println!(
        "measuring timed-simulator throughput \
         (fig1b 40x24 @ 200 Hz, {FRAMES} frames, {threads} thread(s))..."
    );
    let timed = bench_timed(threads, false);
    println!(
        "  timed: median {:.3} ms, {} firings, {:.0} windows/s",
        timed.wall_ms_median, timed.firings, timed.windows_per_sec
    );
    let traced = trace.then(|| {
        println!("measuring timed-simulator throughput with event tracing enabled...");
        let tr = bench_timed(threads, true);
        println!(
            "  traced: median {:.3} ms ({:+.2}% vs untraced)",
            tr.wall_ms_median,
            100.0 * (tr.wall_ms_median / timed.wall_ms_median.max(1e-9) - 1.0)
        );
        tr
    });
    println!("measuring functional-executor throughput...");
    let func = bench_functional();
    println!(
        "  functional: median {:.3} ms, {} firings, {:.0} windows/s",
        func.wall_ms_median, func.firings, func.windows_per_sec
    );
    println!("measuring comm-model engines (fig1b, uniform latency, seq vs par)...");
    let comm = bench_comm(threads);
    println!(
        "  comm: seq {:.3} ms, par {:.3} ms on {} shard(s), {} window(s)",
        comm.seq_wall_ms, comm.par_wall_ms, comm.shards, comm.windows
    );
    println!("running Fig. 13 suite (22 parallel simulations)...");
    let (rows, avg_imp) = bench_fig13();
    println!("  fig13 average GM/1:1 utilization improvement: {avg_imp:.2}x");

    let current = snapshot_json(
        &timed,
        traced.as_ref(),
        &func,
        &comm,
        &rows,
        avg_imp,
        threads,
    );

    // Keep an existing committed baseline verbatim; otherwise this run is it.
    let previous = std::fs::read_to_string(&out_path).ok();
    let baseline = previous
        .as_deref()
        .and_then(|p| extract_object(p, "baseline"))
        .unwrap_or_else(|| current.clone());

    let base_wps = extract_number(&baseline, "windows_per_sec").unwrap_or(timed.windows_per_sec);
    let speedup = timed.windows_per_sec / base_wps.max(1e-9);

    // A `sim_scaling` block written by the `sim_scaling` binary is carried
    // over verbatim; rerun that binary to refresh it.
    let scaling = previous
        .as_deref()
        .and_then(|p| extract_object(p, "sim_scaling"));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_sim/v2\",\n");
    let _ = writeln!(out, "  \"baseline\": {baseline},");
    let _ = writeln!(out, "  \"current\": {current},");
    if let Some(scaling) = scaling {
        let _ = writeln!(out, "  \"sim_scaling\": {scaling},");
    }
    let _ = writeln!(out, "  \"timed_speedup_vs_baseline\": {speedup:.3}");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write BENCH_sim.json");
    println!("wrote {out_path} (timed speedup vs baseline: {speedup:.2}x)");

    // CI guard: with tracing compiled in (but disabled for the primary
    // measurement), throughput must stay within PCT percent of the
    // committed baseline.
    if let Some(pct) = assert_overhead {
        let floor = 1.0 - pct / 100.0;
        if speedup < floor {
            eprintln!(
                "FAIL: timed speedup vs baseline {speedup:.3} is below the \
                 {floor:.3} floor (--assert-overhead {pct})"
            );
            std::process::exit(1);
        }
        println!("overhead check passed: speedup {speedup:.3} >= {floor:.3}");
    }
}
