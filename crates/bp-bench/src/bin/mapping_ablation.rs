//! Extension experiment: mapping-policy ablation across the benchmark
//! suite — the paper's neighbor-greedy multiplexing (§V) versus a pure
//! first-fit-decreasing bin packing that ignores graph adjacency, and the
//! naive 1:1 baseline.
//!
//! Packing minimizes PE count, but scattering communicating kernels across
//! PEs raises the traffic-weighted wirelength once the annealing placement
//! pass lays the PEs out on a mesh — quantifying what the paper's
//! "neighboring kernels" restriction buys.

use bp_bench::{compile_and_simulate, Table};
use bp_compiler::place::{place_annealed, AnnealConfig};
use bp_compiler::{analyze, CompileOptions, MappingKind};
use bp_sim::run_batch;

struct Row {
    label: &'static str,
    kind: &'static str,
    pes: usize,
    util: f64,
    latency_ms: f64,
    wirelength: f64,
    met: bool,
}

fn main() {
    println!("== Mapping ablation: 1:1 vs neighbor-greedy vs bin-packed ==\n");
    let suite = bp_apps::fig13_suite();
    let kinds = [
        ("1:1", MappingKind::OneToOne),
        ("greedy", MappingKind::Greedy),
        ("packed", MappingKind::Packed),
    ];
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = suite
        .iter()
        .flat_map(|case| {
            kinds.into_iter().map(|(kname, kind)| {
                let build = case.build;
                let label = case.label;
                let f: Box<dyn FnOnce() -> Row + Send> = Box::new(move || {
                    let app = build();
                    let opts = CompileOptions {
                        mapping: kind,
                        ..Default::default()
                    };
                    let (compiled, sim) = compile_and_simulate(&app, &opts, 3)
                        .unwrap_or_else(|e| panic!("{label} {kname}: {e}"));
                    let df = analyze(&compiled.graph).expect("dataflow");
                    let placement = place_annealed(
                        &compiled.graph,
                        &df,
                        &compiled.mapping,
                        &AnnealConfig {
                            iterations: 5_000,
                            ..Default::default()
                        },
                    );
                    Row {
                        label,
                        kind: kname,
                        pes: sim.num_pes(),
                        util: sim.avg_utilization(),
                        latency_ms: sim.avg_latency() * 1e3,
                        wirelength: placement.cost,
                        met: sim.verdict.met,
                    }
                });
                f
            })
        })
        .collect();
    let rows = run_batch(jobs);

    let mut t = Table::new(&[
        "bench",
        "mapping",
        "PEs",
        "util",
        "latency",
        "annealed wirelength",
        "verdict",
    ]);
    for r in &rows {
        t.row(&[
            r.label.to_string(),
            r.kind.to_string(),
            r.pes.to_string(),
            format!("{:.1}%", 100.0 * r.util),
            format!("{:.2} ms", r.latency_ms),
            format!("{:.0}", r.wirelength),
            if r.met { "met".into() } else { "MISSED".into() },
        ]);
    }
    println!("{}", t.render());

    // Aggregate: PEs and wirelength of packed relative to greedy.
    let mut pe_ratio = Vec::new();
    let mut wl_ratio = Vec::new();
    for chunk in rows.chunks(3) {
        let greedy = &chunk[1];
        let packed = &chunk[2];
        pe_ratio.push(packed.pes as f64 / greedy.pes as f64);
        if greedy.wirelength > 0.0 {
            wl_ratio.push(packed.wirelength / greedy.wirelength);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "packed vs greedy: {:.2}x the PEs, {:.2}x the traffic-weighted wirelength",
        avg(&pe_ratio),
        avg(&wl_ratio)
    );
    let misses = rows.iter().filter(|r| !r.met).count();
    println!(
        "\nthe adjacency restriction of §V trades a few extra PEs for locality and\n\
         for schedulability: average utilization fitting the cap is not sufficient\n\
         when adjacency is ignored — {misses} packed configuration(s) miss their\n\
         deadline from transient contention that the greedy rule avoids."
    );
}
