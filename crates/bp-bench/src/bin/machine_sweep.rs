//! Extension experiment: machine-sensitivity sweep.
//!
//! Compiles the running example across a grid of machine descriptions —
//! PE clock scaling, storage, and local-port width — and reports how the
//! parallelization and feasibility respond. This is the question a
//! deployment engineer asks of the paper's flow: "what does the compiler do
//! on *my* cores?"

use bp_bench::{compile_and_simulate, Table};
use bp_compiler::CompileOptions;
use bp_core::MachineSpec;
use bp_sim::run_batch;

struct Case {
    name: &'static str,
    machine: MachineSpec,
}

fn main() {
    println!("== Machine sensitivity: Fig. 1(b) app (20x12 @ 200 Hz) across machines ==\n");
    let cases = [
        Case {
            name: "default (1 MHz, 320 w, 16 w/cyc)",
            machine: MachineSpec::default_eval(),
        },
        Case {
            name: "half-speed cores (0.5 MHz)",
            machine: MachineSpec::scaled_clock(0.5),
        },
        Case {
            name: "double-speed cores (2 MHz)",
            machine: MachineSpec::scaled_clock(2.0),
        },
        Case {
            name: "quad-speed cores (4 MHz)",
            machine: MachineSpec::scaled_clock(4.0),
        },
        Case {
            name: "tight memory (192 words)",
            machine: MachineSpec::tight_memory(),
        },
        Case {
            name: "narrow port (1 w/cyc)",
            machine: MachineSpec::narrow_port(),
        },
    ];

    type Row = (usize, usize, u32, u32, bool, f64, usize);
    let jobs: Vec<Box<dyn FnOnce() -> Option<Row> + Send>> = cases
        .iter()
        .map(|c| {
            let machine = c.machine;
            let f: Box<dyn FnOnce() -> Option<Row> + Send> = Box::new(move || {
                let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST);
                let opts = CompileOptions {
                    machine,
                    ..Default::default()
                };
                let (compiled, sim) = compile_and_simulate(&app, &opts, 3).ok()?;
                let conv = compiled
                    .report
                    .parallelize
                    .plan_for("5x5 Conv")
                    .map(|p| p.granted)
                    .unwrap_or(1);
                let med = compiled
                    .report
                    .parallelize
                    .plan_for("3x3 Median")
                    .map(|p| p.granted)
                    .unwrap_or(1);
                Some((
                    compiled.report.census.nodes,
                    sim.num_pes(),
                    conv,
                    med,
                    sim.verdict.met,
                    sim.avg_utilization(),
                    compiled.report.census.role("Buffer"),
                ))
            });
            f
        })
        .collect();
    let results = run_batch(jobs);

    let mut t = Table::new(&[
        "machine", "nodes", "PEs", "conv", "median", "buffers", "util", "verdict",
    ]);
    for (c, r) in cases.iter().zip(results) {
        match r {
            Some((nodes, pes, conv, med, met, util, buffers)) => t.row(&[
                c.name.to_string(),
                nodes.to_string(),
                pes.to_string(),
                format!("x{conv}"),
                format!("x{med}"),
                buffers.to_string(),
                format!("{:.1}%", 100.0 * util),
                if met { "met".into() } else { "MISSED".into() },
            ]),
            None => t.row(&[
                c.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "infeasible".into(),
            ]),
        }
    }
    println!("{}", t.render());
    println!(
        "faster cores shrink the replica counts toward 1:1 with the kernel graph;\n\
         tighter memory multiplies buffers; a narrow local-store port can make the\n\
         serial split/join FSMs the bottleneck — the regime the paper's own machine\n\
         constants implicitly avoid."
    );
}
