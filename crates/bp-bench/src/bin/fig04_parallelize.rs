//! E2 — Figure 4: the running example automatically parallelized for its
//! input size and rate.
//!
//! Prints the replica counts per kernel, the inserted split/join/replicate
//! plumbing, the final role census, and the real-time verdict from the
//! timed simulation — the paper's Fig. 4 shows conv x3 and median x2 with
//! the histogram merge held serial by its data-dependency edge.

use bp_bench::{compile_and_simulate, Table};
use bp_compiler::{to_dot, CompileOptions};

fn main() {
    let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST);
    let (compiled, sim) =
        compile_and_simulate(&app, &CompileOptions::default(), 4).expect("compile+simulate");

    println!("== Figure 4: automatic parallelization (small frame, fast rate) ==\n");
    let mut t = Table::new(&["kernel", "utilization", "replicas", "reason"]);
    for p in &compiled.report.parallelize.plans {
        if p.utilization == 0.0 && p.granted == 1 {
            continue;
        }
        t.row(&[
            p.name.clone(),
            format!("{:.2}", p.utilization),
            format!("x{}", p.granted),
            format!("{:?}", p.reason),
        ]);
    }
    println!("{}", t.render());

    let census = &compiled.report.census;
    println!(
        "inserted plumbing: {} splits, {} joins, {} replicates",
        compiled.report.parallelize.splits_inserted,
        compiled.report.parallelize.joins_inserted,
        compiled.report.parallelize.replicates_inserted,
    );
    println!(
        "final graph: {} nodes / {} channels (buffers {}, splits {}, joins {})",
        census.nodes,
        census.channels,
        census.role("Buffer"),
        census.role("Split"),
        census.role("Join"),
    );
    println!(
        "\npaper (Fig. 4): 5x5 Conv x3, 3x3 Median x2, serial Merge (dep edge), \
         coefficient inputs replicated.\nmeasured: conv x{}, median x{}, merge x{}.",
        compiled
            .report
            .parallelize
            .plan_for("5x5 Conv")
            .map(|p| p.granted)
            .unwrap_or(0),
        compiled
            .report
            .parallelize
            .plan_for("3x3 Median")
            .map(|p| p.granted)
            .unwrap_or(0),
        compiled
            .report
            .parallelize
            .plan_for("Merge")
            .map(|p| p.granted)
            .unwrap_or(0),
    );
    println!(
        "\nreal-time verdict: met={} violations={} required={:.0}Hz achieved={:.1}Hz on {} PEs",
        sim.verdict.met,
        sim.verdict.violations,
        sim.verdict.required_rate_hz,
        sim.verdict.achieved_rate_hz,
        sim.num_pes()
    );
    println!(
        "\n== parallelized graph (Graphviz) ==\n{}",
        to_dot(&compiled.graph)
    );
}
