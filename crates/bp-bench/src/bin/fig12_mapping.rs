//! E8 — Figure 12: kernel-to-processor mappings.
//!
//! Compares the naive 1:1 mapping with the greedy multiplexing pass on the
//! parallelized running example: PEs used, measured utilization, and the
//! per-PE resident sets. The paper reports utilization rising from 20% to
//! 37% on this example.

use bp_bench::{breakdown_row, compile_and_simulate, Table};
use bp_compiler::{CompileOptions, MappingKind};

fn main() {
    println!("== Figure 12: 1:1 vs greedy kernel-to-processor mapping ==\n");
    let mut results = Vec::new();
    for (label, kind) in [("1:1", MappingKind::OneToOne), ("GM", MappingKind::Greedy)] {
        let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::FAST);
        let opts = CompileOptions {
            mapping: kind,
            ..Default::default()
        };
        let (compiled, sim) = compile_and_simulate(&app, &opts, 4).expect(label);
        println!("{}", breakdown_row(label, &sim));
        results.push((label, compiled, sim));
    }
    let u11 = results[0].2.avg_utilization();
    let ugm = results[1].2.avg_utilization();
    println!(
        "\nmeasured: {:.0}% -> {:.0}% utilization, {} -> {} PEs ({:.2}x improvement)",
        100.0 * u11,
        100.0 * ugm,
        results[0].2.num_pes(),
        results[1].2.num_pes(),
        ugm / u11
    );
    println!("paper: 20% -> 37% on its example (1.85x).\n");

    // Resident sets under the greedy mapping.
    let (_, compiled, _) = &results[1];
    println!("greedy PE residency:");
    let mut t = Table::new(&["PE", "resident kernels"]);
    let mut residents: Vec<Vec<String>> = vec![Vec::new(); compiled.mapping.num_pes];
    for (id, node) in compiled.graph.nodes() {
        residents[compiled.mapping.pe_of_node[id.0]].push(node.name.clone());
    }
    for (pe, names) in residents.iter().enumerate() {
        t.row(&[format!("{pe}"), names.join(", ")]);
    }
    println!("{}", t.render());
    println!(
        "note: the application input and the initial input buffers are pinned to\n\
         their own PEs (they may block the input if not serviced in time, §V)."
    );
}
