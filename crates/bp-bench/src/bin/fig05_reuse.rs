//! E3 — Figure 5: data access and reuse patterns of windowed inputs.
//!
//! The parameterization (size, step, scan-line order) fully determines
//! steady-state reuse: a 5x5 window advancing by (1,1) reuses 24 of 25
//! samples per iteration. This harness prints the reuse table for the
//! window shapes used across the benchmark suite.

use bp_bench::Table;
use bp_core::geometry::{fresh_samples_per_iteration, halo, iterations, steady_state_reuse};
use bp_core::{Dim2, Step2};

fn main() {
    println!("== Figure 5: window parameterization -> data reuse ==\n");
    let cases = [
        ("5x5 conv", Dim2::new(5, 5), Step2::ONE),
        ("3x3 median", Dim2::new(3, 3), Step2::ONE),
        ("3x3 sobel", Dim2::new(3, 3), Step2::ONE),
        ("4x4 bayer quad", Dim2::new(4, 4), Step2::new(2, 2)),
        ("2x2 downsample", Dim2::new(2, 2), Step2::new(2, 2)),
        ("5x5 coeff load", Dim2::new(5, 5), Step2::new(5, 5)),
        ("7x7 conv", Dim2::new(7, 7), Step2::ONE),
        ("9x1 row filter", Dim2::new(9, 1), Step2::ONE),
    ];
    let data = Dim2::new(20, 12);
    let mut t = Table::new(&[
        "kernel input",
        "size",
        "step",
        "halo",
        "fresh/iter",
        "steady-state reuse",
        "iters over 20x12",
    ]);
    for (name, size, step) in cases {
        let reuse = steady_state_reuse(size, step);
        t.row(&[
            name.to_string(),
            size.to_string(),
            step.to_string(),
            halo(size, step).to_string(),
            fresh_samples_per_iteration(size, step).to_string(),
            format!(
                "{:.1}% ({}/{})",
                100.0 * reuse,
                size.area() - fresh_samples_per_iteration(size, step),
                size.area()
            ),
            iterations(data, size, step)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Fig. 5): the 5x5 step-(1,1) convolution reuses 24 of 25 elements in the\n\
         steady state; coefficient-style inputs (step == size) reuse nothing.\n\
         measured: {:.1}% and {:.1}% respectively.",
        100.0 * steady_state_reuse(Dim2::new(5, 5), Step2::ONE),
        100.0 * steady_state_reuse(Dim2::new(5, 5), Step2::new(5, 5)),
    );
}
