//! E5 — Figure 9: reuse-optimized input/output buffering ablation.
//!
//! Compares the three buffering strategies for a parallelized
//! buffer→convolution pair: (a) single buffer with round-robin window
//! distribution, (b) column-split input buffers feeding each replica in
//! order, (c) b plus output buffers for stall-free collection. All three
//! must be functionally identical; they differ in the data reuse available
//! at the buffer→kernel interface and in the buffer storage footprint.
//! (The paper describes this optimization but evaluated only variant (a).)

use bp_bench::Table;
use bp_compiler::{align, insert_buffers, parallelize_with_reuse, AlignPolicy, ReuseVariant};
use bp_core::kernel::NodeRole;
use bp_core::{Dim2, GraphBuilder, MachineSpec};
use bp_kernels as k;
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

fn conv_app(rate: f64) -> (bp_core::AppGraph, k::SinkHandle) {
    let dim = Dim2::new(20, 12);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, rate);
    let conv = b.add("Conv", k::conv2d(5, 5));
    let coeff = b.add("Coeff", k::const_source("coeff", k::box_coefficients(5, 5)));
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(conv, "out", snk, "in");
    (b.build().unwrap(), h)
}

fn main() {
    let machine = MachineSpec::default_eval();
    println!("== Figure 9: buffering strategies for a parallelized 5x5 conv (20x12 @ 200 Hz) ==\n");
    let mut t = Table::new(&[
        "variant",
        "buffers",
        "buffer words",
        "reuse at kernel",
        "verdict",
        "achieved Hz",
        "PEs",
    ]);
    let mut golden: Option<Vec<Vec<f64>>> = None;
    for (label, variant) in [
        ("(a) round-robin", ReuseVariant::RoundRobin),
        ("(b) split input", ReuseVariant::SplitInput),
        ("(c) b + out bufs", ReuseVariant::SplitInputBufferedOutput),
    ] {
        let (mut g, h) = conv_app(200.0);
        align(&mut g, AlignPolicy::Trim).unwrap();
        insert_buffers(&mut g).unwrap();
        let report = parallelize_with_reuse(&mut g, &machine, variant).unwrap();

        // Functional run for equivalence.
        let mut ex = FunctionalExecutor::new(&g).unwrap();
        ex.run_frames(2).unwrap();
        let frames = h.frames();
        match &golden {
            None => golden = Some(frames.clone()),
            Some(gold) => assert_eq!(gold, &frames, "variant {label} diverged"),
        }
        h.clear();

        // Timed run for the real-time verdict.
        let mapping = {
            let df = bp_compiler::analyze(&g).unwrap();
            bp_compiler::map_greedy(&g, &df, &machine)
        };
        let sim = TimedSimulator::new(&g, &mapping, SimConfig::new(4).with_machine(machine))
            .unwrap()
            .run()
            .unwrap();

        let buffers: Vec<u64> = g
            .nodes()
            .filter(|(_, n)| n.spec().role == NodeRole::Buffer)
            .map(|(_, n)| n.spec().state_words)
            .collect();
        t.row(&[
            label.to_string(),
            buffers.len().to_string(),
            buffers.iter().sum::<u64>().to_string(),
            if variant == ReuseVariant::RoundRobin {
                "~0% (interleaved)".into()
            } else {
                format!("{:.0}% (in order)", 100.0 * report.reuse_fraction)
            },
            if sim.verdict.met {
                "met".into()
            } else {
                "MISSED".into()
            },
            format!("{:.1}", sim.verdict.achieved_rate_hz),
            sim.num_pes().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Fig. 9): replicating the input buffer enables in-order execution and\n\
         hence the full (wh - sx*sy)/wh window reuse at each replica, at the cost of\n\
         more buffer kernels; without output buffering the in-order collection can\n\
         stall the kernels. All variants compute identical results (verified above)."
    );
}
