//! E1 — Figure 3: automatic buffer and inset insertion on the running
//! image-processing example.
//!
//! Prints the adjustment kernels the compiler added (buffers with their
//! `[WxH]` storage annotations, the inset kernel with its margins), the
//! resulting graph census, and the Graphviz rendering of the transformed
//! graph.

use bp_bench::Table;
use bp_compiler::{align, insert_buffers, to_dot, AlignPolicy};

fn main() {
    let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW);
    let mut g = app.graph.clone();

    let align_report = align(&mut g, AlignPolicy::Trim).expect("alignment");
    let buffer_report = insert_buffers(&mut g).expect("buffering");

    println!("== Figure 3: automatically inserted buffers and inset kernels ==\n");
    let mut t = Table::new(&["kernel", "kind", "conversion", "storage", "for input"]);
    for b in &buffer_report.inserted {
        t.row(&[
            b.name.clone(),
            "buffer".into(),
            format!(
                "({}x{})[1,1] -> ({}x{})[{},{}] {}",
                b.producer.w,
                b.producer.h,
                b.window.w,
                b.window.h,
                b.step.x,
                b.step.y,
                b.annotation()
            ),
            format!("{} words", b.storage_words),
            b.name.clone(),
        ]);
    }
    for a in &align_report.inserted {
        t.row(&[
            a.name.clone(),
            a.kind.clone(),
            format!(
                "margins l{} r{} t{} b{}",
                a.margins.0, a.margins.1, a.margins.2, a.margins.3
            ),
            "-".into(),
            format!("{}.{}", a.for_input.0, a.for_input.1),
        ]);
    }
    println!("{}", t.render());

    println!(
        "paper (Fig. 3): two buffers (1x1)[1,1]->(3x3)[1,1] and (1x1)[1,1]->(5x5)[1,1]\n\
         plus one inset kernel (0,0)[1,1,1,1] on the median path.\n\
         measured: {} buffers, {} adjustment kernel(s) with margins {:?}.\n",
        buffer_report.inserted.len(),
        align_report.inserted.len(),
        align_report
            .inserted
            .first()
            .map(|a| a.margins)
            .unwrap_or((0, 0, 0, 0))
    );

    println!("== transformed graph (Graphviz) ==\n{}", to_dot(&g));
}
