//! E9 — Figure 13: processor utilization across the benchmark suite under
//! 1:1 and greedy mappings, broken down into run / read / write time.
//!
//! The paper's headline: greedy multiplexing improves average utilization
//! by about 1.5x across programs ranging from fewer than 10 kernels to
//! more than 50. The 22 simulations (11 benchmarks × 2 mappings) run in
//! parallel via `bp_sim::run_batch`; each simulation is deterministic.

use bp_bench::{breakdown_row, compile_and_simulate};
use bp_compiler::{CompileOptions, MappingKind};
use bp_sim::{run_batch, SimReport};

fn main() {
    println!("== Figure 13: utilization by benchmark and mapping ==\n");
    let suite = bp_apps::fig13_suite();

    // One job per (benchmark, mapping).
    let jobs: Vec<Box<dyn FnOnce() -> (usize, SimReport) + Send>> = suite
        .iter()
        .flat_map(|case| {
            [MappingKind::OneToOne, MappingKind::Greedy]
                .into_iter()
                .map(|kind| {
                    let build = case.build;
                    let label = case.label;
                    let f: Box<dyn FnOnce() -> (usize, SimReport) + Send> = Box::new(move || {
                        let app = build();
                        let opts = CompileOptions {
                            mapping: kind,
                            ..Default::default()
                        };
                        let (compiled, sim) = compile_and_simulate(&app, &opts, 3)
                            .unwrap_or_else(|e| panic!("{label} ({kind:?}): {e}"));
                        (compiled.report.census.nodes, sim)
                    });
                    f
                })
        })
        .collect();
    let results = run_batch(jobs);

    let mut improvements = Vec::new();
    let mut min_nodes = usize::MAX;
    let mut max_nodes = 0usize;
    for (i, case) in suite.iter().enumerate() {
        let (nodes_11, sim_11) = &results[2 * i];
        let (nodes_gm, sim_gm) = &results[2 * i + 1];
        println!("{}", breakdown_row(&format!("{} 1:1", case.label), sim_11));
        println!("{}", breakdown_row(&format!("{} GM", case.label), sim_gm));
        let imp = sim_gm.avg_utilization() / sim_11.avg_utilization().max(1e-9);
        improvements.push(imp);
        println!("{:>6} | GM/1:1 = {imp:.2}x  ({})", "", case.description);
        println!();
        min_nodes = min_nodes.min(*nodes_11).min(*nodes_gm);
        max_nodes = max_nodes.max(*nodes_11).max(*nodes_gm);
    }
    let avg: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("benchmark sizes: {min_nodes}..{max_nodes} kernels");
    println!("average utilization improvement GM over 1:1: {avg:.2}x");
    println!("paper: 1.5x average improvement across programs from <10 to >50 kernels.");
}
