//! E4 — Figure 8: inset alignment of differently-haloed outputs.
//!
//! Reconstructs the paper's overlay: the 3x3 median output (inset 1, 18x10
//! over a 20x12 input) versus the 5x5 convolution output (inset 2, 16x8),
//! the intersection/union regions, and the margins the compiler chooses
//! under each alignment policy.

use bp_bench::Table;
use bp_compiler::dataflow::{analyze_with, Strictness};
use bp_compiler::inset::{analyze_insets, regions_for};
use bp_compiler::{align, AlignPolicy};

fn main() {
    let app = bp_apps::fig1b(bp_apps::SMALL, bp_apps::SLOW);

    let df = analyze_with(&app.graph, Strictness::Lenient).expect("dataflow");
    let insets = analyze_insets(&app.graph).expect("insets");
    assert_eq!(
        df.misalignments.len(),
        1,
        "the subtract kernel is misaligned"
    );
    let mis = &df.misalignments[0];
    let regions = regions_for(&app.graph, &df, &insets, mis.node, &mis.inputs).expect("regions");

    println!("== Figure 8: output insets at the Subtract kernel (20x12 input) ==\n");
    let mut t = Table::new(&[
        "input",
        "inset (x,y)",
        "data size",
        "region [x0..x1) x [y0..y1)",
    ]);
    for (port, inset, shape) in &regions.inputs {
        let name = &app.graph.node(mis.node).spec().inputs[*port].name;
        t.row(&[
            format!("Subtract.{name}"),
            format!("({:.0},{:.0})", inset.x, inset.y),
            shape.to_string(),
            format!(
                "[{:.0}..{:.0}) x [{:.0}..{:.0})",
                inset.x,
                inset.x + shape.w as f64,
                inset.y,
                inset.y + shape.h as f64
            ),
        ]);
    }
    println!("{}", t.render());

    let (ix0, iy0, ix1, iy1) = regions.intersection();
    let (ux0, uy0, ux1, uy1) = regions.union();
    println!(
        "intersection (trim target): [{ix0:.0}..{ix1:.0}) x [{iy0:.0}..{iy1:.0})  -> {}x{}",
        ix1 - ix0,
        iy1 - iy0
    );
    println!(
        "union        (pad target) : [{ux0:.0}..{ux1:.0}) x [{uy0:.0}..{uy1:.0})  -> {}x{}\n",
        ux1 - ux0,
        uy1 - uy0
    );

    for policy in [AlignPolicy::Trim, AlignPolicy::PadZero] {
        let mut g = app.graph.clone();
        let report = align(&mut g, policy).expect("align");
        println!("policy {policy:?}:");
        for a in &report.inserted {
            println!(
                "  inserted {} ({}) margins l{} r{} t{} b{} for {}.{}",
                a.name,
                a.kind,
                a.margins.0,
                a.margins.1,
                a.margins.2,
                a.margins.3,
                a.for_input.0,
                a.for_input.1
            );
        }
    }
    println!(
        "\npaper (Fig. 8 / §III-C): median inset (1,1), conv inset (2,2); either trim the\n\
         median output by 1 pixel per side or pad the conv input by 1 pixel per side.\n\
         measured: both policies produce exactly those margins."
    );
}
