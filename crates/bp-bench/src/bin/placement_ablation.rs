//! Extension experiment: simulated-annealing placement (§IV-D).
//!
//! The paper implemented annealing placement but did not integrate it; here
//! it runs as a post-mapping pass. Reports traffic-weighted wirelength of
//! the row-major layout vs the annealed layout for each Fig. 11 point.

use bp_bench::Table;
use bp_compiler::place::{place_annealed, AnnealConfig};
use bp_compiler::{analyze, compile, CompileOptions};

fn main() {
    println!("== Placement ablation: row-major vs simulated annealing ==\n");
    let mut t = Table::new(&[
        "config",
        "PEs",
        "mesh",
        "row-major cost",
        "annealed cost",
        "improvement",
    ]);
    for point in bp_apps::fig11_points() {
        let app = bp_apps::fig1b(point.dim, point.rate_hz);
        let compiled = compile(&app.graph, &CompileOptions::default()).expect(point.label);
        let df = analyze(&compiled.graph).expect("dataflow");
        let p = place_annealed(
            &compiled.graph,
            &df,
            &compiled.mapping,
            &AnnealConfig::default(),
        );
        t.row(&[
            point.label.to_string(),
            compiled.mapping.num_pes.to_string(),
            format!("{}x{}", p.mesh.0, p.mesh.1),
            format!("{:.0}", p.initial_cost),
            format!("{:.0}", p.cost),
            format!("{:.1}%", 100.0 * p.improvement()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "cost = sum over inter-PE channels of words/s x Manhattan distance on the mesh\n\
         (a proxy for on-chip network energy; throughput is unaffected, as the paper\n\
         notes communication delay only adds latency in this model)."
    );
}
