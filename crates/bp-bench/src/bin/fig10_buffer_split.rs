//! E6 — Figure 10: the buffer-splitting FSM.
//!
//! Shows the overlapping column ranges a parallelized buffer is split into,
//! the split FSM's per-line schedule (which samples go to which sub-buffer,
//! with the shared halo columns sent to both), and verifies that the split
//! pipeline is bit-identical to the unsplit one.

use bp_bench::Table;
use bp_compiler::{compile, CompileOptions};
use bp_core::{Dim2, MachineSpec};
use bp_kernels::plan_column_ranges;
use bp_sim::FunctionalExecutor;

fn main() {
    // Fig. 10's situation: a 12-column buffer for a 3-wide window split in two.
    println!("== Figure 10: column-wise buffer splitting ==\n");
    let ranges = plan_column_ranges(12, 3, 1, 2);
    println!("width 12, 3x3 window, split k=2 -> ranges:");
    for (i, r) in ranges.iter().enumerate() {
        println!(
            "  buffer {i}: columns {}..={} ({} wide)",
            r.start,
            r.end,
            r.width()
        );
    }
    let shared: Vec<u32> = (0..12)
        .filter(|x| ranges.iter().filter(|r| r.contains(*x)).count() > 1)
        .collect();
    println!("shared (replicated) columns: {shared:?}\n");

    println!("split FSM schedule for one scan line:");
    let mut t = Table::new(&["column", "sent to"]);
    for x in 0..12u32 {
        let dests: Vec<String> = ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(x))
            .map(|(i, _)| format!("buffer {i}"))
            .collect();
        t.row(&[x.to_string(), dests.join(" & ")]);
    }
    println!("{}", t.render());

    // End-to-end verification on the parallel-buffer benchmark: a 64-wide
    // frame forces the 5x5 line buffer (2*64*5 = 640 words) across three
    // 320-word PEs.
    let app = bp_apps::parallel_buffer_test(Dim2::new(64, 12), 20.0);
    let machine = MachineSpec::default_eval();
    let compiled = compile(
        &app.graph,
        &CompileOptions {
            machine,
            ..Default::default()
        },
    )
    .expect("compile");
    let plan = compiled
        .report
        .parallelize
        .plans
        .iter()
        .find(|p| p.name.starts_with("Buffer("))
        .expect("buffer plan");
    println!(
        "parallel buffer test (64x12): buffer storage {} words vs {} per PE -> split x{} ({:?})",
        bp_kernels::buffer_storage_words(Dim2::ONE, Dim2::new(5, 5), 64),
        machine.pe_memory_words,
        plan.granted,
        plan.reason
    );
    let mut ex = FunctionalExecutor::new(&compiled.graph).expect("instantiate");
    ex.run_frames(2).expect("run");
    let frames = app.sinks[0].1.frames();
    let img = bp_apps::reference::pattern_frame(64, 12, 0);
    let box5 = vec![vec![1.0 / 25.0; 5]; 5];
    let expected: Vec<f64> = bp_apps::reference::conv2d_valid(&img, &box5)
        .into_iter()
        .flatten()
        .collect();
    let ok = frames[0]
        .iter()
        .zip(&expected)
        .all(|(a, b)| (a - b).abs() < 1e-9);
    println!(
        "functional equivalence vs unsplit reference: {} ({} samples/frame)",
        if ok { "bit-identical" } else { "MISMATCH" },
        frames[0].len()
    );
    assert!(ok);
    println!(
        "\npaper (Fig. 10): the overlapping halo columns are sent to both sub-buffers\n\
         so each can produce its share of windows; the join restores scan order."
    );
}
