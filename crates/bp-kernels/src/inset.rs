//! Inset (trim) kernel (§III-C, the "inverted house" in the paper's
//! figures): discards margin rows/columns so that differently-haloed
//! results align before a multi-input kernel.

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::{Dim2, Window};

/// Margins removed by an inset kernel, in samples per edge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Margins {
    /// Columns removed on the left.
    pub left: u32,
    /// Columns removed on the right.
    pub right: u32,
    /// Rows removed at the top.
    pub top: u32,
    /// Rows removed at the bottom.
    pub bottom: u32,
}

impl Margins {
    /// Uniform margins on all four edges.
    pub fn uniform(m: u32) -> Self {
        Self {
            left: m,
            right: m,
            top: m,
            bottom: m,
        }
    }

    /// True when nothing is trimmed.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

struct InsetBehavior {
    m: Margins,
    data: Dim2,
    x: u32,
    y: u32,
}

impl InsetBehavior {
    fn row_kept(&self) -> bool {
        self.y >= self.m.top && self.y < self.data.h - self.m.bottom
    }
}

impl KernelBehavior for InsetBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "filter" => {
                let keep_col = self.x >= self.m.left && self.x < self.data.w - self.m.right;
                if self.row_kept() && keep_col {
                    out.window("out", Window::scalar(d.window("in").as_scalar()));
                }
                self.x += 1;
            }
            "eol" => {
                if self.row_kept() {
                    out.token("out", ControlToken::EndOfLine);
                }
                self.x = 0;
                self.y += 1;
            }
            "eof" => {
                out.token("out", ControlToken::EndOfFrame);
                self.x = 0;
                self.y = 0;
            }
            other => panic!("inset has no method '{other}'"),
        }
    }

    // Spec order: 0 = filter, 1 = eol, 2 = eof.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let keep_col = self.x >= self.m.left && self.x < self.data.w - self.m.right;
                if self.row_kept() && keep_col {
                    out.window_at(0, Window::scalar(d.window_at(0).as_scalar()));
                }
                self.x += 1;
            }
            1 => {
                if self.row_kept() {
                    out.token_at(0, ControlToken::EndOfLine);
                }
                self.x = 0;
                self.y += 1;
            }
            2 => {
                out.token_at(0, ControlToken::EndOfFrame);
                self.x = 0;
                self.y = 0;
            }
            _ => return false,
        }
        true
    }
}

/// An inset kernel trimming `margins` off a logical `data`-sized stream.
/// The compiler inserts these automatically when the programmer selects the
/// trim alignment policy (§III-C).
pub fn inset(margins: Margins, data: Dim2) -> KernelDef {
    assert!(
        margins.left + margins.right < data.w && margins.top + margins.bottom < data.h,
        "inset margins must leave a non-empty interior"
    );
    let spec = KernelSpec::new("inset")
        .with_role(NodeRole::Inset)
        .with_shape(ShapeTransform::Crop {
            left: margins.left,
            right: margins.right,
            top: margins.top,
            bottom: margins.bottom,
        })
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "filter",
            "in",
            vec!["out".into()],
            MethodCost::new(2, 0),
        ))
        .method(MethodSpec::on_token(
            "eol",
            "in",
            TokenKind::EndOfLine,
            vec!["out".into()],
            MethodCost::new(1, 0),
        ))
        .method(MethodSpec::on_token(
            "eof",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(1, 0),
        ));
    KernelDef::new(spec, move || InsetBehavior {
        m: margins,
        data,
        x: 0,
        y: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn drive(def: &KernelDef, items: Vec<Item>) -> Vec<Item> {
        let mut b = (def.factory)();
        let mut got = Vec::new();
        for item in items {
            let method = match &item {
                Item::Window(_) => "filter",
                Item::Control(ControlToken::EndOfLine) => "eol",
                Item::Control(ControlToken::EndOfFrame) => "eof",
                Item::Control(ControlToken::Custom(_)) => continue,
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire(method, &data, &mut out);
            got.extend(out.into_items().into_iter().map(|(_, i)| i));
        }
        got
    }

    fn stream(w: u32, h: u32) -> Vec<Item> {
        let mut v = Vec::new();
        for y in 0..h {
            for x in 0..w {
                v.push(Item::Window(Window::scalar((y * w + x) as f64)));
            }
            v.push(Item::Control(ControlToken::EndOfLine));
        }
        v.push(Item::Control(ControlToken::EndOfFrame));
        v
    }

    #[test]
    fn trims_one_pixel_border() {
        let def = inset(Margins::uniform(1), Dim2::new(4, 4));
        let got = drive(&def, stream(4, 4));
        let vals: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(vals, vec![5.0, 6.0, 9.0, 10.0]);
        let eols = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfLine)))
            .count();
        assert_eq!(eols, 2); // only kept rows carry EOL
    }

    #[test]
    fn asymmetric_margins() {
        let def = inset(
            Margins {
                left: 1,
                right: 0,
                top: 0,
                bottom: 1,
            },
            Dim2::new(3, 2),
        );
        let got = drive(&def, stream(3, 2));
        let vals: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(vals, vec![1.0, 2.0]);
    }

    #[test]
    fn resets_at_frame_boundary() {
        let def = inset(Margins::uniform(1), Dim2::new(3, 3));
        let mut items = stream(3, 3);
        items.extend(stream(3, 3));
        let got = drive(&def, items);
        let vals: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(vals, vec![4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty interior")]
    fn rejects_degenerate_margins() {
        let _ = inset(Margins::uniform(2), Dim2::new(4, 4));
    }
}
