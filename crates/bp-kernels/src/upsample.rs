//! Upsampling kernel: each input sample expands to a `fx`×`fy` output block
//! — the one kernel in the library whose output grain is *larger* than its
//! input, exercising the model's support for expanding parameterizations.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Window};

/// Fill policy for the expanded block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpsampleMode {
    /// Repeat the sample across the whole block (nearest-neighbor).
    Replicate,
    /// Put the sample in the top-left corner and zero-stuff the rest
    /// (for subsequent interpolation filtering).
    ZeroStuff,
}

struct UpsampleBehavior {
    fx: u32,
    fy: u32,
    mode: UpsampleMode,
}

impl KernelBehavior for UpsampleBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let v = d.window("in").as_scalar();
        let block = match self.mode {
            UpsampleMode::Replicate => Window::filled(Dim2::new(self.fx, self.fy), v),
            UpsampleMode::ZeroStuff => {
                let mut w = Window::zeros(Dim2::new(self.fx, self.fy));
                w.set(0, 0, v);
                w
            }
        };
        out.window("out", block);
    }
}

/// Upsample by `fx`×`fy` with the given fill policy.
pub fn upsample(fx: u32, fy: u32, mode: UpsampleMode) -> KernelDef {
    assert!(fx >= 1 && fy >= 1);
    let spec = KernelSpec::new("upsample")
        .input(InputSpec::stream("in"))
        .output(OutputSpec::block("out", Dim2::new(fx, fy)))
        .method(MethodSpec::on_data(
            "run",
            "in",
            vec!["out".into()],
            MethodCost::new(3 + (fx * fy) as u64, (fx * fy) as u64),
        ));
    KernelDef::new(spec, move || UpsampleBehavior { fx, fy, mode })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn run(def: &KernelDef, v: f64) -> Window {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(Window::scalar(v)))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("run", &data, &mut out);
        out.into_items()[0].1.window().unwrap().clone()
    }

    #[test]
    fn replicate_fills_block() {
        let w = run(&upsample(2, 3, UpsampleMode::Replicate), 4.5);
        assert_eq!(w.dim(), Dim2::new(2, 3));
        assert!(w.samples().iter().all(|&s| s == 4.5));
    }

    #[test]
    fn zero_stuff_places_corner() {
        let w = run(&upsample(2, 2, UpsampleMode::ZeroStuff), 7.0);
        assert_eq!(w.samples(), &[7.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn output_grain_is_expanded() {
        let def = upsample(3, 2, UpsampleMode::Replicate);
        assert_eq!(def.spec.outputs[0].size, Dim2::new(3, 2));
        assert_eq!(def.spec.inputs[0].size, Dim2::ONE);
    }
}
