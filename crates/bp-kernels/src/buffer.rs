//! The parameterized buffer kernel (§III-B): a two-dimensional circular
//! line buffer that converts a channel's grain from the producer's block
//! size to the consumer's window size and step.
//!
//! A buffer retains only the rows still needed by outstanding windows
//! (`consumer height` rows in the steady state) and is *sized* — for memory
//! accounting and the parallelization pass — as a double buffer of the
//! larger of its input and output grains across the full data width, as the
//! paper prescribes.

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, Parallelism, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::{Dim2, Step2, Window};
use std::collections::VecDeque;

/// Words of storage the paper's sizing rule assigns to a buffer: double
/// buffering of the larger grain across the data width.
pub fn buffer_storage_words(producer: Dim2, window: Dim2, data_width: u32) -> u64 {
    2 * data_width as u64 * window.h.max(producer.h) as u64
}

struct BufferBehavior {
    data_w: u32,
    pw: u32,
    ph: u32,
    cw: u32,
    ch: u32,
    sx: u32,
    sy: u32,
    /// Completed data rows retained for outstanding windows.
    rows: VecDeque<Vec<f64>>,
    /// Global row index of `rows[0]`.
    base_y: u32,
    /// Rows currently being assembled (ph of them in block mode, 1 in
    /// streaming mode).
    partial: Vec<Vec<f64>>,
    /// Global row index of `partial[0]`.
    part_y: u32,
    /// Window rows fully emitted so far this frame.
    next_iy: u32,
    emitted_since_eol: bool,
}

impl BufferBehavior {
    fn new(data_w: u32, producer: Dim2, window: Dim2, step: Step2) -> Self {
        Self {
            data_w,
            pw: producer.w,
            ph: producer.h,
            cw: window.w,
            ch: window.h,
            sx: step.x,
            sy: step.y,
            rows: VecDeque::new(),
            base_y: 0,
            partial: vec![Vec::new(); producer.h as usize],
            part_y: 0,
            next_iy: 0,
            emitted_since_eol: false,
        }
    }

    fn reset(&mut self) {
        self.rows.clear();
        self.base_y = 0;
        for p in self.partial.iter_mut() {
            p.clear();
        }
        self.part_y = 0;
        self.next_iy = 0;
        self.emitted_since_eol = false;
    }

    fn iters_x(&self) -> u32 {
        if self.data_w < self.cw {
            0
        } else {
            (self.data_w - self.cw) / self.sx + 1
        }
    }

    fn row(&self, global_y: u32) -> &[f64] {
        if global_y >= self.part_y {
            &self.partial[(global_y - self.part_y) as usize]
        } else {
            &self.rows[(global_y - self.base_y) as usize]
        }
    }

    fn build_window(&self, ix: u32, iy: u32) -> Window {
        let x0 = (ix * self.sx) as usize;
        let y0 = iy * self.sy;
        Window::from_fn(Dim2::new(self.cw, self.ch), |x, y| {
            self.row(y0 + y)[x0 + x as usize]
        })
    }

    /// Drop rows no longer needed by any future window.
    fn retire_rows(&mut self) {
        let needed_from = self.next_iy * self.sy;
        while self.base_y < needed_from && !self.rows.is_empty() {
            self.rows.pop_front();
            self.base_y += 1;
        }
    }

    /// Streaming (1×1 producer) path: emit the window whose bottom-right
    /// sample just arrived, if any.
    fn push_pixel(&mut self, v: f64, out: &mut Emitter<'_>) {
        let y = self.part_y;
        self.partial[0].push(v);
        let x = self.partial[0].len() as u32 - 1;
        if y + 1 >= self.ch && (y + 1 - self.ch).is_multiple_of(self.sy) {
            let iy = (y + 1 - self.ch) / self.sy;
            if x + 1 >= self.cw && (x + 1 - self.cw).is_multiple_of(self.sx) {
                let ix = (x + 1 - self.cw) / self.sx;
                if ix < self.iters_x() {
                    out.window_at(0, self.build_window(ix, iy));
                    self.emitted_since_eol = true;
                    if ix + 1 == self.iters_x() {
                        self.next_iy = iy + 1;
                    }
                }
            }
        }
        if x + 1 == self.data_w {
            let full = std::mem::take(&mut self.partial[0]);
            self.rows.push_back(full);
            self.part_y += 1;
            self.retire_rows();
        }
    }

    /// Block path: integrate a producer block; emit every window completed
    /// by it once its ph rows fill the data width.
    fn push_block(&mut self, w: &Window, out: &mut Emitter<'_>) {
        for r in 0..self.ph {
            let row = &mut self.partial[r as usize];
            for c in 0..self.pw {
                row.push(w.get(c, r));
            }
        }
        if self.partial[0].len() as u32 == self.data_w {
            for r in 0..self.ph as usize {
                let full = std::mem::take(&mut self.partial[r]);
                self.rows.push_back(full);
            }
            self.part_y += self.ph;
            // Emit all window rows now complete.
            while self.next_iy * self.sy + self.ch <= self.part_y {
                let iy = self.next_iy;
                for ix in 0..self.iters_x() {
                    out.window_at(0, self.build_window(ix, iy));
                }
                self.emitted_since_eol = true;
                self.next_iy += 1;
            }
            self.retire_rows();
        }
    }
}

impl KernelBehavior for BufferBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "push" => {
                let w = d.window("in");
                if self.pw == 1 && self.ph == 1 {
                    self.push_pixel(w.as_scalar(), out);
                } else {
                    self.push_block(w, out);
                }
            }
            "eol" => {
                if self.emitted_since_eol {
                    out.token("out", ControlToken::EndOfLine);
                    self.emitted_since_eol = false;
                }
            }
            "eof" => {
                out.token("out", ControlToken::EndOfFrame);
                self.reset();
            }
            other => panic!("buffer has no method '{other}'"),
        }
    }

    // Spec order: 0 = push, 1 = eol, 2 = eof.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let w = d.window_at(0);
                if self.pw == 1 && self.ph == 1 {
                    self.push_pixel(w.as_scalar(), out);
                } else {
                    self.push_block(w, out);
                }
            }
            1 => {
                if self.emitted_since_eol {
                    out.token_at(0, ControlToken::EndOfLine);
                    self.emitted_since_eol = false;
                }
            }
            2 => {
                out.token_at(0, ControlToken::EndOfFrame);
                self.reset();
            }
            _ => return false,
        }
        true
    }
}

/// A buffer kernel converting `producer`-sized blocks into `window` windows
/// advancing by `step`, over logical data `data` (width × height). Inserted
/// automatically by the compiler wherever grains mismatch (§III-B); its
/// storage is sized as a double buffer of the larger grain.
pub fn buffer(producer: Dim2, window: Dim2, step: Step2, data: Dim2) -> KernelDef {
    let storage = buffer_storage_words(producer, window, data.w);
    let spec = KernelSpec::new("buffer")
        .with_role(NodeRole::Buffer)
        .with_parallelism(Parallelism::ColumnSplit)
        .with_shape(ShapeTransform::Fixed { data })
        .input(InputSpec::block("in", producer))
        .output(OutputSpec {
            name: "out".into(),
            size: window,
            step,
        })
        .method(MethodSpec::on_data(
            "push",
            "in",
            vec!["out".into()],
            MethodCost::new(5, 0),
        ))
        .method(MethodSpec::on_token(
            "eol",
            "in",
            TokenKind::EndOfLine,
            vec!["out".into()],
            MethodCost::new(1, 0),
        ))
        .method(MethodSpec::on_token(
            "eof",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(1, 0),
        ))
        .with_state_words(storage);
    KernelDef::new(spec, move || {
        BufferBehavior::new(data.w, producer, window, step)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    /// Drive a single-input kernel with a scan-line item stream, collecting
    /// everything it emits (a miniature single-node executor).
    pub(crate) fn drive(def: &KernelDef, items: Vec<Item>) -> Vec<Item> {
        let mut b = (def.factory)();
        let mut got = Vec::new();
        for item in items {
            let method = match &item {
                Item::Window(_) => "push",
                Item::Control(ControlToken::EndOfLine) => "eol",
                Item::Control(ControlToken::EndOfFrame) => "eof",
                Item::Control(ControlToken::Custom(_)) => continue,
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire(method, &data, &mut out);
            got.extend(out.into_items().into_iter().map(|(_, i)| i));
        }
        got
    }

    /// Scan-line pixel stream for a WxH frame valued `y*W + x`.
    fn pixel_stream(w: u32, h: u32) -> Vec<Item> {
        let mut v = Vec::new();
        for y in 0..h {
            for x in 0..w {
                v.push(Item::Window(Window::scalar((y * w + x) as f64)));
            }
            v.push(Item::Control(ControlToken::EndOfLine));
        }
        v.push(Item::Control(ControlToken::EndOfFrame));
        v
    }

    #[test]
    fn emits_sliding_windows_in_scan_order() {
        let def = buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, Dim2::new(4, 4));
        let got = drive(&def, pixel_stream(4, 4));
        let windows: Vec<&Window> = got.iter().filter_map(|i| i.window()).collect();
        // (4-3+1)^2 = 4 windows.
        assert_eq!(windows.len(), 4);
        // First window = rows 0..3, cols 0..3.
        assert_eq!(windows[0].get(0, 0), 0.0);
        assert_eq!(windows[0].get(2, 2), 10.0);
        // Second window shifted right by one.
        assert_eq!(windows[1].get(0, 0), 1.0);
        // Third window = next window row (shifted down by one).
        assert_eq!(windows[2].get(0, 0), 4.0);
        assert_eq!(windows[3].get(2, 2), 15.0);
    }

    #[test]
    fn tokens_follow_window_rows() {
        let def = buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, Dim2::new(4, 4));
        let got = drive(&def, pixel_stream(4, 4));
        // Expected: 2 windows, EOL, 2 windows, EOL, EOF.
        let kinds: Vec<String> = got
            .iter()
            .map(|i| match i {
                Item::Window(_) => "W".to_string(),
                Item::Control(t) => t.to_string(),
            })
            .collect();
        assert_eq!(kinds, vec!["W", "W", "EOL", "W", "W", "EOL", "EOF"]);
    }

    #[test]
    fn strided_windows_skip_rows_and_cols() {
        // 2x2 windows, step 2 over 4x4: exactly 4 non-overlapping windows.
        let def = buffer(
            Dim2::ONE,
            Dim2::new(2, 2),
            Step2::new(2, 2),
            Dim2::new(4, 4),
        );
        let got = drive(&def, pixel_stream(4, 4));
        let windows: Vec<&Window> = got.iter().filter_map(|i| i.window()).collect();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].samples(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(windows[1].samples(), &[2.0, 3.0, 6.0, 7.0]);
        assert_eq!(windows[2].samples(), &[8.0, 9.0, 12.0, 13.0]);
        assert_eq!(windows[3].samples(), &[10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn resets_between_frames() {
        let def = buffer(Dim2::ONE, Dim2::new(3, 3), Step2::ONE, Dim2::new(4, 4));
        let mut items = pixel_stream(4, 4);
        items.extend(pixel_stream(4, 4));
        let got = drive(&def, items);
        let windows = got.iter().filter(|i| i.is_window()).count();
        let eofs = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!(windows, 8);
        assert_eq!(eofs, 2);
    }

    #[test]
    fn block_producer_reassembles_rows() {
        // Producer delivers 2x1 blocks; consumer wants 3x3 windows over 4x4.
        let def = buffer(
            Dim2::new(2, 1),
            Dim2::new(3, 3),
            Step2::ONE,
            Dim2::new(4, 4),
        );
        let mut items = Vec::new();
        for y in 0..4u32 {
            for bx in 0..2u32 {
                let w = Window::from_fn(Dim2::new(2, 1), |x, _| (y * 4 + bx * 2 + x) as f64);
                items.push(Item::Window(w));
            }
            items.push(Item::Control(ControlToken::EndOfLine));
        }
        items.push(Item::Control(ControlToken::EndOfFrame));
        let got = drive(&def, items);
        let windows: Vec<&Window> = got.iter().filter_map(|i| i.window()).collect();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].get(0, 0), 0.0);
        assert_eq!(windows[3].get(2, 2), 15.0);
    }

    #[test]
    fn storage_matches_paper_sizing() {
        // The paper's [20x10] buffer: width-20 data into a 5x5 window.
        assert_eq!(buffer_storage_words(Dim2::ONE, Dim2::new(5, 5), 20), 200);
        let def = buffer(Dim2::ONE, Dim2::new(5, 5), Step2::ONE, Dim2::new(20, 12));
        assert_eq!(def.spec.state_words, 200);
        assert_eq!(def.spec.role, NodeRole::Buffer);
        assert_eq!(def.spec.parallelism, Parallelism::ColumnSplit);
    }

    #[test]
    fn histogram_row_windows() {
        // 4x1 windows with step (4,1): one window per data row.
        let def = buffer(
            Dim2::ONE,
            Dim2::new(4, 1),
            Step2::new(4, 1),
            Dim2::new(4, 3),
        );
        let got = drive(&def, pixel_stream(4, 3));
        let windows: Vec<&Window> = got.iter().filter_map(|i| i.window()).collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[1].samples(), &[4.0, 5.0, 6.0, 7.0]);
    }
}
