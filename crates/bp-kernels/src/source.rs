//! Application inputs: frame sources and constant providers.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::OutputSpec;
use bp_core::token::ControlToken;
#[cfg(test)]
use bp_core::Item;
use bp_core::{Dim2, Window};
use std::sync::Arc;

/// Pixel generator: `(frame index, x, y) -> sample`.
pub type PixelGen = Arc<dyn Fn(u32, u32, u32) -> f64 + Send + Sync>;

struct FrameSourceBehavior {
    frame: Dim2,
    gen: PixelGen,
    f: u32,
    x: u32,
    y: u32,
}

impl KernelBehavior for FrameSourceBehavior {
    fn fire(&mut self, _m: &str, _d: &FireData<'_>, out: &mut Emitter<'_>) {
        out.window("out", Window::scalar((self.gen)(self.f, self.x, self.y)));
        self.x += 1;
        if self.x == self.frame.w {
            self.x = 0;
            out.token("out", ControlToken::EndOfLine);
            self.y += 1;
            if self.y == self.frame.h {
                self.y = 0;
                self.f += 1;
                out.token("out", ControlToken::EndOfFrame);
            }
        }
    }

    fn fire_fast(&mut self, _m: usize, _d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        out.window_at(0, Window::scalar((self.gen)(self.f, self.x, self.y)));
        self.x += 1;
        if self.x == self.frame.w {
            self.x = 0;
            out.token_at(0, ControlToken::EndOfLine);
            self.y += 1;
            if self.y == self.frame.h {
                self.y = 0;
                self.f += 1;
                out.token_at(0, ControlToken::EndOfFrame);
            }
        }
        true
    }
}

/// An application input emitting `frame`-sized images pixel by pixel in
/// scan-line order, with automatic `EndOfLine`/`EndOfFrame` tokens (§II-C).
/// The scheduler paces firings according to the rate registered with
/// [`GraphBuilder::add_source`](bp_core::GraphBuilder::add_source).
pub fn frame_source(frame: Dim2, gen: PixelGen) -> KernelDef {
    let spec = KernelSpec::new("source")
        .with_role(NodeRole::Source)
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::source(
            "generate",
            vec!["out".into()],
            MethodCost::new(0, 0),
        ));
    KernelDef::new(spec, move || FrameSourceBehavior {
        frame,
        gen: Arc::clone(&gen),
        f: 0,
        x: 0,
        y: 0,
    })
}

/// Convenience: a frame source producing a deterministic synthetic pattern
/// (distinct per frame, pixel, and position) — useful for tests and
/// benchmarks in place of camera data.
pub fn pattern_source(frame: Dim2) -> KernelDef {
    frame_source(
        frame,
        Arc::new(|f, x, y| ((f as f64) * 1000.0 + (y as f64) * 10.0 + x as f64) % 256.0),
    )
}

struct ConstSourceBehavior {
    window: Window,
}

impl KernelBehavior for ConstSourceBehavior {
    fn fire(&mut self, _m: &str, _d: &FireData<'_>, out: &mut Emitter<'_>) {
        out.window("out", self.window.clone());
    }

    fn fire_fast(&mut self, _m: usize, _d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        out.window_at(0, self.window.clone());
        true
    }
}

/// A constant provider (role [`NodeRole::Const`]) emitting `window` once at
/// startup — used for convolution coefficients and histogram bin bounds.
/// The paper draws these as separate kernels ("5x5 Coeff", "Hist Bins")
/// whose outputs are replicated, not split, under parallelization.
pub fn const_source(kind: &str, window: Window) -> KernelDef {
    let dim = window.dim();
    let spec = KernelSpec::new(kind)
        .with_role(NodeRole::Const)
        .output(OutputSpec::block("out", dim))
        .method(MethodSpec::source(
            "provide",
            vec!["out".into()],
            MethodCost::new(0, 0),
        ));
    KernelDef::new(spec, move || ConstSourceBehavior {
        window: window.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::kernel::FireData;

    fn fire_once(def: &KernelDef, n: usize) -> Vec<Vec<(usize, Item)>> {
        let mut b = (def.factory)();
        let mut all = Vec::new();
        for _ in 0..n {
            let consumed: Vec<(usize, Item)> = Vec::new();
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("generate", &data, &mut out);
            all.push(out.into_items());
        }
        all
    }

    #[test]
    fn source_emits_tokens_at_line_and_frame_ends() {
        let def = pattern_source(Dim2::new(2, 2));
        let fires = fire_once(&def, 4);
        assert_eq!(fires[0].len(), 1); // pixel only
        assert_eq!(fires[1].len(), 2); // pixel + EOL
        assert_eq!(fires[3].len(), 3); // pixel + EOL + EOF
        assert!(matches!(
            fires[3][2].1,
            Item::Control(ControlToken::EndOfFrame)
        ));
    }

    #[test]
    fn source_pattern_varies_per_frame() {
        let def = pattern_source(Dim2::new(1, 1));
        let mut b = (def.factory)();
        let mut vals = Vec::new();
        for _ in 0..3 {
            let consumed: Vec<(usize, Item)> = Vec::new();
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("generate", &data, &mut out);
            let items = out.into_items();
            vals.push(items[0].1.window().unwrap().as_scalar());
        }
        assert_eq!(vals.len(), 3);
        assert_ne!(vals[0], vals[1]);
        assert_ne!(vals[1], vals[2]);
    }

    #[test]
    fn const_source_provides_its_window() {
        let w = Window::from_fn(Dim2::new(2, 2), |x, y| (x + y) as f64);
        let def = const_source("coeff", w.clone());
        let mut b = (def.factory)();
        let consumed: Vec<(usize, Item)> = Vec::new();
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("provide", &data, &mut out);
        let items = out.into_items();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].1.window().unwrap(), &w);
        assert_eq!(def.spec.role, NodeRole::Const);
    }
}
