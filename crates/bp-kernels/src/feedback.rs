//! Feedback-loop support (§III-D): a feedback kernel breaks cycles in the
//! application graph and provides the loop's initial values — it "outputs
//! the initial values once and then passes on its input values thereafter".

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::ControlToken;
use bp_core::{Dim2, Window};

struct FeedbackBehavior {
    frame: Dim2,
    initial: f64,
}

impl KernelBehavior for FeedbackBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "init" => {
                // Prime the loop with one full initial frame, in scan-line
                // order with the usual tokens.
                for _y in 0..self.frame.h {
                    for _x in 0..self.frame.w {
                        out.window("out", Window::scalar(self.initial));
                    }
                    out.token("out", ControlToken::EndOfLine);
                }
                out.token("out", ControlToken::EndOfFrame);
            }
            "pass" => {
                out.window("out", Window::scalar(d.window("in").as_scalar()));
            }
            other => panic!("feedback has no method '{other}'"),
        }
    }
}

/// A feedback kernel for frame-delay loops: primes the cycle with one
/// `frame`-sized image filled with `initial`, then forwards its input
/// stream unchanged (tokens pass through automatically). The data-flow
/// analysis ignores edges leaving feedback kernels, which is what makes
/// cyclic graphs analyzable (§III-D).
pub fn feedback_frame(frame: Dim2, initial: f64) -> KernelDef {
    let spec = KernelSpec::new("feedback")
        .with_role(NodeRole::Feedback)
        .with_shape(ShapeTransform::Transparent)
        // One window per sample, one EndOfLine per row, one EndOfFrame:
        // the loop population the capacity derivation must accommodate.
        .with_initial_tokens(frame.area() + frame.h as u64 + 1)
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::source(
            "init",
            vec!["out".into()],
            MethodCost::new(2, 0),
        ))
        .method(MethodSpec::on_data(
            "pass",
            "in",
            vec!["out".into()],
            MethodCost::new(1, 0),
        ))
        .with_state_words(2);
    KernelDef::new(spec, move || FeedbackBehavior { frame, initial })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    #[test]
    fn init_emits_one_full_frame() {
        let def = feedback_frame(Dim2::new(3, 2), 0.5);
        let mut b = (def.factory)();
        let consumed: Vec<(usize, Item)> = Vec::new();
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("init", &data, &mut out);
        let items = out.into_items();
        let pixels = items.iter().filter(|(_, i)| i.is_window()).count();
        let eols = items
            .iter()
            .filter(|(_, i)| matches!(i, Item::Control(ControlToken::EndOfLine)))
            .count();
        let eofs = items
            .iter()
            .filter(|(_, i)| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!((pixels, eols, eofs), (6, 2, 1));
        assert!(items[0].1.window().unwrap().as_scalar() == 0.5);
    }

    #[test]
    fn pass_forwards_data() {
        let def = feedback_frame(Dim2::new(2, 2), 0.0);
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(Window::scalar(3.25)))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("pass", &data, &mut out);
        let items = out.into_items();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].1.window().unwrap().as_scalar(), 3.25);
    }

    #[test]
    fn role_is_feedback() {
        assert_eq!(feedback_frame(Dim2::ONE, 0.0).spec.role, NodeRole::Feedback);
    }
}
