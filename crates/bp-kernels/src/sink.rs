//! Application outputs: sinks collecting the result stream for inspection.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::InputSpec;
use bp_core::token::{ControlToken, TokenKind};
use bp_core::Item;
use bp_core::Window;
use std::sync::{Arc, Mutex};

/// Shared handle to everything a sink received, in arrival order.
#[derive(Clone, Default)]
pub struct SinkHandle {
    items: Arc<Mutex<Vec<Item>>>,
}

impl SinkHandle {
    /// All received items (windows and tokens), in order.
    pub fn items(&self) -> Vec<Item> {
        self.items.lock().unwrap().clone()
    }

    /// All received data samples flattened, in order.
    pub fn samples(&self) -> Vec<f64> {
        self.items
            .lock()
            .unwrap()
            .iter()
            .filter_map(|i| i.window().map(|w| w.samples().to_vec()))
            .flatten()
            .collect()
    }

    /// Received samples grouped per frame (split at `EndOfFrame`).
    pub fn frames(&self) -> Vec<Vec<f64>> {
        let mut frames = Vec::new();
        let mut cur = Vec::new();
        for item in self.items.lock().unwrap().iter() {
            match item {
                Item::Window(w) => cur.extend_from_slice(w.samples()),
                Item::Control(ControlToken::EndOfFrame) => {
                    frames.push(std::mem::take(&mut cur));
                }
                Item::Control(_) => {}
            }
        }
        frames
    }

    /// Received samples grouped per frame and per row (split at `EndOfLine`
    /// within frames). Useful for reassembling images.
    pub fn frame_rows(&self) -> Vec<Vec<Vec<f64>>> {
        let mut frames = Vec::new();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut cur: Vec<f64> = Vec::new();
        for item in self.items.lock().unwrap().iter() {
            match item {
                Item::Window(w) => cur.extend_from_slice(w.samples()),
                Item::Control(ControlToken::EndOfLine) => {
                    rows.push(std::mem::take(&mut cur));
                }
                Item::Control(ControlToken::EndOfFrame) => {
                    if !cur.is_empty() {
                        rows.push(std::mem::take(&mut cur));
                    }
                    frames.push(std::mem::take(&mut rows));
                }
                Item::Control(ControlToken::Custom(_)) => {}
            }
        }
        frames
    }

    /// Received data windows grouped per frame and per window row (split at
    /// `EndOfLine` within frames) — for reassembling images from kernels
    /// that emit multi-row blocks.
    pub fn frame_window_rows(&self) -> Vec<Vec<Vec<Window>>> {
        let mut frames = Vec::new();
        let mut rows: Vec<Vec<Window>> = Vec::new();
        let mut cur: Vec<Window> = Vec::new();
        for item in self.items.lock().unwrap().iter() {
            match item {
                Item::Window(w) => cur.push(w.clone()),
                Item::Control(ControlToken::EndOfLine) => {
                    rows.push(std::mem::take(&mut cur));
                }
                Item::Control(ControlToken::EndOfFrame) => {
                    if !cur.is_empty() {
                        rows.push(std::mem::take(&mut cur));
                    }
                    frames.push(std::mem::take(&mut rows));
                }
                Item::Control(ControlToken::Custom(_)) => {}
            }
        }
        frames
    }

    /// Number of complete frames received.
    pub fn frame_count(&self) -> usize {
        self.items
            .lock()
            .unwrap()
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count()
    }

    /// Discard everything collected so far.
    pub fn clear(&self) {
        self.items.lock().unwrap().clear();
    }
}

struct SinkBehavior {
    handle: SinkHandle,
}

impl KernelBehavior for SinkBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, _out: &mut Emitter<'_>) {
        self.handle.items.lock().unwrap().push(d.item("in").clone());
    }

    fn fire_fast(&mut self, _m: usize, d: &FireData<'_>, _out: &mut Emitter<'_>) -> bool {
        self.handle.items.lock().unwrap().push(d.item_at(0).clone());
        true
    }
}

/// An application output: collects every arriving item (data and tokens)
/// into the returned [`SinkHandle`]. Sinks accept any grain and are never
/// parallelized or buffered by the compiler.
pub fn sink() -> (KernelDef, SinkHandle) {
    let handle = SinkHandle::default();
    let h2 = handle.clone();
    let spec = KernelSpec::new("sink")
        .with_role(NodeRole::Sink)
        .with_parallelism(bp_core::Parallelism::Serial)
        .input(InputSpec::stream("in"))
        .method(MethodSpec::on_data(
            "take",
            "in",
            vec![],
            MethodCost::new(0, 0),
        ))
        .method(MethodSpec::on_token(
            "takeEol",
            "in",
            TokenKind::EndOfLine,
            vec![],
            MethodCost::new(0, 0),
        ))
        .method(MethodSpec::on_token(
            "takeEof",
            "in",
            TokenKind::EndOfFrame,
            vec![],
            MethodCost::new(0, 0),
        ));
    let def = KernelDef::new(spec, move || SinkBehavior { handle: h2.clone() });
    (def, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Dim2, Window};

    fn feed(def: &KernelDef, items: Vec<Item>) {
        let mut b = (def.factory)();
        for item in items {
            let method = match &item {
                Item::Window(_) => "take",
                Item::Control(ControlToken::EndOfLine) => "takeEol",
                Item::Control(ControlToken::EndOfFrame) => "takeEof",
                Item::Control(ControlToken::Custom(_)) => continue,
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire(method, &data, &mut out);
        }
    }

    #[test]
    fn handle_groups_frames_and_rows() {
        let (def, handle) = sink();
        feed(
            &def,
            vec![
                Item::Window(Window::scalar(1.0)),
                Item::Window(Window::scalar(2.0)),
                Item::Control(ControlToken::EndOfLine),
                Item::Window(Window::scalar(3.0)),
                Item::Window(Window::scalar(4.0)),
                Item::Control(ControlToken::EndOfLine),
                Item::Control(ControlToken::EndOfFrame),
                Item::Window(Window::scalar(9.0)),
                Item::Control(ControlToken::EndOfFrame),
            ],
        );
        assert_eq!(handle.samples(), vec![1.0, 2.0, 3.0, 4.0, 9.0]);
        assert_eq!(handle.frames(), vec![vec![1.0, 2.0, 3.0, 4.0], vec![9.0]]);
        let rows = handle.frame_rows();
        assert_eq!(rows[0], vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(rows[1], vec![vec![9.0]]);
        assert_eq!(handle.frame_count(), 2);
        handle.clear();
        assert!(handle.items().is_empty());
    }

    #[test]
    fn multi_sample_windows_flatten_in_order() {
        let (def, handle) = sink();
        let w = Window::from_fn(Dim2::new(2, 1), |x, _| x as f64 + 10.0);
        feed(
            &def,
            vec![Item::Window(w), Item::Control(ControlToken::EndOfFrame)],
        );
        assert_eq!(handle.frames(), vec![vec![10.0, 11.0]]);
    }
}
