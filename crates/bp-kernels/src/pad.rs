//! Padding kernel (§III-C): enlarges a stream by zero or mirrored margins —
//! the alternative to trimming when aligning differently-haloed inputs. The
//! choice between padding and trimming is the programmer's (it changes the
//! result); the mechanics are the compiler's.

use crate::inset::Margins;
use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::{Dim2, Window};
use std::collections::VecDeque;

/// Padding fill policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PadMode {
    /// Fill margins with zeros.
    Zero,
    /// Mirror samples about the data edge (symmetric reflection).
    Mirror,
}

struct PadBehavior {
    m: Margins,
    mode: PadMode,
    data: Dim2,
    /// Current row being assembled (mirror mode) or current x (zero mode).
    cur: Vec<f64>,
    x: u32,
    y: u32,
    /// Mirror mode: rows held back until the top margin can be emitted.
    held: Vec<Vec<f64>>,
    /// Mirror mode: rolling window of the last `bottom` rows.
    tail: VecDeque<Vec<f64>>,
}

impl PadBehavior {
    fn out_width(&self) -> u32 {
        self.data.w + self.m.left + self.m.right
    }

    fn emit_zero_row(&self, out: &mut Emitter<'_>) {
        for _ in 0..self.out_width() {
            out.window("out", Window::scalar(0.0));
        }
        out.token("out", ControlToken::EndOfLine);
    }

    /// Mirror-pad one full data row and emit it with an EOL.
    fn emit_padded_row(&self, row: &[f64], out: &mut Emitter<'_>) {
        let w = self.data.w as usize;
        for j in 0..self.m.left as usize {
            // Position -(left - j) reflects to row[left - 1 - j].
            out.window("out", Window::scalar(row[self.m.left as usize - 1 - j]));
        }
        for &v in row {
            out.window("out", Window::scalar(v));
        }
        for j in 0..self.m.right as usize {
            out.window("out", Window::scalar(row[w - 1 - j]));
        }
        out.token("out", ControlToken::EndOfLine);
    }

    fn remember_tail(&mut self, row: Vec<f64>) {
        if self.m.bottom == 0 {
            return;
        }
        self.tail.push_back(row);
        while self.tail.len() > self.m.bottom as usize {
            self.tail.pop_front();
        }
    }

    fn reset(&mut self) {
        self.cur.clear();
        self.x = 0;
        self.y = 0;
        self.held.clear();
        self.tail.clear();
    }
}

impl KernelBehavior for PadBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match (method, self.mode) {
            ("push", PadMode::Zero) => {
                if self.x == 0 && self.y == 0 {
                    for _ in 0..self.m.top {
                        self.emit_zero_row(out);
                    }
                }
                if self.x == 0 {
                    for _ in 0..self.m.left {
                        out.window("out", Window::scalar(0.0));
                    }
                }
                out.window("out", Window::scalar(d.window("in").as_scalar()));
                self.x += 1;
            }
            ("eol", PadMode::Zero) => {
                for _ in 0..self.m.right {
                    out.window("out", Window::scalar(0.0));
                }
                out.token("out", ControlToken::EndOfLine);
                self.x = 0;
                self.y += 1;
            }
            ("eof", PadMode::Zero) => {
                for _ in 0..self.m.bottom {
                    self.emit_zero_row(out);
                }
                out.token("out", ControlToken::EndOfFrame);
                self.reset();
            }
            ("push", PadMode::Mirror) => {
                self.cur.push(d.window("in").as_scalar());
            }
            ("eol", PadMode::Mirror) => {
                let row = std::mem::take(&mut self.cur);
                let t = self.m.top as usize;
                if (self.y as usize) < t {
                    self.held.push(row);
                    if self.held.len() == t {
                        // Top margin: reflection of rows t-1 .. 0, then the
                        // held rows in order.
                        for i in (0..t).rev() {
                            self.emit_padded_row(&self.held[i].clone(), out);
                        }
                        let held = std::mem::take(&mut self.held);
                        for row in held {
                            self.emit_padded_row(&row, out);
                            self.remember_tail(row);
                        }
                    }
                } else {
                    self.emit_padded_row(&row, out);
                    self.remember_tail(row);
                }
                self.y += 1;
            }
            ("eof", PadMode::Mirror) => {
                // Degenerate frames shorter than the top margin flush as-is.
                if !self.held.is_empty() {
                    let held = std::mem::take(&mut self.held);
                    for row in held {
                        self.emit_padded_row(&row, out);
                        self.remember_tail(row);
                    }
                }
                let tail: Vec<Vec<f64>> = self.tail.iter().cloned().collect();
                for i in 0..self.m.bottom as usize {
                    // Position H+i reflects to row[H-1-i] = tail from the end.
                    if let Some(row) = tail.len().checked_sub(1 + i).and_then(|j| tail.get(j)) {
                        self.emit_padded_row(row, out);
                    }
                }
                out.token("out", ControlToken::EndOfFrame);
                self.reset();
            }
            (other, _) => panic!("pad has no method '{other}'"),
        }
    }

    // Spec order: 0 = push, 1 = eol, 2 = eof. Only the per-pixel zero-mode
    // and mirror-mode `push` paths are specialized; row/frame-rate methods
    // fall back to the name dispatch.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        if method != 0 {
            return false;
        }
        match self.mode {
            PadMode::Zero => {
                if self.x == 0 && self.y == 0 {
                    for _ in 0..self.m.top {
                        self.emit_zero_row(out);
                    }
                }
                if self.x == 0 {
                    for _ in 0..self.m.left {
                        out.window_at(0, Window::scalar(0.0));
                    }
                }
                out.window_at(0, Window::scalar(d.window_at(0).as_scalar()));
                self.x += 1;
            }
            PadMode::Mirror => {
                self.cur.push(d.window_at(0).as_scalar());
            }
        }
        true
    }
}

/// A padding kernel adding `margins` around a logical `data`-sized stream
/// with the given fill policy.
pub fn pad(margins: Margins, mode: PadMode, data: Dim2) -> KernelDef {
    if mode == PadMode::Mirror {
        assert!(
            margins.left <= data.w
                && margins.right <= data.w
                && margins.top <= data.h
                && margins.bottom <= data.h,
            "mirror padding cannot exceed the data size"
        );
    }
    let kind = match mode {
        PadMode::Zero => "pad_zero",
        PadMode::Mirror => "pad_mirror",
    };
    let spec = KernelSpec::new(kind)
        .with_role(NodeRole::Pad)
        .with_shape(ShapeTransform::Pad {
            left: margins.left,
            right: margins.right,
            top: margins.top,
            bottom: margins.bottom,
        })
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "push",
            "in",
            vec!["out".into()],
            MethodCost::new(2, 0),
        ))
        .method(MethodSpec::on_token(
            "eol",
            "in",
            TokenKind::EndOfLine,
            vec!["out".into()],
            MethodCost::new(2, 0),
        ))
        .method(MethodSpec::on_token(
            "eof",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(2, 0),
        ))
        .with_state_words(match mode {
            PadMode::Zero => 4,
            PadMode::Mirror => (margins.top.max(margins.bottom).max(1) as u64 + 1) * data.w as u64,
        });
    KernelDef::new(spec, move || PadBehavior {
        m: margins,
        mode,
        data,
        cur: Vec::new(),
        x: 0,
        y: 0,
        held: Vec::new(),
        tail: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn drive(def: &KernelDef, items: Vec<Item>) -> Vec<Item> {
        let mut b = (def.factory)();
        let mut got = Vec::new();
        for item in items {
            let method = match &item {
                Item::Window(_) => "push",
                Item::Control(ControlToken::EndOfLine) => "eol",
                Item::Control(ControlToken::EndOfFrame) => "eof",
                Item::Control(ControlToken::Custom(_)) => continue,
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire(method, &data, &mut out);
            got.extend(out.into_items().into_iter().map(|(_, i)| i));
        }
        got
    }

    fn stream(w: u32, h: u32) -> Vec<Item> {
        let mut v = Vec::new();
        for y in 0..h {
            for x in 0..w {
                v.push(Item::Window(Window::scalar((y * w + x + 1) as f64)));
            }
            v.push(Item::Control(ControlToken::EndOfLine));
        }
        v.push(Item::Control(ControlToken::EndOfFrame));
        v
    }

    fn rows(items: &[Item]) -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        let mut cur = Vec::new();
        for i in items {
            match i {
                Item::Window(w) => cur.push(w.as_scalar()),
                Item::Control(ControlToken::EndOfLine) => rows.push(std::mem::take(&mut cur)),
                _ => {}
            }
        }
        rows
    }

    #[test]
    fn zero_pad_surrounds_with_zeros() {
        let def = pad(Margins::uniform(1), PadMode::Zero, Dim2::new(2, 2));
        let got = drive(&def, stream(2, 2));
        let r = rows(&got);
        assert_eq!(
            r,
            vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 1.0, 2.0, 0.0],
                vec![0.0, 3.0, 4.0, 0.0],
                vec![0.0, 0.0, 0.0, 0.0],
            ]
        );
    }

    #[test]
    fn mirror_pad_reflects_edges() {
        let def = pad(Margins::uniform(1), PadMode::Mirror, Dim2::new(2, 2));
        let got = drive(&def, stream(2, 2));
        let r = rows(&got);
        // Data:   1 2      Mirrored:  1 1 2 2
        //         3 4                 1 1 2 2
        //                             3 3 4 4
        //                             3 3 4 4
        assert_eq!(
            r,
            vec![
                vec![1.0, 1.0, 2.0, 2.0],
                vec![1.0, 1.0, 2.0, 2.0],
                vec![3.0, 3.0, 4.0, 4.0],
                vec![3.0, 3.0, 4.0, 4.0],
            ]
        );
    }

    #[test]
    fn zero_pad_multiframe_resets() {
        let def = pad(
            Margins {
                left: 0,
                right: 1,
                top: 1,
                bottom: 0,
            },
            PadMode::Zero,
            Dim2::new(2, 1),
        );
        let mut items = stream(2, 1);
        items.extend(stream(2, 1));
        let got = drive(&def, items);
        let r = rows(&got);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], vec![0.0, 0.0, 0.0]);
        assert_eq!(r[1], vec![1.0, 2.0, 0.0]);
        assert_eq!(r[2], vec![0.0, 0.0, 0.0]);
        assert_eq!(r[3], vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn shape_transform_records_margins() {
        let def = pad(Margins::uniform(2), PadMode::Zero, Dim2::new(8, 8));
        assert_eq!(
            def.spec.shape,
            ShapeTransform::Pad {
                left: 2,
                right: 2,
                top: 2,
                bottom: 2
            }
        );
    }
}
