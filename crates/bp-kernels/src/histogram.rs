//! Histogram kernels (Fig. 7): per-pixel counting with an end-of-frame
//! control-token handler that flushes the bins, plus the serial merge
//! kernel used to combine partial histograms after parallelization.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, Parallelism};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::{Dim2, Window};

struct HistogramBehavior {
    bin_uppers: Vec<f64>,
    counts: Vec<u64>,
}

impl HistogramBehavior {
    fn find_bin(&self, v: f64) -> usize {
        // Linear scan, as in the paper's code ("on average we search half
        // way, so the run time is ~bins/2"). The last bin is open-ended.
        for (i, upper) in self.bin_uppers.iter().enumerate() {
            if v < *upper {
                return i;
            }
        }
        self.bin_uppers.len() - 1
    }

    /// Flush the frame's counts into a block window and reset them.
    fn flush(&mut self) -> Window {
        let n = self.counts.len() as u32;
        let w = Window::from_fn(Dim2::new(n, 1), |x, _| self.counts[x as usize] as f64);
        for c in self.counts.iter_mut() {
            *c = 0;
        }
        w
    }
}

impl KernelBehavior for HistogramBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "count" => {
                let v = d.window("in").as_scalar();
                let bin = self.find_bin(v);
                self.counts[bin] += 1;
            }
            "finishCount" => {
                // Flush the frame's counts and reset; emit the counts block
                // followed by an explicit end-of-frame so downstream
                // per-frame kernels (the merge) stay frame-aligned however
                // many parallel instances exist.
                let w = self.flush();
                out.window("out", w);
                out.token("out", ControlToken::EndOfFrame);
            }
            "configureBins" => {
                let w = d.window("bins");
                self.bin_uppers = w.samples().to_vec();
                for c in self.counts.iter_mut() {
                    *c = 0;
                }
            }
            "ignoreEol" => {}
            other => panic!("histogram has no method '{other}'"),
        }
    }

    // Spec order: 0 = count, 1 = finishCount, 2 = ignoreEol,
    // 3 = configureBins.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let v = d.window_at(0).as_scalar();
                let bin = self.find_bin(v);
                self.counts[bin] += 1;
            }
            1 => {
                let w = self.flush();
                out.window_at(0, w);
                out.token_at(0, ControlToken::EndOfFrame);
            }
            2 => {}
            3 => {
                self.bin_uppers = d.window_at(1).samples().to_vec();
                for c in self.counts.iter_mut() {
                    *c = 0;
                }
            }
            _ => return false,
        }
        true
    }

    fn ready(&self, method: &str) -> bool {
        // Counting requires configured bin bounds.
        !matches!(method, "count" | "finishCount") || !self.bin_uppers.is_empty()
    }

    fn ready_fast(&self, method: usize) -> Option<bool> {
        Some(!matches!(method, 0 | 1) || !self.bin_uppers.is_empty())
    }
}

/// A `bins`-bin histogram kernel (Fig. 7 of the paper):
/// - `count` fires per data sample on `in` (`bins/2 + 5` cycles),
/// - `finishCount` fires on the `EndOfFrame` token (`3·bins + 3` cycles),
///   emitting the counts block and resetting,
/// - `configureBins` fires when bin upper bounds arrive on the replicated
///   `bins` input,
/// - end-of-line tokens are explicitly ignored.
pub fn histogram(bins: u32) -> KernelDef {
    let b = bins as u64;
    let spec = KernelSpec::new("histogram")
        .input(InputSpec::stream("in"))
        .input(InputSpec::block("bins", Dim2::new(bins, 1)).replicated())
        .output(OutputSpec::block("out", Dim2::new(bins, 1)))
        .method(MethodSpec::on_data(
            "count",
            "in",
            vec![],
            MethodCost::new(b / 2 + 5, 4),
        ))
        .method(MethodSpec::on_token(
            "finishCount",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(3 * b + 3, b),
        ))
        .method(MethodSpec::on_token(
            "ignoreEol",
            "in",
            TokenKind::EndOfLine,
            vec![],
            MethodCost::new(1, 0),
        ))
        .method(MethodSpec::on_data(
            "configureBins",
            "bins",
            vec![],
            MethodCost::new(2 * b + 3, b),
        ))
        .with_state_words(2 * b);
    KernelDef::new(spec, move || HistogramBehavior {
        bin_uppers: Vec::new(),
        counts: vec![0; bins as usize],
    })
}

/// Evenly spaced bin upper bounds over `[lo, hi)` for a `bins`-bin
/// histogram, as a coefficient window for the `bins` input.
pub fn uniform_bins(bins: u32, lo: f64, hi: f64) -> Window {
    let step = (hi - lo) / bins as f64;
    Window::from_fn(Dim2::new(bins, 1), |x, _| lo + step * (x + 1) as f64)
}

struct MergeBehavior {
    acc: Vec<f64>,
}

impl KernelBehavior for MergeBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "accumulate" => {
                let w = d.window("in");
                if self.acc.len() != w.samples().len() {
                    self.acc = vec![0.0; w.samples().len()];
                }
                for (a, s) in self.acc.iter_mut().zip(w.samples()) {
                    *a += *s;
                }
            }
            "emit" => {
                let n = self.acc.len() as u32;
                let w = Window::from_fn(Dim2::new(n.max(1), 1), |x, _| {
                    self.acc.get(x as usize).copied().unwrap_or(0.0)
                });
                for a in self.acc.iter_mut() {
                    *a = 0.0;
                }
                out.window("out", w);
                out.token("out", ControlToken::EndOfFrame);
            }
            other => panic!("merge has no method '{other}'"),
        }
    }

    // Spec order: 0 = accumulate, 1 = emit.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let w = d.window_at(0);
                if self.acc.len() != w.samples().len() {
                    self.acc = vec![0.0; w.samples().len()];
                }
                for (a, s) in self.acc.iter_mut().zip(w.samples()) {
                    *a += *s;
                }
            }
            1 => {
                let n = self.acc.len() as u32;
                let w = Window::from_fn(Dim2::new(n.max(1), 1), |x, _| {
                    self.acc.get(x as usize).copied().unwrap_or(0.0)
                });
                for a in self.acc.iter_mut() {
                    *a = 0.0;
                }
                out.window_at(0, w);
                out.token_at(0, ControlToken::EndOfFrame);
            }
            _ => return false,
        }
        true
    }
}

/// The serial histogram merge (Fig. 1(b)): accumulates partial-count blocks
/// and emits the combined histogram once per frame, on the end-of-frame
/// token. Marked [`Parallelism::Serial`]; the application additionally adds
/// a data-dependency edge from the input so the compiler never replicates
/// it (§IV-B).
pub fn histogram_merge(bins: u32) -> KernelDef {
    let b = bins as u64;
    let size = Dim2::new(bins, 1);
    let spec = KernelSpec::new("merge")
        .with_parallelism(Parallelism::Serial)
        .input(InputSpec::block("in", size))
        .output(OutputSpec::block("out", size))
        .method(MethodSpec::on_data(
            "accumulate",
            "in",
            vec![],
            MethodCost::new(b + 3, b),
        ))
        .method(MethodSpec::on_token(
            "emit",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(b + 3, b),
        ))
        .with_state_words(b);
    KernelDef::new(spec, move || MergeBehavior {
        acc: vec![0.0; bins as usize],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn fire(
        def: &KernelDef,
        b: &mut Box<dyn KernelBehavior>,
        method: &str,
        port: usize,
        item: Item,
    ) -> Vec<(usize, Item)> {
        let consumed = vec![(port, item)];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire(method, &data, &mut out);
        out.into_items()
    }

    #[test]
    fn counts_then_flushes_on_eof() {
        let def = histogram(4);
        let mut b = (def.factory)();
        assert!(!b.ready("count"), "bins must be configured first");
        fire(
            &def,
            &mut b,
            "configureBins",
            1,
            Item::Window(uniform_bins(4, 0.0, 4.0)),
        );
        assert!(b.ready("count"));
        for v in [0.5, 1.5, 1.7, 3.2, 9.9] {
            fire(&def, &mut b, "count", 0, Item::Window(Window::scalar(v)));
        }
        let out = fire(
            &def,
            &mut b,
            "finishCount",
            0,
            Item::Control(ControlToken::EndOfFrame),
        );
        assert_eq!(out.len(), 2);
        let counts = out[0].1.window().unwrap();
        assert_eq!(counts.samples(), &[1.0, 2.0, 0.0, 2.0]); // 9.9 lands in last bin
        assert!(matches!(out[1].1, Item::Control(ControlToken::EndOfFrame)));

        // Counts reset for the next frame.
        let out2 = fire(
            &def,
            &mut b,
            "finishCount",
            0,
            Item::Control(ControlToken::EndOfFrame),
        );
        assert_eq!(out2[0].1.window().unwrap().samples(), &[0.0; 4]);
    }

    #[test]
    fn merge_sums_partials_per_frame() {
        let def = histogram_merge(3);
        let mut b = (def.factory)();
        let p1 = Window::from_vec(Dim2::new(3, 1), vec![1.0, 0.0, 2.0]);
        let p2 = Window::from_vec(Dim2::new(3, 1), vec![0.0, 5.0, 1.0]);
        fire(&def, &mut b, "accumulate", 0, Item::Window(p1));
        fire(&def, &mut b, "accumulate", 0, Item::Window(p2));
        let out = fire(
            &def,
            &mut b,
            "emit",
            0,
            Item::Control(ControlToken::EndOfFrame),
        );
        assert_eq!(out[0].1.window().unwrap().samples(), &[1.0, 5.0, 3.0]);
        // and resets
        let out2 = fire(
            &def,
            &mut b,
            "emit",
            0,
            Item::Control(ControlToken::EndOfFrame),
        );
        assert_eq!(out2[0].1.window().unwrap().samples(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn uniform_bins_are_monotonic() {
        let w = uniform_bins(8, 0.0, 256.0);
        let s = w.samples();
        for i in 1..s.len() {
            assert!(s[i] > s[i - 1]);
        }
        assert_eq!(s[7], 256.0);
    }

    #[test]
    fn merge_is_serial() {
        assert_eq!(histogram_merge(4).spec.parallelism, Parallelism::Serial);
    }
}
