//! Replicate kernel (§IV-A): fan-out copy inserted for *replicated* inputs
//! (dashed edges) — coefficient-style data that every parallel replica must
//! receive in full rather than a round-robin share.

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, Parallelism, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::Dim2;

struct ReplicateBehavior {
    k: usize,
}

impl KernelBehavior for ReplicateBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        for i in 0..self.k {
            out.window(&format!("out{i}"), w.clone());
        }
    }

    // Single method `copy`; output `out{i}` is output index `i`.
    fn fire_fast(&mut self, _m: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        let w = d.window_at(0);
        for i in 0..self.k {
            out.window_at(i, w.clone());
        }
        true
    }
}

/// Copy each incoming block (of the given grain) to all `k` outputs.
/// Unhandled control tokens are automatically forwarded to every output by
/// the runtime's pass-through rule, so token streams replicate too.
pub fn replicate(k: usize, grain: Dim2) -> KernelDef {
    assert!(k >= 1);
    let outs: Vec<String> = (0..k).map(|i| format!("out{i}")).collect();
    let mut spec = KernelSpec::new("replicate")
        .with_role(NodeRole::Replicate)
        .with_parallelism(Parallelism::Serial)
        .with_shape(ShapeTransform::Transparent)
        .input(InputSpec::block("in", grain));
    for o in &outs {
        spec = spec.output(OutputSpec::block(o.clone(), grain));
    }
    let spec = spec.method(MethodSpec::on_data(
        "copy",
        "in",
        outs,
        MethodCost::new(1, 0),
    ));
    KernelDef::new(spec, move || ReplicateBehavior { k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Item, Window};

    #[test]
    fn copies_to_every_output() {
        let def = replicate(3, Dim2::new(2, 1));
        let mut b = (def.factory)();
        let w = Window::from_vec(Dim2::new(2, 1), vec![4.0, 5.0]);
        let consumed = vec![(0usize, Item::Window(w.clone()))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("copy", &data, &mut out);
        let items = out.into_items();
        assert_eq!(items.len(), 3);
        for (i, (port, item)) in items.iter().enumerate() {
            assert_eq!(*port, i);
            assert_eq!(item.window().unwrap(), &w);
        }
    }

    #[test]
    fn spec_shape_is_transparent() {
        let def = replicate(2, Dim2::ONE);
        assert_eq!(def.spec.shape, ShapeTransform::Transparent);
        assert_eq!(def.spec.role, NodeRole::Replicate);
    }
}
