//! One-dimensional signal kernels: FIR filtering and decimation over
//! `N`×1 windows. The block-parallel parameterization handles 1-D streams
//! as height-1 images, "without inhibiting one-dimensional signal handling"
//! (§II-A) — these kernels exercise that path for radio-style pipelines.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Step2, Window};

struct FirBehavior {
    taps: Option<Vec<f64>>,
}

impl KernelBehavior for FirBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "runFir" => {
                let w = d.window("in");
                let taps = self.taps.as_ref().expect("taps loaded before data");
                let acc: f64 = w
                    .samples()
                    .iter()
                    .zip(taps.iter().rev())
                    .map(|(x, t)| x * t)
                    .sum();
                out.window("out", Window::scalar(acc));
            }
            "loadTaps" => {
                self.taps = Some(d.window("taps").samples().to_vec());
            }
            other => panic!("fir has no method '{other}'"),
        }
    }

    fn ready(&self, method: &str) -> bool {
        method != "runFir" || self.taps.is_some()
    }
}

/// An `n`-tap FIR filter over a 1-D stream (window `n`×1, unit step). Taps
/// arrive on a replicated `taps` input, reloadable at run time like the
/// convolution's coefficients.
pub fn fir(n: u32) -> KernelDef {
    assert!(n >= 1);
    let spec = KernelSpec::new("fir")
        .input(InputSpec::windowed("in", Dim2::new(n, 1), Step2::ONE))
        .input(InputSpec::block("taps", Dim2::new(n, 1)).replicated())
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "runFir",
            "in",
            vec!["out".into()],
            MethodCost::new(6 + 2 * n as u64, n as u64),
        ))
        .method(MethodSpec::on_data(
            "loadTaps",
            "taps",
            vec![],
            MethodCost::new(4 + n as u64, n as u64),
        ))
        .with_state_words(n as u64);
    KernelDef::new(spec, || FirBehavior { taps: None })
}

/// Normalized moving-average taps for an `n`-tap FIR.
pub fn boxcar_taps(n: u32) -> Window {
    Window::filled(Dim2::new(n, 1), 1.0 / n as f64)
}

/// Simple half-band-ish low-pass taps (binomial weights) for an `n`-tap FIR.
pub fn lowpass_taps(n: u32) -> Window {
    let mut row = vec![1.0f64];
    for _ in 1..n {
        let mut next = vec![1.0];
        for i in 1..row.len() {
            next.push(row[i - 1] + row[i]);
        }
        next.push(1.0);
        row = next;
    }
    let sum: f64 = row.iter().sum();
    Window::from_vec(Dim2::new(n, 1), row.into_iter().map(|v| v / sum).collect())
}

struct DecimateBehavior;

impl KernelBehavior for DecimateBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        // Keep the first sample of each block.
        out.window("out", Window::scalar(d.window("in").get(0, 0)));
    }
}

/// Decimation by `m`: consumes `m`×1 blocks (step == size) and keeps the
/// first sample of each.
pub fn decimate(m: u32) -> KernelDef {
    assert!(m >= 1);
    let spec = KernelSpec::new("decimate")
        .input(InputSpec::block("in", Dim2::new(m, 1)))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "run",
            "in",
            vec!["out".into()],
            MethodCost::new(3, 1),
        ));
    KernelDef::new(spec, || DecimateBehavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    #[test]
    fn fir_computes_dot_product_with_reversed_taps() {
        let def = fir(3);
        let mut b = (def.factory)();
        assert!(!b.ready("runFir"));
        let consumed = vec![(
            1usize,
            Item::Window(Window::from_vec(Dim2::new(3, 1), vec![1.0, 2.0, 3.0])),
        )];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("loadTaps", &data, &mut out);
        assert!(b.ready("runFir"));

        let consumed = vec![(
            0usize,
            Item::Window(Window::from_vec(Dim2::new(3, 1), vec![10.0, 20.0, 30.0])),
        )];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("runFir", &data, &mut out);
        // Convolution form: newest sample (30) multiplies tap[0] = 1.
        let got = out.into_items()[0].1.window().unwrap().as_scalar();
        assert_eq!(got, 10.0 * 3.0 + 20.0 * 2.0 + 30.0 * 1.0);
    }

    #[test]
    fn boxcar_averages() {
        let def = fir(4);
        let mut b = (def.factory)();
        let consumed = vec![(1usize, Item::Window(boxcar_taps(4)))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("loadTaps", &data, &mut out);
        let consumed = vec![(
            0usize,
            Item::Window(Window::from_vec(Dim2::new(4, 1), vec![1.0, 2.0, 3.0, 4.0])),
        )];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("runFir", &data, &mut out);
        assert_eq!(out.into_items()[0].1.window().unwrap().as_scalar(), 2.5);
    }

    #[test]
    fn lowpass_taps_normalize() {
        let t = lowpass_taps(5);
        let sum: f64 = t.samples().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(t.samples().len(), 5);
        // Symmetric binomial shape.
        assert_eq!(t.get(0, 0), t.get(4, 0));
        assert!(t.get(2, 0) > t.get(0, 0));
    }

    #[test]
    fn decimate_keeps_block_heads() {
        let def = decimate(3);
        let mut b = (def.factory)();
        let consumed = vec![(
            0usize,
            Item::Window(Window::from_vec(Dim2::new(3, 1), vec![7.0, 8.0, 9.0])),
        )];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("run", &data, &mut out);
        assert_eq!(out.into_items()[0].1.window().unwrap().as_scalar(), 7.0);
    }
}
