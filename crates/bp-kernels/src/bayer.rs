//! Bayer demosaicing kernel — benchmark 1 of the paper's evaluation
//! (Fig. 13). Bilinear interpolation over an RGGB color filter array,
//! producing three outputs (R, G, B planes) from one input — a natural use
//! of the model's multiple outputs per kernel.
//!
//! The kernel processes a 2×2 CFA *quad* per iteration using a 4×4 window
//! advancing by (2,2). Because the step matches the CFA period, every
//! iteration sees the same phase pattern, making the kernel stateless and
//! therefore safely data-parallel under round-robin replication — a
//! position-*tracking* formulation (3×3 window, unit step) would carry
//! order-dependent state and would have to be declared serial.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Offset2, Step2, Window};

struct BayerBehavior;

/// Interpolate one site. `wx, wy` are the sample's coordinates inside the
/// 4×4 window (1 or 2); global parity equals window parity because the
/// window origin is always even.
fn site(w: &Window, wx: u32, wy: u32) -> (f64, f64, f64) {
    let c = w.get(wx, wy);
    let edges =
        (w.get(wx - 1, wy) + w.get(wx + 1, wy) + w.get(wx, wy - 1) + w.get(wx, wy + 1)) / 4.0;
    let corners = (w.get(wx - 1, wy - 1)
        + w.get(wx + 1, wy - 1)
        + w.get(wx - 1, wy + 1)
        + w.get(wx + 1, wy + 1))
        / 4.0;
    let horiz = (w.get(wx - 1, wy) + w.get(wx + 1, wy)) / 2.0;
    let vert = (w.get(wx, wy - 1) + w.get(wx, wy + 1)) / 2.0;
    match (wx % 2, wy % 2) {
        (0, 0) => (c, edges, corners), // red site (RGGB)
        (1, 0) => (horiz, c, vert),    // green on red row
        (0, 1) => (vert, c, horiz),    // green on blue row
        _ => (corners, edges, c),      // blue site
    }
}

impl KernelBehavior for BayerBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        let dim = Dim2::new(2, 2);
        let mut r = Window::zeros(dim);
        let mut g = Window::zeros(dim);
        let mut b = Window::zeros(dim);
        for qy in 0..2 {
            for qx in 0..2 {
                let (rv, gv, bv) = site(w, qx + 1, qy + 1);
                r.set(qx, qy, rv);
                g.set(qx, qy, gv);
                b.set(qx, qy, bv);
            }
        }
        out.window("r", r);
        out.window("g", g);
        out.window("b", b);
    }
}

/// Bilinear RGGB demosaic: 4×4 window, step (2,2), producing 2×2 blocks on
/// each of the `r`, `g`, `b` outputs. Control tokens pass through
/// automatically.
pub fn bayer_demosaic() -> KernelDef {
    let spec = KernelSpec::new("bayer")
        .input(
            InputSpec::windowed("in", Dim2::new(4, 4), Step2::new(2, 2))
                .with_offset(Offset2::new(1.0, 1.0)),
        )
        .output(OutputSpec::block("r", Dim2::new(2, 2)))
        .output(OutputSpec::block("g", Dim2::new(2, 2)))
        .output(OutputSpec::block("b", Dim2::new(2, 2)))
        .method(MethodSpec::on_data(
            "demosaic",
            "in",
            vec!["r".into(), "g".into(), "b".into()],
            MethodCost::new(120, 16),
        ));
    KernelDef::new(spec, || BayerBehavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn fire_window(def: &KernelDef, w: Window) -> Vec<(usize, Item)> {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(w))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("demosaic", &data, &mut out);
        out.into_items()
    }

    #[test]
    fn emits_one_quad_per_plane() {
        let def = bayer_demosaic();
        let items = fire_window(&def, Window::filled(Dim2::new(4, 4), 3.0));
        assert_eq!(items.len(), 3);
        for (_, item) in &items {
            let w = item.window().unwrap();
            assert_eq!(w.dim(), Dim2::new(2, 2));
        }
    }

    #[test]
    fn gray_world_stays_gray() {
        // On a constant CFA, every site reproduces the constant in all
        // three channels.
        let def = bayer_demosaic();
        let items = fire_window(&def, Window::filled(Dim2::new(4, 4), 7.5));
        for (_, item) in items {
            for &v in item.window().unwrap().samples() {
                assert_eq!(v, 7.5);
            }
        }
    }

    #[test]
    fn quad_sites_follow_rggb() {
        // Window valued y*10 + x (linear): bilinear interpolation of a
        // linear image reproduces the center value at every site.
        let def = bayer_demosaic();
        let w = Window::from_fn(Dim2::new(4, 4), |x, y| (y * 10 + x) as f64);
        let items = fire_window(&def, w);
        for (_, item) in items {
            let q = item.window().unwrap();
            assert_eq!(q.get(0, 0), 11.0);
            assert_eq!(q.get(1, 0), 12.0);
            assert_eq!(q.get(0, 1), 21.0);
            assert_eq!(q.get(1, 1), 22.0);
        }
    }

    #[test]
    fn spec_is_quad_parameterized() {
        let def = bayer_demosaic();
        let i = &def.spec.inputs[0];
        assert_eq!(i.size, Dim2::new(4, 4));
        assert_eq!(i.step, Step2::new(2, 2));
        assert_eq!(i.offset, Offset2::new(1.0, 1.0));
        assert_eq!(def.spec.outputs.len(), 3);
    }
}
