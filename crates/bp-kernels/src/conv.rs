//! Windowed 2-D convolution — the paper's flagship example kernel (Fig. 6).
//!
//! Two methods share private state: `runConvolve` executes when a data
//! window arrives on `in`, `loadCoeff` when a coefficient block arrives on
//! the *replicated* input `coeff`. Reloading the coefficients at run time
//! switches the filter without recompiling — exactly the use case the paper
//! highlights for multiple methods per kernel.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Step2, Window};

struct ConvBehavior {
    w: u32,
    h: u32,
    coeff: Option<Window>,
}

impl ConvBehavior {
    fn convolve(&self, input: &Window) -> f64 {
        let coeff = self
            .coeff
            .as_ref()
            .expect("runConvolve fired before coefficients were loaded");
        let mut acc = 0.0;
        // True convolution: the kernel is flipped in both axes,
        // matching the paper's Fig. 6 inner loop.
        for y in 0..self.h {
            for x in 0..self.w {
                acc += input.get(x, y) * coeff.get(self.w - 1 - x, self.h - 1 - y);
            }
        }
        acc
    }
}

impl KernelBehavior for ConvBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "runConvolve" => {
                let acc = self.convolve(d.window("in"));
                out.window("out", Window::scalar(acc));
            }
            "loadCoeff" => {
                self.coeff = Some(d.window("coeff").clone());
            }
            other => panic!("conv2d has no method '{other}'"),
        }
    }

    // Spec order: 0 = runConvolve, 1 = loadCoeff.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let acc = self.convolve(d.window_at(0));
                out.window_at(0, Window::scalar(acc));
            }
            1 => self.coeff = Some(d.window_at(1).clone()),
            _ => return false,
        }
        true
    }

    fn ready(&self, method: &str) -> bool {
        // Don't consume data windows until coefficients are present; the
        // compiler schedules the constant provider at startup so this only
        // delays the first firings.
        method != "runConvolve" || self.coeff.is_some()
    }

    fn ready_fast(&self, method: usize) -> Option<bool> {
        Some(method != 0 || self.coeff.is_some())
    }
}

/// A `w`×`h` convolution kernel. Costs follow the paper's Fig. 6:
/// `runConvolve` takes `10 + 3wh` cycles, `loadCoeff` takes `10 + 2wh`.
pub fn conv2d(w: u32, h: u32) -> KernelDef {
    let size = Dim2::new(w, h);
    let wh = (w * h) as u64;
    let spec = KernelSpec::new("conv2d")
        .input(InputSpec::windowed("in", size, Step2::ONE))
        .input(InputSpec::block("coeff", size).replicated())
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "runConvolve",
            "in",
            vec!["out".into()],
            MethodCost::new(10 + 3 * wh, wh),
        ))
        .method(MethodSpec::on_data(
            "loadCoeff",
            "coeff",
            vec![],
            MethodCost::new(10 + 2 * wh, wh),
        ))
        .with_state_words(wh);
    KernelDef::new(spec, move || ConvBehavior { w, h, coeff: None })
}

/// A normalized box (mean) coefficient window for a `w`×`h` convolution.
pub fn box_coefficients(w: u32, h: u32) -> Window {
    Window::filled(Dim2::new(w, h), 1.0 / (w as f64 * h as f64))
}

/// An identity coefficient window: 1.0 at the center, 0 elsewhere. The
/// convolution then reproduces the (flipped-center) input sample.
pub fn identity_coefficients(w: u32, h: u32) -> Window {
    let mut win = Window::zeros(Dim2::new(w, h));
    win.set(w / 2, h / 2, 1.0);
    win
}

/// Gaussian-ish separable weights for smoothing tests (binomial rows).
pub fn binomial_coefficients(n: u32) -> Window {
    let mut row = vec![1.0f64];
    for _ in 1..n {
        let mut next = vec![1.0];
        for i in 1..row.len() {
            next.push(row[i - 1] + row[i]);
        }
        next.push(1.0);
        row = next;
    }
    let sum: f64 = row.iter().sum();
    let norm: Vec<f64> = row.iter().map(|v| v / sum).collect();
    Window::from_fn(Dim2::new(n, n), |x, y| norm[x as usize] * norm[y as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn load_and_run(def: &KernelDef, coeff: Window, input: Window) -> f64 {
        let mut b = (def.factory)();
        assert!(!b.ready("runConvolve"), "must wait for coefficients");
        {
            let consumed = vec![(1usize, Item::Window(coeff))];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("loadCoeff", &data, &mut out);
            assert!(out.into_items().is_empty());
        }
        assert!(b.ready("runConvolve"));
        let consumed = vec![(0usize, Item::Window(input))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("runConvolve", &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    #[test]
    fn box_filter_averages() {
        let def = conv2d(3, 3);
        let input = Window::from_fn(Dim2::new(3, 3), |x, y| (y * 3 + x) as f64);
        let got = load_and_run(&def, box_coefficients(3, 3), input);
        assert!((got - 4.0).abs() < 1e-12); // mean of 0..=8
    }

    #[test]
    fn identity_picks_center_flipped() {
        let def = conv2d(3, 3);
        let input = Window::from_fn(Dim2::new(3, 3), |x, y| (y * 3 + x) as f64);
        // identity coeff has 1.0 at (1,1); flipped it still indexes the
        // center input sample, which is 4.
        let got = load_and_run(&def, identity_coefficients(3, 3), input);
        assert!((got - 4.0).abs() < 1e-12);
    }

    #[test]
    fn convolution_flips_kernel() {
        let def = conv2d(3, 3);
        let mut coeff = Window::zeros(Dim2::new(3, 3));
        coeff.set(0, 0, 1.0); // top-left coefficient...
        let input = Window::from_fn(Dim2::new(3, 3), |x, y| (y * 3 + x) as f64);
        // ...multiplies the bottom-right input sample after flipping.
        let got = load_and_run(&def, coeff, input);
        assert!((got - 8.0).abs() < 1e-12);
    }

    #[test]
    fn costs_follow_paper_formula() {
        let def = conv2d(5, 5);
        let run = &def.spec.methods[def.spec.method_index("runConvolve").unwrap()];
        assert_eq!(run.cost.cycles, 10 + 3 * 25);
        let load = &def.spec.methods[def.spec.method_index("loadCoeff").unwrap()];
        assert_eq!(load.cost.cycles, 10 + 2 * 25);
        assert!(def.spec.inputs[1].replicated);
        assert_eq!(def.spec.inputs[0].offset, bp_core::Offset2::new(2.0, 2.0));
    }

    #[test]
    fn binomial_coefficients_sum_to_one() {
        let w = binomial_coefficients(5);
        let sum: f64 = w.samples().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // symmetric
        assert!((w.get(0, 0) - w.get(4, 4)).abs() < 1e-12);
    }
}
