//! A data-dependent-cost kernel: toy block-matching motion search — the
//! paper's own §VII example of what the static model cannot express without
//! "bounds on real-time processing requirements and runtime exceptions".
//!
//! Each iteration matches the 2×2 block at the window center against the
//! nine 2×2 candidate blocks at offsets in {-1,0,1}², stopping early when a
//! candidate's sum-of-absolute-differences falls below a threshold. The
//! *actual* cycle count therefore varies with the data; the kernel reports
//! it via [`Emitter::report_cycles`], and the timed simulator raises a
//! budget-overrun exception whenever a firing runs past the declared cost.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Offset2, Step2, Window};

/// Base cycles per firing (setup + output).
pub const SEARCH_BASE_CYCLES: u64 = 20;
/// Cycles per candidate position evaluated.
pub const SEARCH_POSITION_CYCLES: u64 = 12;

struct MotionSearchBehavior {
    threshold: f64,
}

fn sad(w: &Window, ax: u32, ay: u32, bx: u32, by: u32) -> f64 {
    let mut acc = 0.0;
    for dy in 0..2 {
        for dx in 0..2 {
            acc += (w.get(ax + dx, ay + dy) - w.get(bx + dx, by + dy)).abs();
        }
    }
    acc
}

impl KernelBehavior for MotionSearchBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        // Reference block at the window center (2,2)..(3,3); candidates at
        // center + offsets in {-1,0,1}^2 are fully contained in the 6x6
        // window.
        let mut best = f64::INFINITY;
        let mut tried: u64 = 0;
        'search: for oy in 0..3u32 {
            for ox in 0..3u32 {
                tried += 1;
                let s = sad(w, 2, 2, 1 + ox, 1 + oy);
                if s < best {
                    best = s;
                }
                if best <= self.threshold {
                    break 'search; // early exit: data-dependent cost
                }
            }
        }
        out.report_cycles(SEARCH_BASE_CYCLES + tried * SEARCH_POSITION_CYCLES);
        out.window("out", Window::scalar(best));
    }
}

/// A motion-search kernel with a data-dependent cost. `budget_positions` is
/// the number of candidate evaluations the *declared* cost covers (the
/// compile-time budget); searches that run longer raise runtime resource
/// exceptions in the timed simulation report. Declare 9 for a sound
/// worst-case budget, or less to model an optimistic allocation.
pub fn motion_search(threshold: f64, budget_positions: u64) -> KernelDef {
    assert!((1..=9).contains(&budget_positions));
    let spec = KernelSpec::new("motion_search")
        .input(
            InputSpec::windowed("in", Dim2::new(6, 6), Step2::new(2, 2))
                .with_offset(Offset2::new(2.0, 2.0)),
        )
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "search",
            "in",
            vec!["out".into()],
            MethodCost::new(
                SEARCH_BASE_CYCLES + budget_positions * SEARCH_POSITION_CYCLES,
                36,
            ),
        ));
    KernelDef::new(spec, move || MotionSearchBehavior { threshold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn fire(def: &KernelDef, w: Window) -> (f64, Option<u64>) {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(w))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("search", &data, &mut out);
        let (items, cycles) = out.into_parts();
        (items[0].1.window().unwrap().as_scalar(), cycles)
    }

    #[test]
    fn flat_data_exits_after_one_candidate() {
        let def = motion_search(0.5, 9);
        let (best, cycles) = fire(&def, Window::filled(Dim2::new(6, 6), 3.0));
        assert_eq!(best, 0.0);
        assert_eq!(cycles, Some(SEARCH_BASE_CYCLES + SEARCH_POSITION_CYCLES));
    }

    #[test]
    fn unattainable_threshold_searches_all_positions() {
        // A negative threshold can never be met (SAD >= 0), so the search
        // always evaluates all nine candidates — the declared worst case.
        let def = motion_search(-1.0, 9);
        let w = Window::from_fn(Dim2::new(6, 6), |x, y| ((y * 6 + x) * (y + 2)) as f64);
        let (_best, cycles) = fire(&def, w);
        assert_eq!(
            cycles,
            Some(SEARCH_BASE_CYCLES + 9 * SEARCH_POSITION_CYCLES)
        );
    }

    #[test]
    fn zero_offset_candidate_is_exact_match() {
        // Candidate (ox,oy)=(1,1) is the reference block itself, so the
        // best SAD is always 0 by the fifth evaluation at the latest.
        let def = motion_search(0.0, 9);
        let w = Window::from_fn(Dim2::new(6, 6), |x, y| (y * 7 + x * 3) as f64);
        let (best, cycles) = fire(&def, w);
        assert_eq!(best, 0.0);
        assert_eq!(
            cycles,
            Some(SEARCH_BASE_CYCLES + 5 * SEARCH_POSITION_CYCLES)
        );
    }

    #[test]
    fn declared_budget_reflects_positions() {
        let opt = motion_search(0.0, 3);
        assert_eq!(
            opt.spec.methods[0].cost.cycles,
            SEARCH_BASE_CYCLES + 3 * SEARCH_POSITION_CYCLES
        );
        let worst = motion_search(0.0, 9);
        assert!(worst.spec.methods[0].cost.cycles > opt.spec.methods[0].cost.cycles);
    }
}
