//! # bp-kernels — the standard kernel library
//!
//! Behavioral implementations of the kernels used throughout the paper:
//! user-facing computation kernels (convolution, median, histogram,
//! point-wise arithmetic, Bayer demosaic, Sobel, downsampling), application
//! endpoints (frame sources, constant providers, sinks), and the
//! compiler-inserted plumbing (buffers, split/join FSMs, replicate,
//! inset/pad, feedback).
//!
//! Every kernel is a [`bp_core::KernelDef`]: a static spec (ports, methods,
//! costs, parallelization class) plus a behavior factory, so the compiler
//! can replicate instances with independent private state.

#![warn(missing_docs)]

pub mod arith;
pub mod bayer;
pub mod buffer;
pub mod conv;
pub mod feedback;
pub mod filters;
pub mod fir;
pub mod histogram;
pub mod inset;
pub mod join;
pub mod median;
pub mod morphology;
pub mod pad;
pub mod replicate;
pub mod sink;
pub mod source;
pub mod split;
pub mod upsample;
pub mod variable;

pub use arith::{absdiff, add, scale, subtract, threshold};
pub use bayer::bayer_demosaic;
pub use buffer::{buffer, buffer_storage_words};
pub use conv::{binomial_coefficients, box_coefficients, conv2d, identity_coefficients};
pub use feedback::feedback_frame;
pub use filters::{downsample, sobel};
pub use fir::{boxcar_taps, decimate, fir, lowpass_taps};
pub use histogram::{histogram, histogram_merge, uniform_bins};
pub use inset::{inset, Margins};
pub use join::{join_columns, join_rr};
pub use median::median;
pub use morphology::{dilate, erode};
pub use pad::{pad, PadMode};
pub use replicate::replicate;
pub use sink::{sink, SinkHandle};
pub use source::{const_source, frame_source, pattern_source, PixelGen};
pub use split::{plan_column_ranges, split_columns, split_rr, ColumnRange};
pub use upsample::{upsample, UpsampleMode};
pub use variable::{motion_search, SEARCH_BASE_CYCLES, SEARCH_POSITION_CYCLES};
