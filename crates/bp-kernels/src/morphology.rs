//! Morphological kernels: erosion and dilation over rectangular structuring
//! elements — common non-linear neighbors of the median filter in embedded
//! vision pipelines.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Step2, Window};

#[derive(Clone, Copy)]
enum Op {
    Erode,
    Dilate,
}

struct MorphBehavior {
    op: Op,
}

impl KernelBehavior for MorphBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        let v = match self.op {
            Op::Erode => w.samples().iter().copied().fold(f64::INFINITY, f64::min),
            Op::Dilate => w
                .samples()
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        };
        out.window("out", Window::scalar(v));
    }
}

fn morph_spec(kind: &str, w: u32, h: u32) -> KernelSpec {
    let size = Dim2::new(w, h);
    let wh = (w * h) as u64;
    KernelSpec::new(kind)
        .input(InputSpec::windowed("in", size, Step2::ONE))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "run",
            "in",
            vec!["out".into()],
            MethodCost::new(8 + 2 * wh, wh),
        ))
}

/// Grayscale erosion: minimum over a `w`×`h` window.
pub fn erode(w: u32, h: u32) -> KernelDef {
    KernelDef::new(morph_spec("erode", w, h), || MorphBehavior {
        op: Op::Erode,
    })
}

/// Grayscale dilation: maximum over a `w`×`h` window.
pub fn dilate(w: u32, h: u32) -> KernelDef {
    KernelDef::new(morph_spec("dilate", w, h), || MorphBehavior {
        op: Op::Dilate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn run(def: &KernelDef, input: Window) -> f64 {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(input))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("run", &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    #[test]
    fn erode_takes_minimum() {
        let w = Window::from_vec(Dim2::new(3, 3), vec![5., 2., 7., 9., 3., 1., 4., 8., 6.]);
        assert_eq!(run(&erode(3, 3), w), 1.0);
    }

    #[test]
    fn dilate_takes_maximum() {
        let w = Window::from_vec(Dim2::new(3, 3), vec![5., 2., 7., 9., 3., 1., 4., 8., 6.]);
        assert_eq!(run(&dilate(3, 3), w), 9.0);
    }

    #[test]
    fn erode_dilate_bracket_the_center() {
        let w = Window::from_fn(Dim2::new(3, 3), |x, y| (y * 3 + x) as f64);
        let lo = run(&erode(3, 3), w.clone());
        let hi = run(&dilate(3, 3), w.clone());
        let center = w.get(1, 1);
        assert!(lo <= center && center <= hi);
    }

    #[test]
    fn asymmetric_windows_supported() {
        let w = Window::from_vec(Dim2::new(3, 1), vec![4.0, -1.0, 2.0]);
        assert_eq!(run(&erode(3, 1), w.clone()), -1.0);
        assert_eq!(run(&dilate(3, 1), w), 4.0);
    }
}
