//! Split kernels (§IV): finite-state-machine distributors inserted by the
//! compiler in front of parallelized kernels.
//!
//! - [`split_rr`]: round-robin distribution of iterations to data-parallel
//!   replicas. Control tokens are broadcast to every replica so each keeps
//!   its frame alignment.
//! - [`split_columns`]: the specialized buffer-splitting FSM of Fig. 10 —
//!   pixels are routed by column range, and the columns shared between
//!   adjacent sub-buffers (the consumer window's halo) are sent to *both*.

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, Parallelism, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::Dim2;

fn out_names(k: usize) -> Vec<String> {
    (0..k).map(|i| format!("out{i}")).collect()
}

fn split_spec(kind: &str, k: usize, grain: Dim2) -> KernelSpec {
    let outs = out_names(k);
    let mut spec = KernelSpec::new(kind)
        .with_role(NodeRole::Split)
        .with_parallelism(Parallelism::Serial)
        .with_shape(ShapeTransform::Transparent)
        .input(InputSpec::block("in", grain));
    for o in &outs {
        spec = spec.output(OutputSpec::block(o.clone(), grain));
    }
    spec.method(MethodSpec::on_data(
        "dispatch",
        "in",
        outs.clone(),
        MethodCost::new(2, 0),
    ))
    .method(MethodSpec::on_token(
        "eol",
        "in",
        TokenKind::EndOfLine,
        outs.clone(),
        MethodCost::new(1, 0),
    ))
    .method(MethodSpec::on_token(
        "eof",
        "in",
        TokenKind::EndOfFrame,
        outs,
        MethodCost::new(1, 0),
    ))
}

struct SplitRrBehavior {
    k: usize,
    state: usize,
}

impl KernelBehavior for SplitRrBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "dispatch" => {
                let w = d.window("in").clone();
                out.window(&format!("out{}", self.state), w);
                self.state = (self.state + 1) % self.k;
            }
            "eol" => {
                for i in 0..self.k {
                    out.token(&format!("out{i}"), ControlToken::EndOfLine);
                }
            }
            "eof" => {
                for i in 0..self.k {
                    out.token(&format!("out{i}"), ControlToken::EndOfFrame);
                }
                self.state = 0;
            }
            other => panic!("split has no method '{other}'"),
        }
    }

    // Spec order: 0 = dispatch, 1 = eol, 2 = eof; output `out{i}` is
    // output index `i`.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let w = d.window_at(0).clone();
                out.window_at(self.state, w);
                self.state = (self.state + 1) % self.k;
            }
            1 => {
                for i in 0..self.k {
                    out.token_at(i, ControlToken::EndOfLine);
                }
            }
            2 => {
                for i in 0..self.k {
                    out.token_at(i, ControlToken::EndOfFrame);
                }
                self.state = 0;
            }
            _ => return false,
        }
        true
    }
}

/// Round-robin split across `k` replicas for items of the given grain.
/// End-of-line/frame tokens are broadcast; the round-robin pointer resets at
/// each frame so the matching [`join_rr`](crate::join::join_rr) stays in
/// lockstep.
pub fn split_rr(k: usize, grain: Dim2) -> KernelDef {
    assert!(k >= 1);
    KernelDef::new(split_spec("split_rr", k, grain), move || SplitRrBehavior {
        k,
        state: 0,
    })
}

/// One sub-buffer's column range, inclusive, possibly overlapping its
/// neighbours by the consumer window halo (Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnRange {
    /// First data column routed to this output.
    pub start: u32,
    /// Last data column routed to this output (inclusive).
    pub end: u32,
}

impl ColumnRange {
    /// Width of the range in columns.
    pub fn width(&self) -> u32 {
        self.end - self.start + 1
    }

    /// True when `x` belongs to this range.
    pub fn contains(&self, x: u32) -> bool {
        x >= self.start && x <= self.end
    }
}

struct SplitColumnsBehavior {
    ranges: Vec<ColumnRange>,
    x: u32,
}

impl KernelBehavior for SplitColumnsBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "dispatch" => {
                let w = d.window("in");
                for (i, r) in self.ranges.iter().enumerate() {
                    if r.contains(self.x) {
                        out.window(&format!("out{i}"), w.clone());
                    }
                }
                self.x += 1;
            }
            "eol" => {
                for i in 0..self.ranges.len() {
                    out.token(&format!("out{i}"), ControlToken::EndOfLine);
                }
                self.x = 0;
            }
            "eof" => {
                for i in 0..self.ranges.len() {
                    out.token(&format!("out{i}"), ControlToken::EndOfFrame);
                }
                self.x = 0;
            }
            other => panic!("split has no method '{other}'"),
        }
    }

    // Spec order: 0 = dispatch, 1 = eol, 2 = eof; output `out{i}` is
    // output index `i`.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        match method {
            0 => {
                let w = d.window_at(0);
                for (i, r) in self.ranges.iter().enumerate() {
                    if r.contains(self.x) {
                        out.window_at(i, w.clone());
                    }
                }
                self.x += 1;
            }
            1 => {
                for i in 0..self.ranges.len() {
                    out.token_at(i, ControlToken::EndOfLine);
                }
                self.x = 0;
            }
            2 => {
                for i in 0..self.ranges.len() {
                    out.token_at(i, ControlToken::EndOfFrame);
                }
                self.x = 0;
            }
            _ => return false,
        }
        true
    }
}

/// Column-range split for parallelized buffers (Fig. 10): each incoming
/// pixel is sent to every sub-buffer whose (overlapping) column range
/// contains it, so shared halo columns are replicated.
pub fn split_columns(ranges: Vec<ColumnRange>) -> KernelDef {
    assert!(!ranges.is_empty());
    KernelDef::new(
        split_spec("split_cols", ranges.len(), Dim2::ONE),
        move || SplitColumnsBehavior {
            ranges: ranges.clone(),
            x: 0,
        },
    )
}

/// Compute overlapping column ranges that split a `data_width`-column
/// buffer into `k` parts for a consumer window of width `win_w` advancing
/// by `step_x` (§IV-C). Adjacent parts share `win_w - step_x` halo columns,
/// and every part covers a whole number of window iterations.
pub fn plan_column_ranges(data_width: u32, win_w: u32, step_x: u32, k: usize) -> Vec<ColumnRange> {
    assert!(k >= 1);
    let iters = if data_width < win_w {
        1
    } else {
        (data_width - win_w) / step_x + 1
    };
    let k = (k as u32).min(iters).max(1);
    let base = iters / k;
    let extra = iters % k;
    let mut ranges = Vec::with_capacity(k as usize);
    let mut first_iter = 0u32;
    for i in 0..k {
        let n = base + if i < extra { 1 } else { 0 };
        let last_iter = first_iter + n - 1;
        ranges.push(ColumnRange {
            start: first_iter * step_x,
            end: last_iter * step_x + win_w - 1,
        });
        first_iter += n;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Item, Window};

    fn drive(def: &KernelDef, items: Vec<Item>) -> Vec<(usize, Item)> {
        let mut b = (def.factory)();
        let mut got = Vec::new();
        for item in items {
            let method = match &item {
                Item::Window(_) => "dispatch",
                Item::Control(ControlToken::EndOfLine) => "eol",
                Item::Control(ControlToken::EndOfFrame) => "eof",
                Item::Control(ControlToken::Custom(_)) => continue,
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire(method, &data, &mut out);
            got.extend(out.into_items());
        }
        got
    }

    #[test]
    fn round_robin_distributes_and_broadcasts_tokens() {
        let def = split_rr(2, Dim2::ONE);
        let items = vec![
            Item::Window(Window::scalar(0.0)),
            Item::Window(Window::scalar(1.0)),
            Item::Window(Window::scalar(2.0)),
            Item::Control(ControlToken::EndOfFrame),
        ];
        let got = drive(&def, items);
        let to0: Vec<f64> = got
            .iter()
            .filter(|(p, i)| *p == 0 && i.is_window())
            .map(|(_, i)| i.window().unwrap().as_scalar())
            .collect();
        let to1: Vec<f64> = got
            .iter()
            .filter(|(p, i)| *p == 1 && i.is_window())
            .map(|(_, i)| i.window().unwrap().as_scalar())
            .collect();
        assert_eq!(to0, vec![0.0, 2.0]);
        assert_eq!(to1, vec![1.0]);
        // EOF broadcast to both.
        let eofs = got
            .iter()
            .filter(|(_, i)| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!(eofs, 2);
    }

    #[test]
    fn round_robin_resets_on_eof() {
        let def = split_rr(3, Dim2::ONE);
        let mut items = vec![
            Item::Window(Window::scalar(0.0)),
            Item::Control(ControlToken::EndOfFrame),
            Item::Window(Window::scalar(1.0)),
        ];
        items.push(Item::Control(ControlToken::EndOfFrame));
        let got = drive(&def, items);
        // Both windows go to out0 because the pointer reset at EOF.
        let to0 = got.iter().filter(|(p, i)| *p == 0 && i.is_window()).count();
        assert_eq!(to0, 2);
    }

    #[test]
    fn column_split_replicates_shared_halo() {
        // Fig. 10: width 12, 3-wide window step 1, split in two.
        let ranges = plan_column_ranges(12, 3, 1, 2);
        assert_eq!(
            ranges,
            vec![
                ColumnRange { start: 0, end: 6 },
                ColumnRange { start: 5, end: 11 }
            ]
        );
        // Columns 5 and 6 (the 2-column halo) go to both buffers.
        let def = split_columns(ranges);
        let mut items: Vec<Item> = (0..12)
            .map(|x| Item::Window(Window::scalar(x as f64)))
            .collect();
        items.push(Item::Control(ControlToken::EndOfLine));
        let got = drive(&def, items);
        let to0: Vec<f64> = got
            .iter()
            .filter(|(p, i)| *p == 0 && i.is_window())
            .map(|(_, i)| i.window().unwrap().as_scalar())
            .collect();
        let to1: Vec<f64> = got
            .iter()
            .filter(|(p, i)| *p == 1 && i.is_window())
            .map(|(_, i)| i.window().unwrap().as_scalar())
            .collect();
        assert_eq!(to0, (0..=6).map(|x| x as f64).collect::<Vec<_>>());
        assert_eq!(to1, (5..=11).map(|x| x as f64).collect::<Vec<_>>());
    }

    #[test]
    fn plan_ranges_cover_all_iterations() {
        for k in 1..=4usize {
            let ranges = plan_column_ranges(20, 5, 1, k);
            assert_eq!(ranges.len(), k.min(16));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 19);
            // Iteration counts sum to the unsplit count.
            let total: u32 = ranges.iter().map(|r| r.width() - 5 + 1).sum();
            assert_eq!(total, 16);
        }
    }

    #[test]
    fn plan_ranges_clamps_k_to_iterations() {
        let ranges = plan_column_ranges(4, 3, 1, 8);
        // Only 2 iterations exist; k clamps to 2.
        assert_eq!(ranges.len(), 2);
    }
}
