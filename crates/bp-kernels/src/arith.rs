//! Point-wise arithmetic kernels: subtract, add, absolute difference,
//! scale, and threshold. All are fully data parallel with 1×1 streams.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::Window;

fn binary_spec(kind: &str, cycles: u64) -> KernelSpec {
    KernelSpec::new(kind)
        .input(InputSpec::stream("in0"))
        .input(InputSpec::stream("in1"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_all_data(
            "run",
            &["in0", "in1"],
            vec!["out".into()],
            MethodCost::new(cycles, 2),
        ))
}

struct Binary {
    f: fn(f64, f64) -> f64,
}

impl KernelBehavior for Binary {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let a = d.window("in0").as_scalar();
        let b = d.window("in1").as_scalar();
        out.window("out", Window::scalar((self.f)(a, b)));
    }

    fn fire_fast(&mut self, _m: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        let a = d.window_at(0).as_scalar();
        let b = d.window_at(1).as_scalar();
        out.window_at(0, Window::scalar((self.f)(a, b)));
        true
    }
}

/// Per-pixel difference `in0 - in1` — the "Subtract" kernel of the paper's
/// running example. Requires both inputs to have the same logical size; the
/// compiler's alignment pass (§III-C) guarantees this.
pub fn subtract() -> KernelDef {
    KernelDef::new(binary_spec("subtract", 5), || Binary { f: |a, b| a - b })
}

/// Per-pixel sum `in0 + in1`.
pub fn add() -> KernelDef {
    KernelDef::new(binary_spec("add", 5), || Binary { f: |a, b| a + b })
}

/// Per-pixel absolute difference `|in0 - in1|`.
pub fn absdiff() -> KernelDef {
    KernelDef::new(binary_spec("absdiff", 6), || Binary {
        f: |a, b| (a - b).abs(),
    })
}

fn unary_spec(kind: &str, cycles: u64) -> KernelSpec {
    KernelSpec::new(kind)
        .input(InputSpec::stream("in"))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "run",
            "in",
            vec!["out".into()],
            MethodCost::new(cycles, 1),
        ))
}

struct Unary {
    f: Box<dyn Fn(f64) -> f64 + Send>,
}

impl KernelBehavior for Unary {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let a = d.window("in").as_scalar();
        out.window("out", Window::scalar((self.f)(a)));
    }

    fn fire_fast(&mut self, _m: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        let a = d.window_at(0).as_scalar();
        out.window_at(0, Window::scalar((self.f)(a)));
        true
    }
}

/// Per-pixel affine transform `gain * x + offset` (sensor gain/offset
/// correction).
pub fn scale(gain: f64, offset: f64) -> KernelDef {
    KernelDef::new(unary_spec("scale", 4), move || Unary {
        f: Box::new(move |x| gain * x + offset),
    })
}

/// Per-pixel binarization: 1.0 where `x >= level`, else 0.0.
pub fn threshold(level: f64) -> KernelDef {
    KernelDef::new(unary_spec("threshold", 3), move || Unary {
        f: Box::new(move |x| if x >= level { 1.0 } else { 0.0 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn run_binary(def: &KernelDef, a: f64, b: f64) -> f64 {
        let mut beh = (def.factory)();
        let consumed = vec![
            (0usize, Item::Window(Window::scalar(a))),
            (1usize, Item::Window(Window::scalar(b))),
        ];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        beh.fire("run", &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    fn run_unary(def: &KernelDef, a: f64) -> f64 {
        let mut beh = (def.factory)();
        let consumed = vec![(0usize, Item::Window(Window::scalar(a)))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        beh.fire("run", &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    #[test]
    fn binary_ops() {
        assert_eq!(run_binary(&subtract(), 5.0, 3.0), 2.0);
        assert_eq!(run_binary(&add(), 5.0, 3.0), 8.0);
        assert_eq!(run_binary(&absdiff(), 3.0, 5.0), 2.0);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(run_unary(&scale(2.0, 1.0), 3.0), 7.0);
        assert_eq!(run_unary(&threshold(4.0), 3.9), 0.0);
        assert_eq!(run_unary(&threshold(4.0), 4.0), 1.0);
    }

    #[test]
    fn binary_kernels_trigger_on_both_inputs() {
        let def = subtract();
        let m = &def.spec.methods[0];
        assert_eq!(m.triggers.len(), 2);
        assert!(m.is_data_method());
    }
}
