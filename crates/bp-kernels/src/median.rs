//! Windowed median filter — the non-linear half of the paper's running
//! example (the "3x3 Median" kernel).

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Step2, Window};

struct MedianBehavior {
    scratch: Vec<f64>,
}

impl MedianBehavior {
    fn median_of(&mut self, input: &Window) -> f64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(input.samples());
        self.scratch
            .sort_by(|a, b| a.partial_cmp(b).expect("median input must not be NaN"));
        let mid = self.scratch.len() / 2;
        if self.scratch.len() % 2 == 1 {
            self.scratch[mid]
        } else {
            0.5 * (self.scratch[mid - 1] + self.scratch[mid])
        }
    }
}

impl KernelBehavior for MedianBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let v = self.median_of(d.window("in"));
        out.window("out", Window::scalar(v));
    }

    fn fire_fast(&mut self, _m: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        let v = self.median_of(d.window_at(0));
        out.window_at(0, Window::scalar(v));
        true
    }
}

/// A `w`×`h` median filter producing one sample per iteration. Cost model:
/// `10 + 3wh` cycles per invocation (partial selection over the window) and `wh`
/// words of working memory.
pub fn median(w: u32, h: u32) -> KernelDef {
    let size = Dim2::new(w, h);
    let wh = (w * h) as u64;
    let spec = KernelSpec::new("median")
        .input(InputSpec::windowed("in", size, Step2::ONE))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "runMedian",
            "in",
            vec!["out".into()],
            MethodCost::new(10 + 3 * wh, wh),
        ));
    KernelDef::new(spec, move || MedianBehavior {
        scratch: Vec::with_capacity(wh as usize),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn run(def: &KernelDef, input: Window) -> f64 {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(input))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("runMedian", &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    #[test]
    fn median_of_odd_window() {
        let def = median(3, 3);
        let input = Window::from_vec(
            Dim2::new(3, 3),
            vec![9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0],
        );
        assert_eq!(run(&def, input), 5.0);
    }

    #[test]
    fn median_rejects_outliers() {
        let def = median(3, 3);
        let mut samples = vec![10.0; 9];
        samples[4] = 1000.0; // impulse noise at the center
        let input = Window::from_vec(Dim2::new(3, 3), samples);
        assert_eq!(run(&def, input), 10.0);
    }

    #[test]
    fn median_of_even_window_averages() {
        let def = median(2, 2);
        let input = Window::from_vec(Dim2::new(2, 2), vec![1.0, 2.0, 3.0, 10.0]);
        assert_eq!(run(&def, input), 2.5);
    }

    #[test]
    fn spec_has_centered_offset_and_halo() {
        let def = median(3, 3);
        let i = &def.spec.inputs[0];
        assert_eq!(i.offset, bp_core::Offset2::new(1.0, 1.0));
        assert_eq!(i.halo(), Dim2::new(2, 2));
    }
}
