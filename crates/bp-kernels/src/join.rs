//! Join kernels (§IV): in-order collectors matching the split kernels.
//!
//! A join's data methods are gated by an internal FSM (via
//! [`KernelBehavior::ready`]) so items are consumed from its inputs in
//! exactly the order the matching split distributed them. Control tokens
//! are synchronized: the join consumes one token from *every* input and
//! re-emits it once.

use bp_core::kernel::{
    Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole, Parallelism, ShapeTransform,
};
use bp_core::method::{MethodCost, MethodSpec, Trigger, TriggerOn};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, TokenKind};
use bp_core::Dim2;

fn in_names(k: usize) -> Vec<String> {
    (0..k).map(|i| format!("in{i}")).collect()
}

fn join_spec(kind: &str, k: usize, grain: Dim2) -> KernelSpec {
    let ins = in_names(k);
    let mut spec = KernelSpec::new(kind)
        .with_role(NodeRole::Join)
        .with_parallelism(Parallelism::Serial)
        .with_shape(ShapeTransform::Transparent)
        .output(OutputSpec::block("out", grain));
    for i in &ins {
        spec = spec.input(InputSpec::block(i.clone(), grain));
    }
    for (idx, i) in ins.iter().enumerate() {
        spec = spec.method(MethodSpec::on_data(
            format!("take{idx}"),
            i.clone(),
            vec!["out".into()],
            MethodCost::new(2, 0),
        ));
    }
    // Token synchronizers: fire when the token heads every input.
    let all = |on: TriggerOn| -> Vec<Trigger> {
        ins.iter()
            .map(|i| Trigger {
                input: i.clone(),
                on,
            })
            .collect()
    };
    spec.method(MethodSpec {
        name: "syncEol".into(),
        triggers: all(TriggerOn::Token(TokenKind::EndOfLine)),
        outputs: vec!["out".into()],
        cost: MethodCost::new(1, 0),
        max_rate_hz: None,
    })
    .method(MethodSpec {
        name: "syncEof".into(),
        triggers: all(TriggerOn::Token(TokenKind::EndOfFrame)),
        outputs: vec!["out".into()],
        cost: MethodCost::new(1, 0),
        max_rate_hz: None,
    })
}

struct JoinRrBehavior {
    k: usize,
    state: usize,
}

impl KernelBehavior for JoinRrBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "syncEol" => out.token("out", ControlToken::EndOfLine),
            "syncEof" => {
                out.token("out", ControlToken::EndOfFrame);
                self.state = 0;
            }
            m if m.starts_with("take") => {
                let idx: usize = m[4..].parse().expect("take method index");
                debug_assert_eq!(idx, self.state);
                let w = d.window(&format!("in{idx}")).clone();
                out.window("out", w);
                self.state = (self.state + 1) % self.k;
            }
            other => panic!("join has no method '{other}'"),
        }
    }

    // Spec order: 0..k-1 = take{i}, k = syncEol, k+1 = syncEof; input
    // `in{i}` is input index `i`.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        if method < self.k {
            debug_assert_eq!(method, self.state);
            let w = d.window_at(method).clone();
            out.window_at(0, w);
            self.state = (self.state + 1) % self.k;
        } else if method == self.k {
            out.token_at(0, ControlToken::EndOfLine);
        } else if method == self.k + 1 {
            out.token_at(0, ControlToken::EndOfFrame);
            self.state = 0;
        } else {
            return false;
        }
        true
    }

    fn ready(&self, method: &str) -> bool {
        match method {
            m if m.starts_with("take") => {
                let idx: usize = m[4..].parse().expect("take method index");
                idx == self.state
            }
            _ => true,
        }
    }

    fn ready_fast(&self, method: usize) -> Option<bool> {
        Some(method >= self.k || method == self.state)
    }
}

/// Round-robin join collecting from `k` replicas in distribution order;
/// the pointer resets at each end-of-frame, mirroring
/// [`split_rr`](crate::split::split_rr).
pub fn join_rr(k: usize, grain: Dim2) -> KernelDef {
    assert!(k >= 1);
    KernelDef::new(join_spec("join_rr", k, grain), move || JoinRrBehavior {
        k,
        state: 0,
    })
}

struct JoinColumnsBehavior {
    counts: Vec<u32>,
    input: usize,
    taken: u32,
}

impl JoinColumnsBehavior {
    fn advance(&mut self) {
        self.taken += 1;
        if self.taken == self.counts[self.input] {
            self.taken = 0;
            self.input = (self.input + 1) % self.counts.len();
        }
    }
}

impl KernelBehavior for JoinColumnsBehavior {
    fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        match method {
            "syncEol" => {
                out.token("out", ControlToken::EndOfLine);
                self.input = 0;
                self.taken = 0;
            }
            "syncEof" => {
                out.token("out", ControlToken::EndOfFrame);
                self.input = 0;
                self.taken = 0;
            }
            m if m.starts_with("take") => {
                let idx: usize = m[4..].parse().expect("take method index");
                debug_assert_eq!(idx, self.input);
                let w = d.window(&format!("in{idx}")).clone();
                out.window("out", w);
                self.advance();
            }
            other => panic!("join has no method '{other}'"),
        }
    }

    // Spec order: 0..k-1 = take{i}, k = syncEol, k+1 = syncEof; input
    // `in{i}` is input index `i`.
    fn fire_fast(&mut self, method: usize, d: &FireData<'_>, out: &mut Emitter<'_>) -> bool {
        let k = self.counts.len();
        if method < k {
            debug_assert_eq!(method, self.input);
            let w = d.window_at(method).clone();
            out.window_at(0, w);
            self.advance();
        } else if method == k {
            out.token_at(0, ControlToken::EndOfLine);
            self.input = 0;
            self.taken = 0;
        } else if method == k + 1 {
            out.token_at(0, ControlToken::EndOfFrame);
            self.input = 0;
            self.taken = 0;
        } else {
            return false;
        }
        true
    }

    fn ready(&self, method: &str) -> bool {
        match method {
            m if m.starts_with("take") => {
                let idx: usize = m[4..].parse().expect("take method index");
                idx == self.input
            }
            _ => true,
        }
    }

    fn ready_fast(&self, method: usize) -> Option<bool> {
        Some(method >= self.counts.len() || method == self.input)
    }
}

/// Column-group join for parallelized buffers: per window row, takes
/// `counts[0]` windows from `in0`, then `counts[1]` from `in1`, and so on,
/// restoring global scan-line order. End-of-line tokens (one per window
/// row, synchronized across sub-buffers) reset the pattern. `data` is the
/// full logical extent the join reassembles, recorded for the data-flow
/// analysis.
pub fn join_columns(counts: Vec<u32>, grain: Dim2, data: Dim2) -> KernelDef {
    assert!(!counts.is_empty());
    assert!(
        counts.iter().all(|c| *c > 0),
        "every column group must contribute windows"
    );
    let mut spec = join_spec("join_cols", counts.len(), grain);
    spec.shape = ShapeTransform::Fixed { data };
    KernelDef::new(spec, move || JoinColumnsBehavior {
        counts: counts.clone(),
        input: 0,
        taken: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Item, Window};
    use std::collections::VecDeque;

    /// Minimal multi-input executor for a single join node.
    fn drive(def: &KernelDef, feeds: Vec<Vec<Item>>) -> Vec<Item> {
        let mut b = (def.factory)();
        let mut queues: Vec<VecDeque<Item>> = feeds.into_iter().map(VecDeque::from).collect();
        let mut got = Vec::new();
        loop {
            let mut fired = false;
            'methods: for m in &def.spec.methods {
                if m.triggers.is_empty() {
                    continue;
                }
                for t in &m.triggers {
                    let idx = def.spec.input_index(&t.input).unwrap();
                    let ok = match queues[idx].front() {
                        Some(Item::Window(_)) => t.on == TriggerOn::Data,
                        Some(Item::Control(tok)) => t.on == TriggerOn::Token(tok.kind()),
                        None => false,
                    };
                    if !ok {
                        continue 'methods;
                    }
                }
                if !b.ready(&m.name) {
                    continue;
                }
                let consumed: Vec<(usize, Item)> = m
                    .triggers
                    .iter()
                    .map(|t| {
                        let idx = def.spec.input_index(&t.input).unwrap();
                        (idx, queues[idx].pop_front().unwrap())
                    })
                    .collect();
                let data = FireData::new(&def.spec, &consumed);
                let mut out = Emitter::new(&def.spec);
                b.fire(&m.name, &data, &mut out);
                got.extend(out.into_items().into_iter().map(|(_, i)| i));
                fired = true;
                break;
            }
            if !fired {
                return got;
            }
        }
    }

    fn w(v: f64) -> Item {
        Item::Window(Window::scalar(v))
    }

    #[test]
    fn round_robin_join_restores_order() {
        let def = join_rr(2, Dim2::ONE);
        let got = drive(
            &def,
            vec![
                vec![w(0.0), w(2.0), Item::Control(ControlToken::EndOfFrame)],
                vec![w(1.0), Item::Control(ControlToken::EndOfFrame)],
            ],
        );
        let vals: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|x| x.as_scalar()))
            .collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
        // Exactly one EOF re-emitted.
        let eofs = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!(eofs, 1);
    }

    #[test]
    fn join_waits_for_round_robin_order() {
        let def = join_rr(2, Dim2::ONE);
        // in1 has data but in0 does not: nothing can fire.
        let got = drive(&def, vec![vec![], vec![w(9.0)]]);
        assert!(got.is_empty());
    }

    #[test]
    fn column_join_interleaves_groups_per_row() {
        // Two sub-buffers contributing 2 and 3 windows per row.
        let def = join_columns(vec![2, 3], Dim2::ONE, Dim2::new(5, 2));
        let row = |base: f64, n: usize, eol: bool| -> Vec<Item> {
            let mut v: Vec<Item> = (0..n).map(|i| w(base + i as f64)).collect();
            if eol {
                v.push(Item::Control(ControlToken::EndOfLine));
            }
            v
        };
        let mut f0 = row(0.0, 2, true);
        f0.extend(row(10.0, 2, true));
        f0.push(Item::Control(ControlToken::EndOfFrame));
        let mut f1 = row(2.0, 3, true);
        f1.extend(row(12.0, 3, true));
        f1.push(Item::Control(ControlToken::EndOfFrame));
        let got = drive(&def, vec![f0, f1]);
        let vals: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|x| x.as_scalar()))
            .collect();
        assert_eq!(
            vals,
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0, 14.0]
        );
        let eols = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfLine)))
            .count();
        assert_eq!(eols, 2);
    }

    #[test]
    fn specs_are_serial_plumbing() {
        let j = join_rr(3, Dim2::ONE);
        assert_eq!(j.spec.role, NodeRole::Join);
        assert_eq!(j.spec.parallelism, Parallelism::Serial);
        assert_eq!(j.spec.inputs.len(), 3);
        assert_eq!(j.spec.methods.len(), 3 + 2);
    }
}
