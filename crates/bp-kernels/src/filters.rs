//! Additional windowed kernels: Sobel edge magnitude and block-average
//! downsampling (which exercises strided access and fractional offsets).

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, Offset2, Step2, Window};

struct SobelBehavior;

impl KernelBehavior for SobelBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        let gx = (w.get(2, 0) + 2.0 * w.get(2, 1) + w.get(2, 2))
            - (w.get(0, 0) + 2.0 * w.get(0, 1) + w.get(0, 2));
        let gy = (w.get(0, 2) + 2.0 * w.get(1, 2) + w.get(2, 2))
            - (w.get(0, 0) + 2.0 * w.get(1, 0) + w.get(2, 0));
        out.window("out", Window::scalar(gx.abs() + gy.abs()));
    }
}

/// 3×3 Sobel gradient magnitude (L1 norm of the two directional responses).
pub fn sobel() -> KernelDef {
    let spec = KernelSpec::new("sobel")
        .input(InputSpec::windowed("in", Dim2::new(3, 3), Step2::ONE))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "runSobel",
            "in",
            vec!["out".into()],
            MethodCost::new(10 + 3 * 9, 9),
        ));
    KernelDef::new(spec, || SobelBehavior)
}

struct DownsampleBehavior;

impl KernelBehavior for DownsampleBehavior {
    fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
        let w = d.window("in");
        let sum: f64 = w.samples().iter().sum();
        out.window("out", Window::scalar(sum / w.samples().len() as f64));
    }
}

/// Block-average downsampling by `fx`×`fy`: consumes non-overlapping
/// `fx`×`fy` blocks (step == size, so no data reuse) and emits their mean.
/// The input offset is fractional — `((fx-1)/2, (fy-1)/2)` — as §II-A notes
/// downsampling kernels may require.
pub fn downsample(fx: u32, fy: u32) -> KernelDef {
    assert!(fx >= 1 && fy >= 1);
    let size = Dim2::new(fx, fy);
    let spec = KernelSpec::new("downsample")
        .input(InputSpec::block("in", size).with_offset(Offset2::new(
            (fx as f64 - 1.0) / 2.0,
            (fy as f64 - 1.0) / 2.0,
        )))
        .output(OutputSpec::stream("out"))
        .method(MethodSpec::on_data(
            "runAvg",
            "in",
            vec!["out".into()],
            MethodCost::new(5 + (fx * fy) as u64, (fx * fy) as u64),
        ));
    KernelDef::new(spec, || DownsampleBehavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Item;

    fn run(def: &KernelDef, method: &str, input: Window) -> f64 {
        let mut b = (def.factory)();
        let consumed = vec![(0usize, Item::Window(input))];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire(method, &data, &mut out);
        out.into_items()[0].1.window().unwrap().as_scalar()
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        // Left column 0, right column 10: strong horizontal gradient.
        let input = Window::from_fn(Dim2::new(3, 3), |x, _| if x == 2 { 10.0 } else { 0.0 });
        let got = run(&sobel(), "runSobel", input);
        assert_eq!(got, 40.0); // gx = 4*10, gy = 0
    }

    #[test]
    fn sobel_flat_region_is_zero() {
        let got = run(&sobel(), "runSobel", Window::filled(Dim2::new(3, 3), 5.0));
        assert_eq!(got, 0.0);
    }

    #[test]
    fn downsample_averages_block() {
        let input = Window::from_vec(Dim2::new(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let got = run(&downsample(2, 2), "runAvg", input);
        assert_eq!(got, 2.5);
    }

    #[test]
    fn downsample_offset_is_fractional() {
        let def = downsample(2, 2);
        assert_eq!(def.spec.inputs[0].offset, Offset2::new(0.5, 0.5));
        assert_eq!(def.spec.inputs[0].step, Step2::new(2, 2));
    }
}
