//! Property-based tests for the kernel library: buffers against a direct
//! sliding-window reference, split/join round trips, pad/inset inverses,
//! and windowed kernels against array math.
//!
//! Seeded randomized sweeps (hermetic replacement for the original
//! `proptest` strategies; same parameter ranges, fixed seeds).

use bp_core::kernel::{Emitter, FireData, KernelDef};
use bp_core::{ControlToken, Dim2, Item, Rng64, Step2, Window};
use bp_kernels as k;
use std::collections::VecDeque;

/// Drive a single-input kernel over an item stream, dispatching data to its
/// data method and tokens to its token handlers (mirrors the executor for
/// one node).
fn drive(def: &KernelDef, items: Vec<Item>) -> Vec<(usize, Item)> {
    let data_method = def
        .spec
        .methods
        .iter()
        .find(|m| m.is_data_method())
        .map(|m| m.name.clone())
        .expect("data method");
    let mut b = (def.factory)();
    let mut got = Vec::new();
    for item in items {
        let method = match &item {
            Item::Window(_) => data_method.clone(),
            Item::Control(t) => {
                let kind = t.kind();
                match def.spec.methods.iter().find(|m| {
                    m.triggers
                        .iter()
                        .any(|tr| tr.on == bp_core::TriggerOn::Token(kind))
                }) {
                    Some(m) => m.name.clone(),
                    None => continue, // would be auto-forwarded by the executor
                }
            }
        };
        let consumed = vec![(0usize, item)];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire(&method, &data, &mut out);
        got.extend(out.into_items());
    }
    got
}

/// Scan-line pixel stream for one frame of the given values.
fn pixel_stream(img: &[Vec<f64>]) -> Vec<Item> {
    let mut v = Vec::new();
    for row in img {
        for &p in row {
            v.push(Item::Window(Window::scalar(p)));
        }
        v.push(Item::Control(ControlToken::EndOfLine));
    }
    v.push(Item::Control(ControlToken::EndOfFrame));
    v
}

/// Random image with dimensions in [1, max_w] x [1, max_h], values in
/// [-100, 100).
fn random_image(rng: &mut Rng64, max_w: u32, max_h: u32) -> Vec<Vec<f64>> {
    let w = rng.gen_range_u32(1, max_w + 1) as usize;
    let h = rng.gen_range_u32(1, max_h + 1) as usize;
    (0..h)
        .map(|_| (0..w).map(|_| rng.gen_range_f64(-100.0, 100.0)).collect())
        .collect()
}

/// The buffer kernel produces exactly the sliding windows a direct
/// implementation computes, in scan order.
#[test]
fn buffer_matches_direct_sliding_windows() {
    let mut rng = Rng64::seed_from_u64(0xb001);
    let mut checked = 0;
    while checked < 64 {
        let img = random_image(&mut rng, 12, 10);
        let h = img.len() as u32;
        let w = img[0].len() as u32;
        let (cw, ch) = (rng.gen_range_u32(1, 5), rng.gen_range_u32(1, 5));
        let (sx, sy) = (rng.gen_range_u32(1, 3), rng.gen_range_u32(1, 3));
        if cw > w || ch > h || !(w - cw).is_multiple_of(sx) || !(h - ch).is_multiple_of(sy) {
            continue;
        }
        checked += 1;
        let def = k::buffer(
            Dim2::ONE,
            Dim2::new(cw, ch),
            Step2::new(sx, sy),
            Dim2::new(w, h),
        );
        let got = drive(&def, pixel_stream(&img));
        let windows: Vec<&Window> = got.iter().filter_map(|(_, i)| i.window()).collect();
        let iters_x = (w - cw) / sx + 1;
        let iters_y = (h - ch) / sy + 1;
        assert_eq!(windows.len() as u32, iters_x * iters_y);
        let mut idx = 0;
        for iy in 0..iters_y {
            for ix in 0..iters_x {
                let win = windows[idx];
                idx += 1;
                for y in 0..ch {
                    for x in 0..cw {
                        let gx = (ix * sx + x) as usize;
                        let gy = (iy * sy + y) as usize;
                        assert_eq!(win.get(x, y), img[gy][gx]);
                    }
                }
            }
        }
    }
}

/// split_rr then join_rr is the identity on any window stream with
/// frame boundaries.
#[test]
fn split_join_roundtrip_is_identity() {
    let mut rng = Rng64::seed_from_u64(0xb002);
    for _ in 0..64 {
        let n = rng.gen_index(59) + 1;
        let vals: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-50.0, 50.0)).collect();
        let kk = rng.gen_index(5) + 1;
        let split = k::split_rr(kk, Dim2::ONE);
        let join = k::join_rr(kk, Dim2::ONE);
        let mut items: Vec<Item> = vals
            .iter()
            .map(|v| Item::Window(Window::scalar(*v)))
            .collect();
        items.push(Item::Control(ControlToken::EndOfFrame));

        // Run the split.
        let mut sb = (split.factory)();
        let mut branch: Vec<VecDeque<Item>> = vec![VecDeque::new(); kk];
        for item in items {
            let method = match &item {
                Item::Window(_) => "dispatch",
                Item::Control(ControlToken::EndOfFrame) => "eof",
                _ => unreachable!(),
            };
            let consumed = vec![(0usize, item)];
            let data = FireData::new(&split.spec, &consumed);
            let mut out = Emitter::new(&split.spec);
            sb.fire(method, &data, &mut out);
            for (port, it) in out.into_items() {
                branch[port].push_back(it);
            }
        }

        // Run the join with trigger matching and the FSM gate.
        let mut jb = (join.factory)();
        let mut collected = Vec::new();
        loop {
            let mut fired = false;
            'methods: for m in &join.spec.methods {
                for t in &m.triggers {
                    let idx = join.spec.input_index(&t.input).unwrap();
                    let ok = match branch[idx].front() {
                        Some(Item::Window(_)) => t.on == bp_core::TriggerOn::Data,
                        Some(Item::Control(tok)) => t.on == bp_core::TriggerOn::Token(tok.kind()),
                        None => false,
                    };
                    if !ok {
                        continue 'methods;
                    }
                }
                if !jb.ready(&m.name) {
                    continue;
                }
                let consumed: Vec<(usize, Item)> = m
                    .triggers
                    .iter()
                    .map(|t| {
                        let idx = join.spec.input_index(&t.input).unwrap();
                        (idx, branch[idx].pop_front().unwrap())
                    })
                    .collect();
                let data = FireData::new(&join.spec, &consumed);
                let mut out = Emitter::new(&join.spec);
                jb.fire(&m.name, &data, &mut out);
                collected.extend(out.into_items().into_iter().map(|(_, i)| i));
                fired = true;
                break;
            }
            if !fired {
                break;
            }
        }
        let got: Vec<f64> = collected
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(got, vals);
        // Everything consumed and exactly one EOF re-emitted.
        assert!(branch.iter().all(|q| q.is_empty()));
        let eofs = collected
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!(eofs, 1);
    }
}

/// Zero-padding then trimming by the same margins is the identity.
#[test]
fn pad_then_inset_is_identity() {
    let mut rng = Rng64::seed_from_u64(0xb003);
    for _ in 0..64 {
        let img = random_image(&mut rng, 8, 6);
        let m = rng.gen_range_u32(1, 3);
        let h = img.len() as u32;
        let w = img[0].len() as u32;
        let pad = k::pad(k::Margins::uniform(m), k::PadMode::Zero, Dim2::new(w, h));
        let padded = drive(&pad, pixel_stream(&img));
        let padded_items: Vec<Item> = padded.into_iter().map(|(_, i)| i).collect();
        let inset = k::inset(k::Margins::uniform(m), Dim2::new(w + 2 * m, h + 2 * m));
        let restored = drive(&inset, padded_items);
        let got: Vec<f64> = restored
            .iter()
            .filter_map(|(_, i)| i.window().map(|w| w.as_scalar()))
            .collect();
        let expect: Vec<f64> = img.iter().flatten().copied().collect();
        assert_eq!(got, expect);
    }
}

/// Mirror padding preserves every interior sample and mirrors edges.
#[test]
fn mirror_pad_interior_is_untouched() {
    let mut rng = Rng64::seed_from_u64(0xb004);
    let mut checked = 0;
    while checked < 64 {
        let img = random_image(&mut rng, 6, 5);
        let m = rng.gen_range_u32(1, 3);
        let h = img.len() as u32;
        let w = img[0].len() as u32;
        if m > w || m > h {
            continue;
        }
        checked += 1;
        let pad = k::pad(k::Margins::uniform(m), k::PadMode::Mirror, Dim2::new(w, h));
        let out = drive(&pad, pixel_stream(&img));
        // Reassemble rows.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut cur = Vec::new();
        for (_, i) in &out {
            match i {
                Item::Window(win) => cur.push(win.as_scalar()),
                Item::Control(ControlToken::EndOfLine) => rows.push(std::mem::take(&mut cur)),
                _ => {}
            }
        }
        assert_eq!(rows.len() as u32, h + 2 * m);
        for y in 0..h as usize {
            for x in 0..w as usize {
                assert_eq!(rows[y + m as usize][x + m as usize], img[y][x]);
            }
        }
        // Left edge mirrors column 0.
        for y in 0..h as usize {
            assert_eq!(rows[y + m as usize][m as usize - 1], img[y][0]);
        }
    }
}

/// The median never exceeds the window extrema (and equals the direct
/// selection).
#[test]
fn median_is_order_statistic() {
    let mut rng = Rng64::seed_from_u64(0xb005);
    for _ in 0..64 {
        let vals: Vec<f64> = (0..9).map(|_| rng.gen_range_f64(-1000.0, 1000.0)).collect();
        let def = k::median(3, 3);
        let mut b = (def.factory)();
        let consumed = vec![(
            0usize,
            Item::Window(Window::from_vec(Dim2::new(3, 3), vals.clone())),
        )];
        let data = FireData::new(&def.spec, &consumed);
        let mut out = Emitter::new(&def.spec);
        b.fire("runMedian", &data, &mut out);
        let got = out.into_items()[0].1.window().unwrap().as_scalar();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, sorted[4]);
    }
}

/// Convolution is linear: conv(a*x) == a*conv(x).
#[test]
fn convolution_is_linear() {
    let mut rng = Rng64::seed_from_u64(0xb006);
    for _ in 0..64 {
        let vals: Vec<f64> = (0..25).map(|_| rng.gen_range_f64(-10.0, 10.0)).collect();
        let scale = rng.gen_range_f64(-4.0, 4.0);
        let def = k::conv2d(5, 5);
        let fire_with = |input: Vec<f64>| -> f64 {
            let mut b = (def.factory)();
            let consumed = vec![(1usize, Item::Window(k::box_coefficients(5, 5)))];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("loadCoeff", &data, &mut out);
            let consumed = vec![(
                0usize,
                Item::Window(Window::from_vec(Dim2::new(5, 5), input)),
            )];
            let data = FireData::new(&def.spec, &consumed);
            let mut out = Emitter::new(&def.spec);
            b.fire("runConvolve", &data, &mut out);
            out.into_items()[0].1.window().unwrap().as_scalar()
        };
        let base = fire_with(vals.clone());
        let scaled = fire_with(vals.iter().map(|v| v * scale).collect());
        assert!((scaled - base * scale).abs() < 1e-9 * (1.0 + base.abs()));
    }
}
