//! Property-based tests for the windowed-access geometry and the stream
//! data model — the foundations every analysis builds on.

use bp_core::geometry::{
    fresh_samples_per_iteration, halo, iterations, steady_state_reuse,
};
use bp_core::{Dim2, Step2, Window};
use proptest::prelude::*;

proptest! {
    /// The iteration count inverts exactly: data = size + (iters-1)*step.
    #[test]
    fn iterations_invert_to_data_extent(
        w in 1u32..12, h in 1u32..12,
        sx in 1u32..5, sy in 1u32..5,
        ix in 1u32..20, iy in 1u32..20,
    ) {
        let size = Dim2::new(w, h);
        let step = Step2::new(sx, sy);
        let data = Dim2::new(w + (ix - 1) * sx, h + (iy - 1) * sy);
        prop_assert_eq!(iterations(data, size, step), Some(Dim2::new(ix, iy)));
    }

    /// Non-tiling strides are rejected, never mis-rounded.
    #[test]
    fn non_tiling_strides_are_rejected(
        w in 2u32..8, h in 2u32..8,
        sx in 2u32..5,
        extra in 1u32..4,
    ) {
        prop_assume!(extra % sx != 0);
        let size = Dim2::new(w, h);
        let data = Dim2::new(w + extra, h);
        prop_assert_eq!(iterations(data, size, Step2::new(sx, 1)), None);
    }

    /// Reuse is always in [0, 1) and consistent with the fresh-sample count.
    #[test]
    fn reuse_is_a_fraction(
        w in 1u32..16, h in 1u32..16,
        sx in 1u32..20, sy in 1u32..20,
    ) {
        let size = Dim2::new(w, h);
        let step = Step2::new(sx, sy);
        let r = steady_state_reuse(size, step);
        prop_assert!((0.0..1.0).contains(&r));
        let fresh = fresh_samples_per_iteration(size, step);
        prop_assert!(fresh >= 1);
        prop_assert!(fresh <= size.area());
        let expect = (size.area() - fresh) as f64 / size.area() as f64;
        prop_assert!((r - expect).abs() < 1e-12);
    }

    /// Halo plus step recovers the window size (when step <= size).
    #[test]
    fn halo_complements_step(
        w in 1u32..16, h in 1u32..16,
        sx in 1u32..16, sy in 1u32..16,
    ) {
        prop_assume!(sx <= w && sy <= h);
        let hl = halo(Dim2::new(w, h), Step2::new(sx, sy));
        prop_assert_eq!(hl.w + sx, w);
        prop_assert_eq!(hl.h + sy, h);
    }

    /// Window crop/paste roundtrip preserves both regions.
    #[test]
    fn crop_paste_roundtrip(
        (w, h, cw, ch, x0, y0) in (2u32..10, 2u32..10).prop_flat_map(|(w, h)| {
            (1..=w, 1..=h).prop_flat_map(move |(cw, ch)| {
                (0..=w - cw, 0..=h - ch)
                    .prop_map(move |(x0, y0)| (w, h, cw, ch, x0, y0))
            })
        }),
    ) {
        let original = Window::from_fn(Dim2::new(w, h), |x, y| (y * 100 + x) as f64);
        let cropped = original.crop(x0, y0, Dim2::new(cw, ch));
        let mut restored = original.clone();
        restored.paste(x0, y0, &cropped);
        prop_assert_eq!(&restored, &original);
        // And the crop really is the right region.
        for y in 0..ch {
            for x in 0..cw {
                prop_assert_eq!(cropped.get(x, y), original.get(x0 + x, y0 + y));
            }
        }
    }

    /// Row-major sample order matches get() coordinates.
    #[test]
    fn samples_are_row_major(w in 1u32..12, h in 1u32..12) {
        let win = Window::from_fn(Dim2::new(w, h), |x, y| (y * w + x) as f64);
        for (i, v) in win.samples().iter().enumerate() {
            prop_assert_eq!(*v, i as f64);
        }
    }
}
