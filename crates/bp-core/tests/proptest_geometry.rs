//! Property-based tests for the windowed-access geometry and the stream
//! data model — the foundations every analysis builds on.
//!
//! These run as seeded randomized sweeps over the same parameter ranges the
//! original `proptest` strategies drew from; the local [`Rng64`] keeps the
//! suite hermetic (no crates.io access required) and the fixed seeds keep
//! every run identical.

use bp_core::geometry::{fresh_samples_per_iteration, halo, iterations, steady_state_reuse};
use bp_core::{Dim2, Rng64, Step2, Window};

const CASES: u32 = 256;

/// The iteration count inverts exactly: data = size + (iters-1)*step.
#[test]
fn iterations_invert_to_data_extent() {
    let mut rng = Rng64::seed_from_u64(0x9e01);
    for _ in 0..CASES {
        let (w, h) = (rng.gen_range_u32(1, 12), rng.gen_range_u32(1, 12));
        let (sx, sy) = (rng.gen_range_u32(1, 5), rng.gen_range_u32(1, 5));
        let (ix, iy) = (rng.gen_range_u32(1, 20), rng.gen_range_u32(1, 20));
        let size = Dim2::new(w, h);
        let step = Step2::new(sx, sy);
        let data = Dim2::new(w + (ix - 1) * sx, h + (iy - 1) * sy);
        assert_eq!(iterations(data, size, step), Some(Dim2::new(ix, iy)));
    }
}

/// Non-tiling strides are rejected, never mis-rounded.
#[test]
fn non_tiling_strides_are_rejected() {
    let mut rng = Rng64::seed_from_u64(0x9e02);
    let mut checked = 0;
    while checked < CASES {
        let (w, h) = (rng.gen_range_u32(2, 8), rng.gen_range_u32(2, 8));
        let sx = rng.gen_range_u32(2, 5);
        let extra = rng.gen_range_u32(1, 4);
        if extra.is_multiple_of(sx) {
            continue;
        }
        checked += 1;
        let size = Dim2::new(w, h);
        let data = Dim2::new(w + extra, h);
        assert_eq!(iterations(data, size, Step2::new(sx, 1)), None);
    }
}

/// Reuse is always in [0, 1) and consistent with the fresh-sample count.
#[test]
fn reuse_is_a_fraction() {
    let mut rng = Rng64::seed_from_u64(0x9e03);
    for _ in 0..CASES {
        let (w, h) = (rng.gen_range_u32(1, 16), rng.gen_range_u32(1, 16));
        let (sx, sy) = (rng.gen_range_u32(1, 20), rng.gen_range_u32(1, 20));
        let size = Dim2::new(w, h);
        let step = Step2::new(sx, sy);
        let r = steady_state_reuse(size, step);
        assert!((0.0..1.0).contains(&r));
        let fresh = fresh_samples_per_iteration(size, step);
        assert!(fresh >= 1);
        assert!(fresh <= size.area());
        let expect = (size.area() - fresh) as f64 / size.area() as f64;
        assert!((r - expect).abs() < 1e-12);
    }
}

/// Halo plus step recovers the window size (when step <= size).
#[test]
fn halo_complements_step() {
    let mut rng = Rng64::seed_from_u64(0x9e04);
    let mut checked = 0;
    while checked < CASES {
        let (w, h) = (rng.gen_range_u32(1, 16), rng.gen_range_u32(1, 16));
        let (sx, sy) = (rng.gen_range_u32(1, 16), rng.gen_range_u32(1, 16));
        if sx > w || sy > h {
            continue;
        }
        checked += 1;
        let hl = halo(Dim2::new(w, h), Step2::new(sx, sy));
        assert_eq!(hl.w + sx, w);
        assert_eq!(hl.h + sy, h);
    }
}

/// Window crop/paste roundtrip preserves both regions.
#[test]
fn crop_paste_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x9e05);
    for _ in 0..CASES {
        let (w, h) = (rng.gen_range_u32(2, 10), rng.gen_range_u32(2, 10));
        let (cw, ch) = (rng.gen_range_u32(1, w + 1), rng.gen_range_u32(1, h + 1));
        let x0 = rng.gen_range_u32(0, w - cw + 1);
        let y0 = rng.gen_range_u32(0, h - ch + 1);
        let original = Window::from_fn(Dim2::new(w, h), |x, y| (y * 100 + x) as f64);
        let cropped = original.crop(x0, y0, Dim2::new(cw, ch));
        let mut restored = original.clone();
        restored.paste(x0, y0, &cropped);
        assert_eq!(&restored, &original);
        // And the crop really is the right region.
        for y in 0..ch {
            for x in 0..cw {
                assert_eq!(cropped.get(x, y), original.get(x0 + x, y0 + y));
            }
        }
    }
}

/// Row-major sample order matches get() coordinates.
#[test]
fn samples_are_row_major() {
    let mut rng = Rng64::seed_from_u64(0x9e06);
    for _ in 0..CASES {
        let (w, h) = (rng.gen_range_u32(1, 12), rng.gen_range_u32(1, 12));
        let win = Window::from_fn(Dim2::new(w, h), |x, y| (y * w + x) as f64);
        for (i, v) in win.samples().iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
