//! # bp-core — the block-parallel program representation
//!
//! Core IR for the block-parallel programming model of Black-Schaffer &
//! Dally (ICPP 2010): applications are graphs of *kernels* connected by FIFO
//! channels carrying two-dimensional data in fixed scan-line order, extended
//! with control tokens, multiple methods per kernel, data-dependency edges,
//! and explicit real-time input rates.
//!
//! The crate provides:
//! - [`geometry`]: window/step/offset arithmetic (halos, iteration counts,
//!   steady-state reuse);
//! - [`item`]: the stream data model ([`Window`]s of `f64` samples and
//!   [`ControlToken`]s);
//! - [`port`] and [`method`]: the input/output and method parameterization;
//! - [`kernel`]: [`KernelSpec`] + [`KernelBehavior`] (executable method
//!   bodies) bundled as [`KernelDef`];
//! - [`graph`]: the [`AppGraph`] with channels, dependency edges, and
//!   real-time source specifications, plus a [`GraphBuilder`].
//!
//! Compiler analyses live in `bp-compiler`, executable semantics in
//! `bp-sim`, and a standard kernel library in `bp-kernels`.

#![warn(missing_docs)]

pub mod capacity;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod item;
pub mod kernel;
pub mod machine;
pub mod method;
pub mod port;
pub mod rng;
pub mod token;

pub use capacity::{
    derive_channel_capacities, derive_default_capacity, feedback_loops, ChannelCapacities, LoopInfo,
};
pub use error::{BpError, Result};
pub use geometry::{Dim2, Offset2, Step2};
pub use graph::{
    AppGraph, Channel, ChannelId, DepEdge, GraphBuilder, Node, NodeId, PortRef, SourceInfo,
};
pub use item::{Item, Window};
pub use kernel::{
    BehaviorFactory, Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole,
    Parallelism, ShapeTransform,
};
pub use machine::{CommModel, CommProfile, MachineSpec, Mapping, ShardPlan};
pub use method::{MethodCost, MethodSpec, Trigger, TriggerOn};
pub use port::{InputSpec, OutputSpec};
pub use rng::Rng64;
pub use token::{ControlToken, CustomTokenDecl, TokenKind};
