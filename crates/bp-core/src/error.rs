//! Shared error type for the block-parallel toolchain.

/// Errors produced by graph construction, compiler analyses, or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum BpError {
    /// The application graph is structurally invalid.
    Validation(String),
    /// A compiler analysis failed (e.g. sizes do not propagate consistently).
    Analysis(String),
    /// A transformation pass could not be applied.
    Transform(String),
    /// Simulation failed (deadlock, overflow, missed real-time deadline).
    Simulation(String),
}

impl std::fmt::Display for BpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpError::Validation(m) => write!(f, "validation error: {m}"),
            BpError::Analysis(m) => write!(f, "analysis error: {m}"),
            BpError::Transform(m) => write!(f, "transform error: {m}"),
            BpError::Simulation(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl std::error::Error for BpError {}

/// Result alias used across the toolchain.
pub type Result<T> = std::result::Result<T, BpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(BpError::Validation("x".into())
            .to_string()
            .contains("validation"));
        assert!(BpError::Analysis("x".into())
            .to_string()
            .contains("analysis"));
        assert!(BpError::Transform("x".into())
            .to_string()
            .contains("transform"));
        assert!(BpError::Simulation("x".into())
            .to_string()
            .contains("simulation"));
    }
}
