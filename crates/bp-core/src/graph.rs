//! The application graph: kernels connected by data channels, plus
//! data-dependency edges and real-time input specifications (§II).

use crate::error::{BpError, Result};
use crate::geometry::Dim2;
use crate::kernel::{KernelDef, KernelSpec, NodeRole};
use crate::method::TriggerOn;
use std::collections::HashMap;

/// Identifier of a node in the application graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a channel in the application graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChannelId(pub usize);

/// A (node, port index) endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The node.
    pub node: NodeId,
    /// Input or output port index on that node, depending on context.
    pub port: usize,
}

/// A FIFO data channel from an output port to an input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Channel {
    /// Producing (node, output port).
    pub src: PortRef,
    /// Consuming (node, input port).
    pub dst: PortRef,
}

/// A data-dependency edge limiting the parallelism of `dst` to the replica
/// count of `src` (§IV-B) — e.g. an edge from the application input to a
/// histogram merge restricts the merge to one instance per frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// The node whose parallelism bounds the sink.
    pub src: NodeId,
    /// The node being limited.
    pub dst: NodeId,
}

/// Real-time specification of an application input: its frame size and the
/// fixed rate at which frames arrive. This is what imposes the throughput
/// constraint the compiler must meet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceInfo {
    /// The source node (role [`NodeRole::Source`]).
    pub node: NodeId,
    /// Frame dimensions.
    pub frame: Dim2,
    /// Frames per second.
    pub rate_hz: f64,
}

/// A node: a named kernel instance.
#[derive(Clone)]
pub struct Node {
    /// Instance name, unique in the graph (e.g. `"5x5 Conv_2"`).
    pub name: String,
    /// The kernel definition (spec + behavior factory).
    pub def: KernelDef,
}

impl Node {
    /// The node's kernel spec.
    pub fn spec(&self) -> &KernelSpec {
        &self.def.spec
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("kind", &self.def.spec.kind)
            .finish_non_exhaustive()
    }
}

/// The application graph.
///
/// Nodes are never removed (transformations rename/augment instead), so
/// [`NodeId`]s stay stable across passes. Channels may be retargeted or
/// removed by passes; removed slots are tombstoned so [`ChannelId`]s of the
/// survivors stay stable too.
#[derive(Clone, Default)]
pub struct AppGraph {
    nodes: Vec<Node>,
    channels: Vec<Option<Channel>>,
    dep_edges: Vec<DepEdge>,
    sources: Vec<SourceInfo>,
}

impl std::fmt::Debug for AppGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppGraph")
            .field("nodes", &self.nodes.len())
            .field("channels", &self.channel_count())
            .field("dep_edges", &self.dep_edges.len())
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl AppGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, def: KernelDef) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            def,
        });
        id
    }

    /// Register a source node's real-time input specification.
    pub fn set_source_info(&mut self, info: SourceInfo) {
        self.sources.retain(|s| s.node != info.node);
        self.sources.push(info);
    }

    /// Add a channel; returns its id.
    pub fn add_channel(&mut self, src: PortRef, dst: PortRef) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(Some(Channel { src, dst }));
        id
    }

    /// Remove a channel (tombstoned).
    pub fn remove_channel(&mut self, id: ChannelId) {
        self.channels[id.0] = None;
    }

    /// Retarget an existing channel.
    pub fn set_channel(&mut self, id: ChannelId, ch: Channel) {
        self.channels[id.0] = Some(ch);
    }

    /// Add a data-dependency edge.
    pub fn add_dep_edge(&mut self, src: NodeId, dst: NodeId) {
        self.dep_edges.push(DepEdge { src, dst });
    }

    /// All nodes, by id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable node lookup.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Find a node by instance name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Live channels.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, Channel)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (ChannelId(i), c)))
    }

    /// Number of live channels.
    pub fn channel_count(&self) -> usize {
        self.channels.iter().flatten().count()
    }

    /// Channel lookup (panics on a tombstoned id).
    pub fn channel(&self, id: ChannelId) -> Channel {
        self.channels[id.0].expect("channel was removed")
    }

    /// Data-dependency edges.
    pub fn dep_edges(&self) -> &[DepEdge] {
        &self.dep_edges
    }

    /// Real-time input specifications.
    pub fn sources(&self) -> &[SourceInfo] {
        &self.sources
    }

    /// The source info for a node, if it is a registered application input.
    pub fn source_info(&self, node: NodeId) -> Option<SourceInfo> {
        self.sources.iter().copied().find(|s| s.node == node)
    }

    /// Channels entering `node`, ordered by input port index.
    pub fn in_channels(&self, node: NodeId) -> Vec<(ChannelId, Channel)> {
        let mut v: Vec<_> = self
            .channels()
            .filter(|(_, c)| c.dst.node == node)
            .collect();
        v.sort_by_key(|(_, c)| c.dst.port);
        v
    }

    /// Channels leaving `node`, ordered by output port index.
    pub fn out_channels(&self, node: NodeId) -> Vec<(ChannelId, Channel)> {
        let mut v: Vec<_> = self
            .channels()
            .filter(|(_, c)| c.src.node == node)
            .collect();
        v.sort_by_key(|(_, c)| c.src.port);
        v
    }

    /// The single channel feeding the given input port, if any.
    pub fn channel_into(&self, node: NodeId, port: usize) -> Option<(ChannelId, Channel)> {
        self.channels()
            .find(|(_, c)| c.dst.node == node && c.dst.port == port)
    }

    /// All channels leaving the given output port (fan-out).
    pub fn channels_from(&self, node: NodeId, port: usize) -> Vec<(ChannelId, Channel)> {
        self.channels()
            .filter(|(_, c)| c.src.node == node && c.src.port == port)
            .collect()
    }

    /// Splice a single-input single-output node into an existing channel:
    /// `src -> dst` becomes `src -> mid -> dst`. Returns the new node id.
    pub fn splice(
        &mut self,
        ch: ChannelId,
        name: impl Into<String>,
        def: KernelDef,
        in_port: usize,
        out_port: usize,
    ) -> NodeId {
        let old = self.channel(ch);
        let mid = self.add_node(name, def);
        self.set_channel(
            ch,
            Channel {
                src: old.src,
                dst: PortRef {
                    node: mid,
                    port: in_port,
                },
            },
        );
        self.add_channel(
            PortRef {
                node: mid,
                port: out_port,
            },
            old.dst,
        );
        mid
    }

    /// Topological order of nodes over data channels; edges whose source is
    /// a [`NodeRole::Feedback`] node are ignored so feedback loops (§III-D)
    /// do not prevent ordering. Errors if a non-feedback cycle remains.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (_, c) in self.channels() {
            if self.nodes[c.src.node.0].spec().role == NodeRole::Feedback {
                continue;
            }
            succ[c.src.node.0].push(c.dst.node.0);
            indeg[c.dst.node.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(NodeId(u));
            for &v in &succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            return Err(BpError::Validation(
                "application graph contains a cycle without a feedback kernel".into(),
            ));
        }
        Ok(order)
    }

    /// Strongly connected components of the *data-channel* graph (feedback
    /// edges included — unlike [`topo_order`](Self::topo_order), which cuts
    /// them), via an iterative Tarjan walk. Components come back in reverse
    /// topological order of the condensation with members sorted by id; the
    /// order is fully deterministic for a given graph.
    ///
    /// Used by the feedback-aware capacity derivation
    /// (`bp_core::capacity`) to find the channel loops that a feedback
    /// kernel's primed population circulates through.
    pub fn sccs(&self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (_, c) in self.channels() {
            succ[c.src.node.0].push(c.dst.node.0);
        }
        // Tarjan, iterative: `frame = (node, next successor index)`.
        const UNSEEN: usize = usize::MAX;
        let mut index = vec![UNSEEN; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<NodeId>> = Vec::new();
        for root in 0..n {
            if index[root] != UNSEEN {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, si)) = call.last() {
                if si == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succ[v].get(si) {
                    call.last_mut().expect("frame present").1 += 1;
                    if index[w] == UNSEEN {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(NodeId(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
        comps
    }

    /// The cyclic strongly connected components: those with more than one
    /// node, or a single node with a self-loop channel.
    pub fn cyclic_sccs(&self) -> Vec<Vec<NodeId>> {
        self.sccs()
            .into_iter()
            .filter(|comp| {
                comp.len() > 1
                    || self
                        .channels()
                        .any(|(_, c)| c.src.node == comp[0] && c.dst.node == comp[0])
            })
            .collect()
    }

    /// Structural validation (§II):
    /// - every input port has exactly one incoming channel,
    /// - channel endpoints reference existing ports,
    /// - no two methods of a kernel trigger on the same (input, arrival),
    /// - method port references resolve,
    /// - source nodes have registered rate info and no inputs,
    /// - the graph is acyclic up to feedback kernels.
    pub fn validate(&self) -> Result<()> {
        for (_, ch) in self.channels() {
            let s = &self.nodes.get(ch.src.node.0).ok_or_else(|| {
                BpError::Validation(format!("channel source node {:?} missing", ch.src.node))
            })?;
            if ch.src.port >= s.spec().outputs.len() {
                return Err(BpError::Validation(format!(
                    "channel source port {} out of range on node '{}'",
                    ch.src.port, s.name
                )));
            }
            let d = &self.nodes.get(ch.dst.node.0).ok_or_else(|| {
                BpError::Validation(format!("channel dest node {:?} missing", ch.dst.node))
            })?;
            if ch.dst.port >= d.spec().inputs.len() {
                return Err(BpError::Validation(format!(
                    "channel dest port {} out of range on node '{}'",
                    ch.dst.port, d.name
                )));
            }
        }

        for (id, node) in self.nodes() {
            let spec = node.spec();
            // Input connectivity.
            for (pi, input) in spec.inputs.iter().enumerate() {
                let feeds = self
                    .channels()
                    .filter(|(_, c)| c.dst.node == id && c.dst.port == pi)
                    .count();
                if feeds != 1 {
                    return Err(BpError::Validation(format!(
                        "input '{}' of node '{}' has {} incoming channels (need exactly 1)",
                        input.name, node.name, feeds
                    )));
                }
            }
            // Method/port references and trigger disjointness.
            let mut seen: HashMap<(usize, TriggerOn), &str> = HashMap::new();
            for m in &spec.methods {
                for t in &m.triggers {
                    let idx = spec.input_index(&t.input).ok_or_else(|| {
                        BpError::Validation(format!(
                            "method '{}' of node '{}' triggers on unknown input '{}'",
                            m.name, node.name, t.input
                        ))
                    })?;
                    if let Some(prev) = seen.insert((idx, t.on), &m.name) {
                        return Err(BpError::Validation(format!(
                            "node '{}': methods '{}' and '{}' both trigger on input '{}' with the same arrival",
                            node.name, prev, m.name, t.input
                        )));
                    }
                }
                for o in &m.outputs {
                    if spec.output_index(o).is_none() {
                        return Err(BpError::Validation(format!(
                            "method '{}' of node '{}' writes unknown output '{}'",
                            m.name, node.name, o
                        )));
                    }
                }
            }
            // Sources.
            if spec.role == NodeRole::Source {
                if !spec.inputs.is_empty() {
                    return Err(BpError::Validation(format!(
                        "source node '{}' must not have inputs",
                        node.name
                    )));
                }
                if self.source_info(id).is_none() {
                    return Err(BpError::Validation(format!(
                        "source node '{}' has no registered frame size/rate",
                        node.name
                    )));
                }
            }
        }

        for dep in &self.dep_edges {
            if dep.src.0 >= self.nodes.len() || dep.dst.0 >= self.nodes.len() {
                return Err(BpError::Validation(
                    "dependency edge references missing node".into(),
                ));
            }
        }

        self.topo_order().map(|_| ())
    }

    /// Drop *plumbing* nodes that have no attached channels at all (both
    /// directions disconnected — e.g. a join/split pair bypassed by the
    /// pipeline-fusion pass), renumbering the survivors densely. Returns
    /// `old id -> new id` (`None` for dropped nodes). Only plumbing roles
    /// are ever dropped; fully disconnected user kernels are left in place
    /// so mistakes stay visible to validation.
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        let n = self.nodes.len();
        let mut attached = vec![false; n];
        for (_, c) in self.channels() {
            attached[c.src.node.0] = true;
            attached[c.dst.node.0] = true;
        }
        let keep: Vec<bool> = (0..n)
            .map(|i| attached[i] || !self.nodes[i].spec().role.is_plumbing())
            .collect();
        if keep.iter().all(|k| *k) {
            return (0..n).map(|i| Some(NodeId(i))).collect();
        }
        let mut remap: Vec<Option<NodeId>> = Vec::with_capacity(n);
        let mut next = 0usize;
        for k in &keep {
            if *k {
                remap.push(Some(NodeId(next)));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        let old_nodes = std::mem::take(&mut self.nodes);
        self.nodes = old_nodes
            .into_iter()
            .zip(&keep)
            .filter_map(|(node, k)| k.then_some(node))
            .collect();
        for c in self.channels.iter_mut().flatten() {
            let src = remap[c.src.node.0].expect("channel endpoint kept");
            let dst = remap[c.dst.node.0].expect("channel endpoint kept");
            c.src.node = src;
            c.dst.node = dst;
        }
        for d in self.dep_edges.iter_mut() {
            d.src = remap[d.src.0].expect("dep edge endpoint kept");
            d.dst = remap[d.dst.0].expect("dep edge endpoint kept");
        }
        for s in self.sources.iter_mut() {
            s.node = remap[s.node.0].expect("source kept");
        }
        remap
    }

    /// Count of nodes per role, for reports.
    pub fn role_census(&self) -> HashMap<NodeRole, usize> {
        let mut m = HashMap::new();
        for (_, n) in self.nodes() {
            *m.entry(n.spec().role).or_insert(0) += 1;
        }
        m
    }
}

/// Convenience builder offering name-based connection of kernels.
#[derive(Default)]
pub struct GraphBuilder {
    graph: AppGraph,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel instance.
    pub fn add(&mut self, name: impl Into<String>, def: KernelDef) -> NodeId {
        self.graph.add_node(name, def)
    }

    /// Add an application input: a source node with its frame size and rate.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        def: KernelDef,
        frame: Dim2,
        rate_hz: f64,
    ) -> NodeId {
        debug_assert_eq!(
            def.spec.role,
            NodeRole::Source,
            "add_source requires a Source kernel"
        );
        let id = self.graph.add_node(name, def);
        self.graph.set_source_info(SourceInfo {
            node: id,
            frame,
            rate_hz,
        });
        id
    }

    /// Connect `src_node.output` to `dst_node.input` by port name.
    /// Panics on unknown port names — those are programming errors in the
    /// application description.
    pub fn connect(&mut self, src: NodeId, output: &str, dst: NodeId, input: &str) -> ChannelId {
        let sp = self
            .graph
            .node(src)
            .spec()
            .output_index(output)
            .unwrap_or_else(|| {
                panic!(
                    "node '{}' has no output named '{output}'",
                    self.graph.node(src).name
                )
            });
        let dp = self
            .graph
            .node(dst)
            .spec()
            .input_index(input)
            .unwrap_or_else(|| {
                panic!(
                    "node '{}' has no input named '{input}'",
                    self.graph.node(dst).name
                )
            });
        self.graph.add_channel(
            PortRef {
                node: src,
                port: sp,
            },
            PortRef {
                node: dst,
                port: dp,
            },
        )
    }

    /// Add a data-dependency edge (§IV-B).
    pub fn dep_edge(&mut self, src: NodeId, dst: NodeId) {
        self.graph.add_dep_edge(src, dst);
    }

    /// Validate and return the graph.
    pub fn build(self) -> Result<AppGraph> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Return the graph without validation (for tests constructing
    /// deliberately broken graphs).
    pub fn build_unchecked(self) -> AppGraph {
        self.graph
    }

    /// Access the graph under construction.
    pub fn graph(&self) -> &AppGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Emitter, FireData, KernelBehavior, KernelSpec};
    use crate::method::{MethodCost, MethodSpec};
    use crate::port::{InputSpec, OutputSpec};

    struct Nop;
    impl KernelBehavior for Nop {
        fn fire(&mut self, _m: &str, _d: &FireData<'_>, _o: &mut Emitter<'_>) {}
    }

    fn passthrough_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("pass")
                .input(InputSpec::stream("in"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_data(
                    "run",
                    "in",
                    vec!["out".into()],
                    MethodCost::new(1, 0),
                )),
            || Nop,
        )
    }

    fn source_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("source")
                .with_role(NodeRole::Source)
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::source(
                    "gen",
                    vec!["out".into()],
                    MethodCost::new(0, 0),
                )),
            || Nop,
        )
    }

    fn sink_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("sink")
                .with_role(NodeRole::Sink)
                .input(InputSpec::stream("in"))
                .method(MethodSpec::on_data(
                    "take",
                    "in",
                    vec![],
                    MethodCost::new(0, 0),
                )),
            || Nop,
        )
    }

    fn small_pipeline() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        let s = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let k = b.add("K", passthrough_def());
        let t = b.add("Out", sink_def());
        b.connect(s, "out", k, "in");
        b.connect(k, "out", t, "in");
        b
    }

    #[test]
    fn builds_and_validates() {
        let g = small_pipeline().build().expect("valid graph");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.channel_count(), 2);
        assert_eq!(g.sources().len(), 1);
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn unconnected_input_fails_validation() {
        let mut b = GraphBuilder::new();
        b.add("K", passthrough_def());
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("incoming channels"));
    }

    #[test]
    fn duplicate_trigger_fails_validation() {
        let spec = KernelSpec::new("dup")
            .input(InputSpec::stream("in"))
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::on_data(
                "a",
                "in",
                vec![],
                MethodCost::default(),
            ))
            .method(MethodSpec::on_data(
                "b",
                "in",
                vec![],
                MethodCost::default(),
            ));
        let def = KernelDef::new(spec, || Nop);
        let mut b = GraphBuilder::new();
        let s = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let k = b.add("K", def);
        b.connect(s, "out", k, "in");
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("both trigger"));
    }

    #[test]
    fn cycle_without_feedback_fails() {
        let mut b = GraphBuilder::new();
        let a = b.add("A", passthrough_def());
        let c = b.add("C", passthrough_def());
        b.connect(a, "out", c, "in");
        b.connect(c, "out", a, "in");
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn splice_inserts_between() {
        let b = small_pipeline();
        let mut g = b.build_unchecked();
        let k = g.find_node("K").unwrap();
        let (ch, _) = g.channel_into(k, 0).unwrap();
        let mid = g.splice(ch, "Mid", passthrough_def(), 0, 0);
        g.validate().expect("still valid");
        let (_, into_mid) = g.channel_into(mid, 0).unwrap();
        assert_eq!(into_mid.src.node, g.find_node("Input").unwrap());
        let (_, into_k) = g.channel_into(k, 0).unwrap();
        assert_eq!(into_k.src.node, mid);
    }

    #[test]
    fn source_without_info_fails() {
        let mut b = GraphBuilder::new();
        let s = b.graph.add_node("Input", source_def()); // bypass add_source
        let t = b.add("Out", sink_def());
        b.graph
            .add_channel(PortRef { node: s, port: 0 }, PortRef { node: t, port: 0 });
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("no registered frame"));
    }

    #[test]
    fn compact_drops_detached_plumbing_only() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let k = b.add("K", passthrough_def());
        let t = b.add("Out", sink_def());
        let c1 = b.connect(s, "out", k, "in");
        let c2 = b.connect(k, "out", t, "in");
        let mut g = b.build_unchecked();
        // Add a split node, then detach it completely.
        let split_spec = KernelSpec::new("split_rr")
            .with_role(NodeRole::Split)
            .input(InputSpec::stream("in"))
            .output(OutputSpec::stream("out0"))
            .method(MethodSpec::on_data(
                "dispatch",
                "in",
                vec!["out0".into()],
                MethodCost::new(1, 0),
            ));
        let orphan = g.add_node("Orphan", KernelDef::new(split_spec, || Nop));
        assert_eq!(g.node_count(), 4);
        let remap = g.compact();
        assert_eq!(g.node_count(), 3);
        assert!(remap[orphan.0].is_none());
        assert!(g.find_node("Orphan").is_none());
        // Surviving channels still line up after renumbering.
        g.validate().unwrap();
        let (_, ch1) = (c1, g.channel(c1));
        let (_, ch2) = (c2, g.channel(c2));
        assert_eq!(g.node(ch1.src.node).name, "Input");
        assert_eq!(g.node(ch2.dst.node).name, "Out");
        // Source info was remapped.
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.node(g.sources()[0].node).name, "Input");
    }

    #[test]
    fn compact_keeps_disconnected_user_kernels() {
        let mut b = GraphBuilder::new();
        b.add("Lonely", passthrough_def());
        let mut g = b.build_unchecked();
        g.compact();
        assert!(g.find_node("Lonely").is_some(), "user kernels stay visible");
    }

    #[test]
    fn fanout_and_queries() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let k1 = b.add("K1", passthrough_def());
        let k2 = b.add("K2", passthrough_def());
        let t1 = b.add("O1", sink_def());
        let t2 = b.add("O2", sink_def());
        b.connect(s, "out", k1, "in");
        b.connect(s, "out", k2, "in");
        b.connect(k1, "out", t1, "in");
        b.connect(k2, "out", t2, "in");
        let g = b.build().unwrap();
        assert_eq!(g.channels_from(s, 0).len(), 2);
        assert_eq!(g.out_channels(s).len(), 2);
        assert_eq!(g.in_channels(k1).len(), 1);
        let census = g.role_census();
        assert_eq!(census[&NodeRole::Sink], 2);
        assert_eq!(census[&NodeRole::User], 2);
    }
}
