//! The stream data model: windows of samples and control tokens.

use crate::geometry::Dim2;
use crate::token::ControlToken;
use std::sync::Arc;

/// Window sample storage. 1×1 windows — the grain of raw pixel streams,
/// by far the most numerous items in a simulation — carry their sample
/// inline; larger windows share a reference-counted slice so that cloning
/// (channel fan-out, replicate kernels) is a refcount bump instead of a
/// deep copy. Mutation goes through copy-on-write: unique owners mutate in
/// place, shared owners get a private copy first.
#[derive(Clone, Debug)]
enum Payload {
    /// The single sample of a 1×1 window, stored inline (no allocation).
    Scalar(f64),
    /// Row-major samples of a larger window, shared on clone.
    Shared(Arc<[f64]>),
}

/// A rectangular block of samples — the unit of data transferred per
/// iteration on a channel. The grain of a channel equals the producing
/// port's output size; *buffer* kernels are what change grain.
///
/// Samples are stored in scan-line (row-major) order, matching the fixed
/// left-to-right, top-to-bottom data ordering the language mandates.
///
/// Cloning a window is cheap: the payload is either a single inline sample
/// or a shared reference-counted slice. Mutating accessors ([`set`](Self::set),
/// [`samples_mut`](Self::samples_mut), [`paste`](Self::paste)) copy on
/// write when the storage is shared.
#[derive(Clone, Debug)]
pub struct Window {
    w: u32,
    h: u32,
    data: Payload,
}

impl PartialEq for Window {
    fn eq(&self, other: &Self) -> bool {
        self.w == other.w && self.h == other.h && self.samples() == other.samples()
    }
}

impl Window {
    fn from_data(w: u32, h: u32, data: Vec<f64>) -> Self {
        let data = if data.len() == 1 {
            Payload::Scalar(data[0])
        } else {
            Payload::Shared(data.into())
        };
        Self { w, h, data }
    }

    /// A window filled with a constant value.
    pub fn filled(dim: Dim2, value: f64) -> Self {
        if dim.area() == 1 {
            return Self::scalar(value);
        }
        Self {
            w: dim.w,
            h: dim.h,
            data: Payload::Shared(vec![value; dim.area() as usize].into()),
        }
    }

    /// A zero-filled window.
    pub fn zeros(dim: Dim2) -> Self {
        Self::filled(dim, 0.0)
    }

    /// Build a window from a function of (x, y).
    pub fn from_fn(dim: Dim2, mut f: impl FnMut(u32, u32) -> f64) -> Self {
        if dim.area() == 1 {
            return Self::scalar(f(0, 0));
        }
        let mut data = Vec::with_capacity(dim.area() as usize);
        for y in 0..dim.h {
            for x in 0..dim.w {
                data.push(f(x, y));
            }
        }
        Self::from_data(dim.w, dim.h, data)
    }

    /// Build a window from row-major samples. Panics if the sample count
    /// does not match `dim.area()`.
    pub fn from_vec(dim: Dim2, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len() as u64,
            dim.area(),
            "window data length must match dimensions"
        );
        Self::from_data(dim.w, dim.h, data)
    }

    /// A 1×1 window holding a single sample — the grain of raw pixel
    /// streams. Allocation-free.
    pub fn scalar(value: f64) -> Self {
        Self {
            w: 1,
            h: 1,
            data: Payload::Scalar(value),
        }
    }

    /// Window dimensions.
    pub fn dim(&self) -> Dim2 {
        Dim2::new(self.w, self.h)
    }

    /// Width in samples.
    pub fn width(&self) -> u32 {
        self.w
    }

    /// Height in samples.
    pub fn height(&self) -> u32 {
        self.h
    }

    /// Sample at (x, y). Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f64 {
        assert!(x < self.w && y < self.h, "window access out of bounds");
        self.samples()[(y * self.w + x) as usize]
    }

    /// Set the sample at (x, y), copying shared storage first. Panics when
    /// out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f64) {
        assert!(x < self.w && y < self.h, "window access out of bounds");
        let idx = (y * self.w + x) as usize;
        self.samples_mut()[idx] = v;
    }

    /// The single sample of a 1×1 window. Panics otherwise.
    pub fn as_scalar(&self) -> f64 {
        match &self.data {
            Payload::Scalar(v) => *v,
            Payload::Shared(a) => {
                assert_eq!(a.len(), 1, "as_scalar requires a 1x1 window");
                a[0]
            }
        }
    }

    /// Row-major view of the samples.
    pub fn samples(&self) -> &[f64] {
        match &self.data {
            Payload::Scalar(v) => std::slice::from_ref(v),
            Payload::Shared(a) => a,
        }
    }

    /// Mutable row-major view of the samples. Copies shared storage on
    /// first write (copy-on-write); unique owners mutate in place.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        match &mut self.data {
            Payload::Scalar(v) => std::slice::from_mut(v),
            Payload::Shared(a) => Arc::make_mut(a),
        }
    }

    /// True when this window's storage is shared with another clone (it
    /// would copy on write). 1×1 windows are never shared.
    pub fn is_shared(&self) -> bool {
        match &self.data {
            Payload::Scalar(_) => false,
            Payload::Shared(a) => Arc::strong_count(a) > 1,
        }
    }

    /// Copy the rectangle starting at (x0, y0) with extent `dim` into a new
    /// window. Panics if the rectangle exceeds the bounds.
    pub fn crop(&self, x0: u32, y0: u32, dim: Dim2) -> Window {
        assert!(
            x0 + dim.w <= self.w && y0 + dim.h <= self.h,
            "crop rectangle out of bounds"
        );
        let src = self.samples();
        let mut data = Vec::with_capacity(dim.area() as usize);
        for y in 0..dim.h {
            let row = ((y0 + y) * self.w + x0) as usize;
            data.extend_from_slice(&src[row..row + dim.w as usize]);
        }
        Self::from_data(dim.w, dim.h, data)
    }

    /// Paste `src` into this window with its origin at (x0, y0), copying
    /// shared storage first. Panics if the source exceeds the bounds.
    pub fn paste(&mut self, x0: u32, y0: u32, src: &Window) {
        assert!(
            x0 + src.w <= self.w && y0 + src.h <= self.h,
            "paste rectangle out of bounds"
        );
        let w = self.w;
        let dst = self.samples_mut();
        let sdata = src.samples();
        for y in 0..src.h {
            let drow = ((y0 + y) * w + x0) as usize;
            let srow = (y * src.w) as usize;
            dst[drow..drow + src.w as usize].copy_from_slice(&sdata[srow..srow + src.w as usize]);
        }
    }
}

/// One element traveling on a channel, in order: either a window of data or
/// a control token.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A block of data for one iteration.
    Window(Window),
    /// A control token (§II-C).
    Control(ControlToken),
}

impl Item {
    /// True when the item is data.
    pub fn is_window(&self) -> bool {
        matches!(self, Item::Window(_))
    }

    /// Borrow the window, if data.
    pub fn window(&self) -> Option<&Window> {
        match self {
            Item::Window(w) => Some(w),
            Item::Control(_) => None,
        }
    }

    /// Take the window, if data.
    pub fn into_window(self) -> Option<Window> {
        match self {
            Item::Window(w) => Some(w),
            Item::Control(_) => None,
        }
    }

    /// Borrow the token, if control.
    pub fn control(&self) -> Option<ControlToken> {
        match self {
            Item::Window(_) => None,
            Item::Control(t) => Some(*t),
        }
    }

    /// Number of data words this item transfers (tokens are free).
    pub fn words(&self) -> u64 {
        match self {
            Item::Window(w) => w.dim().area(),
            Item::Control(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_is_row_major() {
        let w = Window::from_fn(Dim2::new(3, 2), |x, y| (y * 10 + x) as f64);
        assert_eq!(w.samples(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(w.get(2, 1), 12.0);
    }

    #[test]
    fn crop_and_paste_roundtrip() {
        let big = Window::from_fn(Dim2::new(5, 5), |x, y| (y * 5 + x) as f64);
        let c = big.crop(1, 2, Dim2::new(3, 2));
        assert_eq!(c.get(0, 0), 11.0);
        assert_eq!(c.get(2, 1), 18.0);

        let mut dst = Window::zeros(Dim2::new(5, 5));
        dst.paste(1, 2, &c);
        assert_eq!(dst.get(1, 2), 11.0);
        assert_eq!(dst.get(3, 3), 18.0);
        assert_eq!(dst.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_out_of_bounds_panics() {
        let w = Window::zeros(Dim2::new(2, 2));
        let _ = w.crop(1, 1, Dim2::new(2, 2));
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Window::scalar(3.5);
        assert_eq!(s.as_scalar(), 3.5);
        assert_eq!(s.dim(), Dim2::ONE);
    }

    #[test]
    fn item_accessors() {
        let w = Item::Window(Window::scalar(1.0));
        let t = Item::Control(ControlToken::EndOfFrame);
        assert!(w.is_window());
        assert!(!t.is_window());
        assert_eq!(w.words(), 1);
        assert_eq!(t.words(), 0);
        assert_eq!(t.control(), Some(ControlToken::EndOfFrame));
        assert!(w.window().is_some());
        assert!(w.into_window().is_some());
    }

    #[test]
    fn clone_shares_until_written() {
        let a = Window::from_fn(Dim2::new(4, 4), |x, y| (y * 4 + x) as f64);
        let mut b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a.samples().as_ptr(), b.samples().as_ptr());
        b.set(0, 0, 99.0);
        // Write un-shares: b got a private copy, a is untouched.
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(b.get(0, 0), 99.0);
    }

    #[test]
    fn unique_owner_mutates_in_place() {
        let mut a = Window::zeros(Dim2::new(3, 3));
        let before = a.samples().as_ptr();
        a.set(1, 1, 7.0);
        assert_eq!(a.samples().as_ptr(), before);
        assert_eq!(a.get(1, 1), 7.0);
    }

    #[test]
    fn scalar_windows_compare_regardless_of_storage() {
        let inline = Window::scalar(2.0);
        let boxed = Window::from_vec(Dim2::ONE, vec![2.0]);
        assert_eq!(inline, boxed);
        assert!(!boxed.is_shared());
        assert_eq!(boxed.as_scalar(), 2.0);
    }
}
