//! Kernel input/output parameterization (§II-A).

use crate::geometry::{Dim2, Offset2, Step2};

/// Parameterization of a kernel input: window size, step, offset from the
/// window origin to the produced output, and whether the input is
/// *replicated* under parallelization (copied to every replica instead of
/// being split — e.g. convolution coefficients, shown as dashed edges in the
/// paper's figures).
#[derive(Clone, Debug, PartialEq)]
pub struct InputSpec {
    /// Port name, unique within the kernel.
    pub name: String,
    /// Window size consumed per iteration.
    pub size: Dim2,
    /// Window advance per iteration.
    pub step: Step2,
    /// Offset from the window origin to the output sample it produces; used
    /// by the inset analysis for automatic trimming/padding (§III-C).
    pub offset: Offset2,
    /// Replicate (copy) rather than split this input when the kernel is
    /// parallelized.
    pub replicated: bool,
}

impl InputSpec {
    /// A windowed data input with the centered offset (`floor(size/2)`).
    pub fn windowed(name: impl Into<String>, size: Dim2, step: Step2) -> Self {
        Self {
            name: name.into(),
            size,
            step,
            offset: Offset2::centered(size),
            replicated: false,
        }
    }

    /// A 1×1 streaming input with zero offset — the shape of raw pixel
    /// streams and most point-wise kernels.
    pub fn stream(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            size: Dim2::ONE,
            step: Step2::ONE,
            offset: Offset2::ZERO,
            replicated: false,
        }
    }

    /// A block input that consumes its whole window with no reuse
    /// (step == size), e.g. coefficient loads or histogram merges.
    pub fn block(name: impl Into<String>, size: Dim2) -> Self {
        Self {
            name: name.into(),
            size,
            step: Step2::new(size.w, size.h),
            offset: Offset2::ZERO,
            replicated: false,
        }
    }

    /// Set the offset explicitly.
    pub fn with_offset(mut self, offset: Offset2) -> Self {
        self.offset = offset;
        self
    }

    /// Mark the input as replicated under parallelization.
    pub fn replicated(mut self) -> Self {
        self.replicated = true;
        self
    }

    /// Halo of the windowed access: `size - step`.
    pub fn halo(&self) -> Dim2 {
        crate::geometry::halo(self.size, self.step)
    }

    /// True if the input changes grain (consumes more than it is fed 1×1) —
    /// i.e. it needs an upstream buffer when fed a finer-grained stream.
    pub fn is_windowed(&self) -> bool {
        self.size != Dim2::ONE || self.step != Step2::ONE
    }
}

/// Parameterization of a kernel output: the block it produces per iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputSpec {
    /// Port name, unique within the kernel.
    pub name: String,
    /// Block size produced per iteration.
    pub size: Dim2,
    /// Output step; equals `size` for the common case of abutting blocks.
    pub step: Step2,
}

impl OutputSpec {
    /// An output producing abutting `size` blocks (step == size).
    pub fn block(name: impl Into<String>, size: Dim2) -> Self {
        Self {
            name: name.into(),
            size,
            step: Step2::new(size.w, size.h),
        }
    }

    /// A 1×1 streaming output.
    pub fn stream(name: impl Into<String>) -> Self {
        Self::block(name, Dim2::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_input_gets_centered_offset() {
        let i = InputSpec::windowed("in", Dim2::new(5, 5), Step2::ONE);
        assert_eq!(i.offset, Offset2::new(2.0, 2.0));
        assert_eq!(i.halo(), Dim2::new(4, 4));
        assert!(i.is_windowed());
        assert!(!i.replicated);
    }

    #[test]
    fn stream_input_is_unit() {
        let i = InputSpec::stream("in");
        assert_eq!(i.size, Dim2::ONE);
        assert!(!i.is_windowed());
        assert_eq!(i.halo(), Dim2::new(0, 0));
    }

    #[test]
    fn block_input_has_no_reuse() {
        let i = InputSpec::block("coeff", Dim2::new(5, 5)).replicated();
        assert_eq!(i.step, Step2::new(5, 5));
        assert!(i.replicated);
        assert_eq!(i.halo(), Dim2::new(0, 0));
    }

    #[test]
    fn output_block() {
        let o = OutputSpec::block("out", Dim2::new(32, 1));
        assert_eq!(o.step, Step2::new(32, 1));
        let s = OutputSpec::stream("out");
        assert_eq!(s.size, Dim2::ONE);
    }
}
