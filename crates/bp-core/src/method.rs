//! Kernel methods and their trigger mappings (§II-B).
//!
//! A kernel may register several *methods*, each triggered by a disjoint set
//! of inputs receiving either data or a specific control token. Methods share
//! the kernel's private state (e.g. `loadCoeff` writes the coefficient array
//! that `runConvolve` reads). Each method declares the cycles and memory it
//! consumes per invocation so the compiler can size the parallelization.

use crate::token::TokenKind;

/// What arrival on an input fires a trigger: a data window or a specific
/// control token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TriggerOn {
    /// Fires on a data window.
    Data,
    /// Fires on a control token of the given kind.
    Token(TokenKind),
}

/// One input participating in a method's trigger set.
#[derive(Clone, Debug, PartialEq)]
pub struct Trigger {
    /// Input port name.
    pub input: String,
    /// What must arrive on that input.
    pub on: TriggerOn,
}

/// Resource cost of one invocation of a method.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MethodCost {
    /// Computation cycles consumed per invocation (excluding I/O, which the
    /// simulator charges separately per word moved).
    pub cycles: u64,
    /// Working memory in words required while the method runs.
    pub memory_words: u64,
}

impl MethodCost {
    /// Construct a cost.
    pub const fn new(cycles: u64, memory_words: u64) -> Self {
        Self {
            cycles,
            memory_words,
        }
    }
}

/// A registered kernel method: its trigger set, the outputs it may write,
/// and its per-invocation cost.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodSpec {
    /// Method name, unique within the kernel.
    pub name: String,
    /// Inputs that must *all* have the required arrival at their queue head
    /// for the method to fire. Empty for source methods, which are fired by
    /// the scheduler according to the application input rate.
    pub triggers: Vec<Trigger>,
    /// Output ports this method may write.
    pub outputs: Vec<String>,
    /// Per-invocation resource cost.
    pub cost: MethodCost,
    /// For control-token handlers: the statically bounded maximum invocation
    /// rate, used by the compiler to budget cycles (§II-C). `None` means the
    /// rate follows from the data-flow analysis.
    pub max_rate_hz: Option<f64>,
}

impl MethodSpec {
    /// A method triggered by data on a single input.
    pub fn on_data(
        name: impl Into<String>,
        input: impl Into<String>,
        outputs: Vec<String>,
        cost: MethodCost,
    ) -> Self {
        Self {
            name: name.into(),
            triggers: vec![Trigger {
                input: input.into(),
                on: TriggerOn::Data,
            }],
            outputs,
            cost,
            max_rate_hz: None,
        }
    }

    /// A method triggered by a control token on a single input.
    pub fn on_token(
        name: impl Into<String>,
        input: impl Into<String>,
        token: TokenKind,
        outputs: Vec<String>,
        cost: MethodCost,
    ) -> Self {
        Self {
            name: name.into(),
            triggers: vec![Trigger {
                input: input.into(),
                on: TriggerOn::Token(token),
            }],
            outputs,
            cost,
            max_rate_hz: None,
        }
    }

    /// A method triggered by data arriving on *all* of the given inputs
    /// (e.g. the subtract kernel's two operands).
    pub fn on_all_data(
        name: impl Into<String>,
        inputs: &[&str],
        outputs: Vec<String>,
        cost: MethodCost,
    ) -> Self {
        Self {
            name: name.into(),
            triggers: inputs
                .iter()
                .map(|i| Trigger {
                    input: (*i).to_string(),
                    on: TriggerOn::Data,
                })
                .collect(),
            outputs,
            cost,
            max_rate_hz: None,
        }
    }

    /// A source method with no triggers, fired by the scheduler.
    pub fn source(name: impl Into<String>, outputs: Vec<String>, cost: MethodCost) -> Self {
        Self {
            name: name.into(),
            triggers: Vec::new(),
            outputs,
            cost,
            max_rate_hz: None,
        }
    }

    /// Set the declared maximum invocation rate.
    pub fn with_max_rate(mut self, hz: f64) -> Self {
        self.max_rate_hz = Some(hz);
        self
    }

    /// True when this is a source method (no triggers).
    pub fn is_source(&self) -> bool {
        self.triggers.is_empty()
    }

    /// The input names participating in this method's trigger set.
    pub fn trigger_inputs(&self) -> impl Iterator<Item = &str> {
        self.triggers.iter().map(|t| t.input.as_str())
    }

    /// True when the method fires on data (not tokens) for every trigger.
    pub fn is_data_method(&self) -> bool {
        !self.triggers.is_empty() && self.triggers.iter().all(|t| t.on == TriggerOn::Data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_triggers() {
        let m = MethodSpec::on_data("run", "in", vec!["out".into()], MethodCost::new(85, 25));
        assert_eq!(m.triggers.len(), 1);
        assert!(m.is_data_method());
        assert!(!m.is_source());

        let t = MethodSpec::on_token(
            "finish",
            "in",
            TokenKind::EndOfFrame,
            vec!["out".into()],
            MethodCost::new(99, 32),
        );
        assert!(!t.is_data_method());
        assert_eq!(t.triggers[0].on, TriggerOn::Token(TokenKind::EndOfFrame));

        let s = MethodSpec::source("gen", vec!["out".into()], MethodCost::default());
        assert!(s.is_source());

        let a = MethodSpec::on_all_data(
            "sub",
            &["in0", "in1"],
            vec!["out".into()],
            MethodCost::default(),
        );
        assert_eq!(a.trigger_inputs().collect::<Vec<_>>(), vec!["in0", "in1"]);
        assert!(a.is_data_method());
    }

    #[test]
    fn max_rate_is_recorded() {
        let m = MethodSpec::on_token(
            "ctl",
            "in",
            TokenKind::Custom(1),
            vec![],
            MethodCost::new(10, 0),
        )
        .with_max_rate(50.0);
        assert_eq!(m.max_rate_hz, Some(50.0));
    }
}
