//! Feedback-aware channel capacity derivation.
//!
//! The paper's compiler sizes intermediate buffers automatically (§III).
//! Two mechanisms live here:
//!
//! 1. A **default capacity** shared by every channel, derived from the
//!    widest input-window row any kernel consumes (within-frame burstiness
//!    slack), with a floor of 64 items. This is the historical rule and is
//!    unchanged for acyclic graphs.
//!
//! 2. **Back-edge overrides** for feedback loops (§III-D). A feedback
//!    kernel's initialization primes a whole frame of initial values into
//!    its output channel before any input arrives; that population then
//!    circulates the loop forever (loop kernels are rate 1:1, so it is
//!    conserved). Whenever the loop's external input pauses — between
//!    real-time frames, and permanently once the source finishes — the
//!    circulating population drains downstream until all of it parks on
//!    the back edge: every other loop node still holds a fireable plan
//!    while its input queue is nonempty, so a settled, deadlock-free
//!    program can hold loop items *only* on the back edge (its consumer,
//!    the loop's merge point, is legitimately waiting for external data).
//!    The engine lets a producer fire while the destination holds at most
//!    `cap - 2` items, so absorbing the whole population `P` needs
//!
//!    ```text
//!    cap_back = P + 1
//!    ```
//!
//!    clamped below by the flat default `d`. One below this bound the
//!    loop deadlocks (the last circulating item can never leave the
//!    feedback kernel), which is exactly the sharpness the liveness
//!    property suite pins. No power-of-two rounding is applied to
//!    overrides, so the bound stays sharp.

use crate::graph::{AppGraph, ChannelId, NodeId};
use crate::kernel::NodeRole;

/// A resolved per-channel capacity plan: one default for every channel plus
/// sparse overrides for feedback back edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelCapacities {
    /// Capacity of every channel without an override.
    pub default: usize,
    /// `(channel, capacity)` overrides, sorted by channel id.
    overrides: Vec<(ChannelId, usize)>,
}

impl ChannelCapacities {
    /// A flat plan: every channel gets `items`.
    pub fn uniform(items: usize) -> Self {
        Self {
            default: items,
            overrides: Vec::new(),
        }
    }

    /// The capacity of a channel under this plan.
    pub fn capacity(&self, id: ChannelId) -> usize {
        self.overrides
            .iter()
            .find(|(c, _)| *c == id)
            .map(|&(_, cap)| cap)
            .unwrap_or(self.default)
    }

    /// The sparse overrides, sorted by channel id.
    pub fn overrides(&self) -> &[(ChannelId, usize)] {
        &self.overrides
    }

    /// Add (or replace) an override for one channel.
    pub fn with_override(mut self, id: ChannelId, cap: usize) -> Self {
        self.set_override(id, cap);
        self
    }

    /// Add (or replace) an override for one channel, in place.
    pub fn set_override(&mut self, id: ChannelId, cap: usize) {
        match self.overrides.binary_search_by_key(&id.0, |(c, _)| c.0) {
            Ok(i) => self.overrides[i].1 = cap,
            Err(i) => self.overrides.insert(i, (id, cap)),
        }
    }
}

/// One feedback loop found by the derivation: a cyclic strongly connected
/// component of the data-channel graph, its primed population, and the
/// back-edge capacity that keeps it live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// Member nodes, sorted by id.
    pub nodes: Vec<NodeId>,
    /// Channels with both endpoints inside the component.
    pub channels: Vec<ChannelId>,
    /// Channels leaving a [`NodeRole::Feedback`] node inside the component
    /// — where the primed population starts.
    pub back_edges: Vec<ChannelId>,
    /// Total initial tokens primed by the component's feedback kernels.
    pub initial_tokens: u64,
    /// Derived capacity of each back edge (`>= default`).
    pub back_edge_capacity: usize,
}

/// The widest-input-row default capacity (the historical flat rule): the
/// widest input-window row any kernel consumes, rounded up to a power of
/// two, with a floor of 64 items.
pub fn derive_default_capacity(graph: &AppGraph) -> usize {
    let widest = graph
        .nodes()
        .flat_map(|(_, n)| n.spec().inputs.iter().map(|i| i.size.w as usize))
        .max()
        .unwrap_or(0);
    widest.next_power_of_two().max(64)
}

/// The feedback loops of `graph` with their derived back-edge capacities,
/// one entry per cyclic SCC with a nonzero primed population.
pub fn feedback_loops(graph: &AppGraph) -> Vec<LoopInfo> {
    let default = derive_default_capacity(graph);
    let mut loops = Vec::new();
    for comp in graph.cyclic_sccs() {
        let initial_tokens: u64 = comp
            .iter()
            .map(|&id| graph.node(id).spec().initial_tokens)
            .sum();
        if initial_tokens == 0 {
            // A cycle no kernel ever primes can never drain anyway; the
            // compiler's loop-liveness check flags it instead.
            continue;
        }
        let member = |id: NodeId| comp.binary_search(&id).is_ok();
        let mut channels = Vec::new();
        let mut back_edges = Vec::new();
        for (cid, c) in graph.channels() {
            if !(member(c.src.node) && member(c.dst.node)) {
                continue;
            }
            channels.push(cid);
            if graph.node(c.src.node).spec().role == NodeRole::Feedback {
                back_edges.push(cid);
            }
        }
        // The whole circulating population parks on the back edge whenever
        // external input pauses; a producer may fire while the destination
        // holds at most `cap - 2` items, so absorbing all `P` items needs
        // `P + 1`.
        let back_edge_capacity = (initial_tokens as usize + 1).max(default);
        loops.push(LoopInfo {
            nodes: comp,
            channels,
            back_edges,
            initial_tokens,
            back_edge_capacity,
        });
    }
    loops
}

/// Derive the per-channel capacity plan for `graph`: the widest-row default
/// everywhere, plus back-edge overrides sized so every feedback loop can
/// drain. Acyclic graphs get no overrides, so their plan is byte-identical
/// to the historical flat rule.
pub fn derive_channel_capacities(graph: &AppGraph) -> ChannelCapacities {
    let mut plan = ChannelCapacities::uniform(derive_default_capacity(graph));
    for lp in feedback_loops(graph) {
        if lp.back_edge_capacity > plan.default {
            for &be in &lp.back_edges {
                let cap = lp.back_edge_capacity.max(plan.capacity(be));
                plan.set_override(be, cap);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dim2;
    use crate::graph::GraphBuilder;
    use crate::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, ShapeTransform};
    use crate::method::{MethodCost, MethodSpec};
    use crate::port::{InputSpec, OutputSpec};

    struct Nop;
    impl KernelBehavior for Nop {
        fn fire(&mut self, _m: &str, _d: &FireData<'_>, _o: &mut Emitter<'_>) {}
    }

    fn source_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("source")
                .with_role(NodeRole::Source)
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::source(
                    "gen",
                    vec!["out".into()],
                    MethodCost::new(0, 0),
                )),
            || Nop,
        )
    }

    fn pass_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("pass")
                .input(InputSpec::stream("in"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_data(
                    "run",
                    "in",
                    vec!["out".into()],
                    MethodCost::new(1, 0),
                )),
            || Nop,
        )
    }

    fn merge_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("merge")
                .input(InputSpec::stream("in0"))
                .input(InputSpec::stream("in1"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_all_data(
                    "run",
                    &["in0", "in1"],
                    vec!["out".into()],
                    MethodCost::new(1, 0),
                )),
            || Nop,
        )
    }

    fn feedback_def(primed: u64) -> KernelDef {
        KernelDef::new(
            KernelSpec::new("feedback")
                .with_role(NodeRole::Feedback)
                .with_shape(ShapeTransform::Transparent)
                .with_initial_tokens(primed)
                .input(InputSpec::stream("in"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::source(
                    "init",
                    vec!["out".into()],
                    MethodCost::new(0, 0),
                ))
                .method(MethodSpec::on_data(
                    "pass",
                    "in",
                    vec!["out".into()],
                    MethodCost::new(1, 0),
                )),
            || Nop,
        )
    }

    fn sink_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("sink")
                .with_role(NodeRole::Sink)
                .input(InputSpec::stream("in"))
                .method(MethodSpec::on_data(
                    "take",
                    "in",
                    vec![],
                    MethodCost::new(0, 0),
                )),
            || Nop,
        )
    }

    /// source -> merge -> pass -> feedback(primed) -> merge.in1, pass -> sink
    fn loop_graph(primed: u64) -> (AppGraph, ChannelId) {
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let mix = b.add("Mix", merge_def());
        let half = b.add("Half", pass_def());
        let fb = b.add("Delay", feedback_def(primed));
        let snk = b.add("Out", sink_def());
        b.connect(src, "out", mix, "in0");
        let back = b.connect(fb, "out", mix, "in1");
        b.connect(mix, "out", half, "in");
        b.connect(half, "out", fb, "in");
        b.connect(half, "out", snk, "in");
        (b.build().unwrap(), back)
    }

    #[test]
    fn acyclic_graph_gets_no_overrides() {
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", source_def(), Dim2::new(4, 4), 10.0);
        let k = b.add("K", pass_def());
        let snk = b.add("Out", sink_def());
        b.connect(src, "out", k, "in");
        b.connect(k, "out", snk, "in");
        let g = b.build().unwrap();
        assert!(g.cyclic_sccs().is_empty());
        let plan = derive_channel_capacities(&g);
        assert_eq!(plan.default, 64);
        assert!(plan.overrides().is_empty());
    }

    #[test]
    fn sccs_find_the_feedback_loop() {
        let (g, _) = loop_graph(253);
        let cyclic = g.cyclic_sccs();
        assert_eq!(cyclic.len(), 1);
        let names: Vec<&str> = cyclic[0]
            .iter()
            .map(|&id| g.node(id).name.as_str())
            .collect();
        assert_eq!(names, ["Mix", "Half", "Delay"]);
    }

    #[test]
    fn back_edge_capacity_covers_the_primed_population() {
        let (g, back) = loop_graph(253);
        let loops = feedback_loops(&g);
        assert_eq!(loops.len(), 1);
        let lp = &loops[0];
        assert_eq!(lp.initial_tokens, 253);
        assert_eq!(lp.back_edges, vec![back]);
        assert_eq!(lp.channels.len(), 3);
        // The whole population must park on the back edge, plus the one
        // item of headroom the `len <= cap - 2` firing rule demands.
        assert_eq!(lp.back_edge_capacity, 254);
        let plan = derive_channel_capacities(&g);
        assert_eq!(plan.capacity(back), lp.back_edge_capacity);
        assert_eq!(plan.overrides().len(), 1);
    }

    #[test]
    fn small_populations_need_no_override() {
        // 29 primed items fit the flat default with room to spare.
        let (g, back) = loop_graph(29);
        let plan = derive_channel_capacities(&g);
        assert!(plan.overrides().is_empty());
        assert_eq!(plan.capacity(back), 64);
    }

    #[test]
    fn unprimed_cycles_are_skipped() {
        let (g, _) = loop_graph(0);
        assert_eq!(g.cyclic_sccs().len(), 1);
        assert!(feedback_loops(&g).is_empty());
        assert!(derive_channel_capacities(&g).overrides().is_empty());
    }
}
