//! Kernel definitions: static specification plus executable behavior.
//!
//! A kernel is described by a [`KernelSpec`] — its parameterized inputs and
//! outputs, registered methods, resource costs, and parallelization class —
//! and brought to life by a [`KernelBehavior`], the method bodies. Behaviors
//! are produced by a factory so that the compiler can replicate a kernel and
//! every replica gets fresh private state.

use crate::geometry::Dim2;
use crate::item::{Item, Window};
use crate::method::MethodSpec;
use crate::port::{InputSpec, OutputSpec};
use crate::token::{ControlToken, CustomTokenDecl};
use std::sync::Arc;

/// The structural role a node plays in the application graph. User kernels
/// are written by the programmer; the remaining roles are inserted by the
/// compiler's transformation passes and treated specially by later passes
/// (e.g. buffers parallelize by column splitting, sources are never
/// multiplexed with other kernels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// A programmer-written computation kernel.
    User,
    /// An application input (frame source).
    Source,
    /// An application output collector.
    Sink,
    /// A constant/coefficient provider.
    Const,
    /// A compiler-inserted 2-D circular buffer (§III-B).
    Buffer,
    /// A round-robin or column-wise data distributor (§IV).
    Split,
    /// The matching in-order collector (§IV).
    Join,
    /// Fan-out copy for replicated inputs (§IV-A).
    Replicate,
    /// Trim kernel discarding halo rows/columns (§III-C).
    Inset,
    /// Padding kernel enlarging data with zeros or mirrored samples (§III-C).
    Pad,
    /// Feedback-loop breaker providing initial values (§III-D).
    Feedback,
}

impl NodeRole {
    /// True for compiler-inserted plumbing (everything except user kernels,
    /// sources, sinks and constants).
    pub fn is_plumbing(&self) -> bool {
        matches!(
            self,
            NodeRole::Buffer
                | NodeRole::Split
                | NodeRole::Join
                | NodeRole::Replicate
                | NodeRole::Inset
                | NodeRole::Pad
        )
    }
}

/// How a node transforms the *logical* data shape flowing through it, used
/// by the data-flow analysis (§III-A).
///
/// Most kernels are [`Windowed`](ShapeTransform::Windowed): their iteration
/// grid follows from their input parameterization and the output shape is
/// `iterations × output size`. Compiler-inserted plumbing (buffers,
/// split/join, replicate) re-grains or re-routes the stream without changing
/// the logical image, and trim/pad kernels change the shape by explicit
/// margins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShapeTransform {
    /// Output shape = iteration grid × output size (the default).
    Windowed,
    /// Logical shape passes through unchanged (split/join, replicate).
    Transparent,
    /// Logical output shape is a construction-time constant — used by
    /// buffers (which know the data extent they were sized for) and by
    /// column-group joins (which reassemble the full extent from narrowed
    /// branches).
    Fixed {
        /// The constant logical extent.
        data: Dim2,
    },
    /// Trim margins off the logical shape (inset kernels, §III-C).
    Crop {
        /// Columns removed at the left edge.
        left: u32,
        /// Columns removed at the right edge.
        right: u32,
        /// Rows removed at the top edge.
        top: u32,
        /// Rows removed at the bottom edge.
        bottom: u32,
    },
    /// Add margins to the logical shape (pad kernels, §III-C).
    Pad {
        /// Columns added at the left edge.
        left: u32,
        /// Columns added at the right edge.
        right: u32,
        /// Rows added at the top edge.
        top: u32,
        /// Rows added at the bottom edge.
        bottom: u32,
    },
}

/// How a kernel may be parallelized (§IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Fully data parallel: replicate behind round-robin split/join.
    DataParallel,
    /// Serial: never replicated (state carries across iterations in an
    /// order-dependent way), e.g. the histogram merge.
    Serial,
    /// Storage-bound buffer: parallelized by column-wise splitting with halo
    /// replication (§IV-C, Fig. 10) rather than by round-robin.
    ColumnSplit,
}

/// Static description of a kernel.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Kernel type name (e.g. `"conv2d"`), for reports and diagnostics.
    pub kind: String,
    /// Structural role of the node.
    pub role: NodeRole,
    /// Parameterized inputs.
    pub inputs: Vec<InputSpec>,
    /// Parameterized outputs.
    pub outputs: Vec<OutputSpec>,
    /// Registered methods.
    pub methods: Vec<MethodSpec>,
    /// Parallelization class.
    pub parallelism: Parallelism,
    /// Persistent private state in words (in addition to per-method working
    /// memory), e.g. the coefficient array or histogram bins.
    pub state_words: u64,
    /// User-defined control tokens this kernel may emit (§II-C).
    pub custom_tokens: Vec<CustomTokenDecl>,
    /// How the node transforms the logical data shape (§III-A).
    pub shape: ShapeTransform,
    /// Items this kernel's initialization primes into its output channels
    /// before any input arrives (§III-D feedback kernels emit one frame of
    /// initial values). This is the loop population the capacity derivation
    /// (`bp_core::capacity`) must make room for; 0 for ordinary kernels.
    pub initial_tokens: u64,
}

impl KernelSpec {
    /// A new user kernel spec with the given type name.
    pub fn new(kind: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            role: NodeRole::User,
            inputs: Vec::new(),
            outputs: Vec::new(),
            methods: Vec::new(),
            parallelism: Parallelism::DataParallel,
            state_words: 0,
            custom_tokens: Vec::new(),
            shape: ShapeTransform::Windowed,
            initial_tokens: 0,
        }
    }

    /// Set the node role.
    pub fn with_role(mut self, role: NodeRole) -> Self {
        self.role = role;
        self
    }

    /// Add an input.
    pub fn input(mut self, i: InputSpec) -> Self {
        self.inputs.push(i);
        self
    }

    /// Add an output.
    pub fn output(mut self, o: OutputSpec) -> Self {
        self.outputs.push(o);
        self
    }

    /// Register a method.
    pub fn method(mut self, m: MethodSpec) -> Self {
        self.methods.push(m);
        self
    }

    /// Set the parallelization class.
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Set the persistent state footprint.
    pub fn with_state_words(mut self, words: u64) -> Self {
        self.state_words = words;
        self
    }

    /// Declare a custom control token.
    pub fn custom_token(mut self, decl: CustomTokenDecl) -> Self {
        self.custom_tokens.push(decl);
        self
    }

    /// Set the logical shape transform.
    pub fn with_shape(mut self, shape: ShapeTransform) -> Self {
        self.shape = shape;
        self
    }

    /// Declare how many items this kernel's initialization primes into its
    /// outputs before any input arrives (the feedback-loop population).
    pub fn with_initial_tokens(mut self, items: u64) -> Self {
        self.initial_tokens = items;
        self
    }

    /// Index of the input port with the given name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|i| i.name == name)
    }

    /// Index of the output port with the given name.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|o| o.name == name)
    }

    /// Index of the method with the given name.
    pub fn method_index(&self, name: &str) -> Option<usize> {
        self.methods.iter().position(|m| m.name == name)
    }

    /// Total memory footprint of one instance: persistent state plus the
    /// maximum working memory over all methods, plus the implicit one-
    /// iteration I/O buffers on every port (§II-A).
    pub fn memory_words(&self) -> u64 {
        let working = self
            .methods
            .iter()
            .map(|m| m.cost.memory_words)
            .max()
            .unwrap_or(0);
        let io: u64 = self
            .inputs
            .iter()
            .map(|i| i.size.area())
            .chain(self.outputs.iter().map(|o| o.size.area()))
            .sum();
        self.state_words + working + io
    }

    /// The worst-case cycles of any single method, used for coarse estimates.
    pub fn max_method_cycles(&self) -> u64 {
        self.methods
            .iter()
            .map(|m| m.cost.cycles)
            .max()
            .unwrap_or(0)
    }
}

/// Items consumed by one method firing, keyed by input port index.
pub struct FireData<'a> {
    items: &'a [(usize, Item)],
    spec: &'a KernelSpec,
}

impl<'a> FireData<'a> {
    /// Build from consumed `(input index, item)` pairs.
    pub fn new(spec: &'a KernelSpec, items: &'a [(usize, Item)]) -> Self {
        Self { items, spec }
    }

    /// The consumed item on the named input. Panics if the input was not
    /// part of this firing's trigger set — that is an executor bug.
    pub fn item(&self, input: &str) -> &Item {
        let idx = self
            .spec
            .input_index(input)
            .unwrap_or_else(|| panic!("kernel {} has no input {input}", self.spec.kind));
        self.items
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, it)| it)
            .unwrap_or_else(|| panic!("input {input} was not consumed by this firing"))
    }

    /// The consumed data window on the named input. Panics if the firing
    /// consumed a control token there.
    pub fn window(&self, input: &str) -> &Window {
        self.item(input)
            .window()
            .unwrap_or_else(|| panic!("input {input} received a control token, not data"))
    }

    /// The consumed control token on the named input.
    pub fn token(&self, input: &str) -> ControlToken {
        self.item(input)
            .control()
            .unwrap_or_else(|| panic!("input {input} received data, not a control token"))
    }

    /// Raw consumed `(input index, item)` pairs.
    pub fn raw(&self) -> &[(usize, Item)] {
        self.items
    }

    /// The consumed item on the input with the given index — the
    /// name-free counterpart of [`item`](Self::item), used by
    /// [`KernelBehavior::fire_fast`] implementations. Panics if the input
    /// was not part of this firing's trigger set.
    #[inline]
    pub fn item_at(&self, input_idx: usize) -> &Item {
        self.items
            .iter()
            .find(|(i, _)| *i == input_idx)
            .map(|(_, it)| it)
            .unwrap_or_else(|| panic!("input index {input_idx} was not consumed by this firing"))
    }

    /// The consumed data window on the input with the given index.
    #[inline]
    pub fn window_at(&self, input_idx: usize) -> &Window {
        self.item_at(input_idx)
            .window()
            .unwrap_or_else(|| panic!("input index {input_idx} received a control token, not data"))
    }

    /// The consumed control token on the input with the given index.
    #[inline]
    pub fn token_at(&self, input_idx: usize) -> ControlToken {
        self.item_at(input_idx)
            .control()
            .unwrap_or_else(|| panic!("input index {input_idx} received data, not a control token"))
    }
}

/// Collects items emitted by one method firing, keyed by output port index.
pub struct Emitter<'a> {
    spec: &'a KernelSpec,
    emitted: Vec<(usize, Item)>,
    actual_cycles: Option<u64>,
}

impl<'a> Emitter<'a> {
    /// New empty emitter for a kernel.
    pub fn new(spec: &'a KernelSpec) -> Self {
        Self::with_buffer(spec, Vec::new())
    }

    /// New emitter backed by a recycled buffer, so steady-state firing
    /// reuses one allocation per node instead of allocating per firing.
    /// The buffer is cleared; [`into_parts`](Self::into_parts) returns it.
    pub fn with_buffer(spec: &'a KernelSpec, mut buf: Vec<(usize, Item)>) -> Self {
        buf.clear();
        Self {
            spec,
            emitted: buf,
            actual_cycles: None,
        }
    }

    /// Report this firing's *actual* data-dependent cycle count, overriding
    /// the method's declared cost in the timed simulator. The declared cost
    /// remains the compile-time budget; a firing that reports more than its
    /// budget raises a runtime resource exception in the simulation report
    /// (§VII's motion-vector-search scenario: per-iteration work that
    /// varies with the data).
    pub fn report_cycles(&mut self, cycles: u64) {
        self.actual_cycles = Some(cycles);
    }

    /// Emit a data window on the named output.
    pub fn window(&mut self, output: &str, w: Window) {
        let idx = self
            .spec
            .output_index(output)
            .unwrap_or_else(|| panic!("kernel {} has no output {output}", self.spec.kind));
        self.emitted.push((idx, Item::Window(w)));
    }

    /// Emit a control token on the named output.
    pub fn token(&mut self, output: &str, t: ControlToken) {
        let idx = self
            .spec
            .output_index(output)
            .unwrap_or_else(|| panic!("kernel {} has no output {output}", self.spec.kind));
        self.emitted.push((idx, Item::Control(t)));
    }

    /// Emit an item by output index (used by generic forwarding code).
    pub fn item_at(&mut self, output_idx: usize, item: Item) {
        assert!(
            output_idx < self.spec.outputs.len(),
            "output index out of range"
        );
        self.emitted.push((output_idx, item));
    }

    /// Emit a data window by output index — the name-free counterpart of
    /// [`window`](Self::window), used by [`KernelBehavior::fire_fast`]
    /// implementations.
    #[inline]
    pub fn window_at(&mut self, output_idx: usize, w: Window) {
        debug_assert!(
            output_idx < self.spec.outputs.len(),
            "output index out of range"
        );
        self.emitted.push((output_idx, Item::Window(w)));
    }

    /// Emit a control token by output index.
    #[inline]
    pub fn token_at(&mut self, output_idx: usize, t: ControlToken) {
        debug_assert!(
            output_idx < self.spec.outputs.len(),
            "output index out of range"
        );
        self.emitted.push((output_idx, Item::Control(t)));
    }

    /// The emitted `(output index, item)` pairs, in emission order.
    pub fn into_items(self) -> Vec<(usize, Item)> {
        self.emitted
    }

    /// The emitted items plus the reported actual cycle count, if any.
    pub fn into_parts(self) -> (Vec<(usize, Item)>, Option<u64>) {
        (self.emitted, self.actual_cycles)
    }
}

/// Executable kernel state: the method bodies.
///
/// The executor calls [`fire`](Self::fire) when a method's trigger set is
/// satisfied *and* [`ready`](Self::ready) returns true; the consumed items
/// arrive in `data`, and outputs are written through `out`. Methods of the
/// same kernel share `self` — the paper's "methods share data private to the
/// kernel".
pub trait KernelBehavior: Send {
    /// Execute the named method.
    fn fire(&mut self, method: &str, data: &FireData<'_>, out: &mut Emitter<'_>);

    /// Index-dispatched fast path for the compiled backend: execute the
    /// method with the given *spec index* (position in
    /// [`KernelSpec::methods`]) and return `true`, or return `false` to
    /// fall back to the name-dispatched [`fire`](Self::fire).
    ///
    /// An implementation MUST be observationally identical to `fire` on
    /// the same method — same emissions in the same order, same state
    /// mutation, same reported cycles — because the interpreted backend
    /// only ever calls `fire` and the two backends are required to produce
    /// bit-identical simulation fingerprints. Implementations switch on
    /// the method index and use the `*_at` index accessors on
    /// [`FireData`] / [`Emitter`] to skip the per-firing name lookups.
    /// The default keeps every existing kernel on the name path.
    #[inline]
    fn fire_fast(&mut self, _method: usize, _data: &FireData<'_>, _out: &mut Emitter<'_>) -> bool {
        false
    }

    /// Additional firing gate beyond trigger satisfaction. Used by FSM
    /// kernels (round-robin joins take inputs in order) and by kernels with
    /// initialization ordering (a convolution is not ready until its
    /// coefficients are loaded). Defaults to always ready.
    fn ready(&self, _method: &str) -> bool {
        true
    }

    /// Index-dispatched counterpart of [`ready`](Self::ready) for the
    /// compiled backend's planner: `Some(r)` answers the gate for the
    /// method with the given spec index, `None` (the default) falls back
    /// to the name-dispatched `ready`. Implementations MUST agree with
    /// `ready` on every method — the planners of the two backends are
    /// required to make identical decisions.
    #[inline]
    fn ready_fast(&self, _method: usize) -> Option<bool> {
        None
    }
}

/// Factory producing fresh behavior instances, so replication yields
/// independent private state.
pub type BehaviorFactory = Arc<dyn Fn() -> Box<dyn KernelBehavior> + Send + Sync>;

/// A complete kernel definition: spec plus behavior factory. This is what
/// kernel libraries hand to [`GraphBuilder::add`](crate::graph::GraphBuilder).
#[derive(Clone)]
pub struct KernelDef {
    /// Static description.
    pub spec: KernelSpec,
    /// Behavior factory.
    pub factory: BehaviorFactory,
}

impl KernelDef {
    /// Bundle a spec with a behavior constructor.
    pub fn new<B, F>(spec: KernelSpec, make: F) -> Self
    where
        B: KernelBehavior + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        Self {
            spec,
            factory: Arc::new(move || Box::new(make())),
        }
    }
}

impl std::fmt::Debug for KernelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDef")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// Convenience helper: sum of data words read by one firing of `method`
/// given the kernel spec (tokens are free). Used for I/O time accounting.
pub fn method_read_words(spec: &KernelSpec, method: &MethodSpec) -> u64 {
    method
        .trigger_inputs()
        .filter_map(|n| spec.input_index(n))
        .map(|i| spec.inputs[i].size.area())
        .sum()
}

/// Upper bound on data words written by one firing of `method`.
pub fn method_write_words(spec: &KernelSpec, method: &MethodSpec) -> u64 {
    method
        .outputs
        .iter()
        .filter_map(|n| spec.output_index(n))
        .map(|o| spec.outputs[o].size.area())
        .sum()
}

/// Data dimensions helper re-export for kernel implementors.
pub fn dim(w: u32, h: u32) -> Dim2 {
    Dim2::new(w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodCost;
    use crate::port::{InputSpec, OutputSpec};

    fn conv_like_spec() -> KernelSpec {
        KernelSpec::new("conv2d")
            .input(InputSpec::windowed(
                "in",
                Dim2::new(5, 5),
                crate::geometry::Step2::ONE,
            ))
            .input(InputSpec::block("coeff", Dim2::new(5, 5)).replicated())
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::on_data(
                "runConvolve",
                "in",
                vec!["out".into()],
                MethodCost::new(85, 25),
            ))
            .method(MethodSpec::on_data(
                "loadCoeff",
                "coeff",
                vec![],
                MethodCost::new(60, 25),
            ))
            .with_state_words(25)
    }

    #[test]
    fn index_lookups() {
        let s = conv_like_spec();
        assert_eq!(s.input_index("in"), Some(0));
        assert_eq!(s.input_index("coeff"), Some(1));
        assert_eq!(s.input_index("nope"), None);
        assert_eq!(s.output_index("out"), Some(0));
        assert_eq!(s.method_index("loadCoeff"), Some(1));
    }

    #[test]
    fn memory_accounting_includes_state_working_and_io() {
        let s = conv_like_spec();
        // state 25 + working max(25,25) + io (25 + 25 + 1)
        assert_eq!(s.memory_words(), 25 + 25 + 51);
        assert_eq!(s.max_method_cycles(), 85);
    }

    #[test]
    fn io_word_counts() {
        let s = conv_like_spec();
        let run = &s.methods[0];
        assert_eq!(method_read_words(&s, run), 25);
        assert_eq!(method_write_words(&s, run), 1);
        let load = &s.methods[1];
        assert_eq!(method_read_words(&s, load), 25);
        assert_eq!(method_write_words(&s, load), 0);
    }

    #[test]
    fn emitter_records_in_order() {
        let s = conv_like_spec();
        let mut e = Emitter::new(&s);
        e.window("out", Window::scalar(1.0));
        e.token("out", ControlToken::EndOfFrame);
        let items = e.into_items();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 0);
        assert!(items[0].1.is_window());
        assert!(!items[1].1.is_window());
    }

    #[test]
    fn fire_data_lookup() {
        let s = conv_like_spec();
        let items = vec![(0usize, Item::Window(Window::filled(Dim2::new(5, 5), 2.0)))];
        let d = FireData::new(&s, &items);
        assert_eq!(d.window("in").get(0, 0), 2.0);
        assert_eq!(d.raw().len(), 1);
    }

    #[test]
    #[should_panic(expected = "was not consumed")]
    fn fire_data_missing_input_panics() {
        let s = conv_like_spec();
        let items: Vec<(usize, Item)> = vec![];
        let d = FireData::new(&s, &items);
        let _ = d.window("in");
    }

    #[test]
    fn plumbing_roles() {
        assert!(NodeRole::Buffer.is_plumbing());
        assert!(NodeRole::Split.is_plumbing());
        assert!(!NodeRole::User.is_plumbing());
        assert!(!NodeRole::Source.is_plumbing());
    }
}
