//! Control tokens (§II-C).
//!
//! Besides data, channels carry in-order *control tokens*. The application
//! inputs generate `EndOfLine` and `EndOfFrame` automatically; kernels may
//! define their own `Custom` tokens as long as they declare the maximum rate
//! at which they can be generated, so the compiler can budget resources for
//! handling them.

/// A control token traveling in-order with the data on a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlToken {
    /// Emitted by an application input after the last pixel of each row.
    EndOfLine,
    /// Emitted by an application input after the last pixel of each frame.
    EndOfFrame,
    /// A user-defined token, identified by a small id registered on the
    /// kernel that produces it.
    Custom(u16),
}

impl ControlToken {
    /// The kind of this token, used for method trigger matching.
    pub fn kind(&self) -> TokenKind {
        match self {
            ControlToken::EndOfLine => TokenKind::EndOfLine,
            ControlToken::EndOfFrame => TokenKind::EndOfFrame,
            ControlToken::Custom(id) => TokenKind::Custom(*id),
        }
    }
}

impl std::fmt::Display for ControlToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlToken::EndOfLine => write!(f, "EOL"),
            ControlToken::EndOfFrame => write!(f, "EOF"),
            ControlToken::Custom(id) => write!(f, "CTL({id})"),
        }
    }
}

/// Token kinds a method trigger can match on. Identical to [`ControlToken`]
/// today, but kept separate so matching stays decoupled from payloads if
/// tokens ever grow data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Matches [`ControlToken::EndOfLine`].
    EndOfLine,
    /// Matches [`ControlToken::EndOfFrame`].
    EndOfFrame,
    /// Matches [`ControlToken::Custom`] with the same id.
    Custom(u16),
}

/// Declaration of a user-defined control token: its id and the statically
/// bounded maximum rate at which the declaring kernel may emit it. The
/// compiler uses the bound to allocate cycles for downstream handlers
/// (§II-C).
#[derive(Clone, Debug, PartialEq)]
pub struct CustomTokenDecl {
    /// Token id carried by [`ControlToken::Custom`].
    pub id: u16,
    /// Human-readable name for reports.
    pub name: String,
    /// Maximum emissions per second, statically guaranteed by the kernel.
    pub max_rate_hz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        assert_eq!(ControlToken::EndOfLine.kind(), TokenKind::EndOfLine);
        assert_eq!(ControlToken::EndOfFrame.kind(), TokenKind::EndOfFrame);
        assert_eq!(ControlToken::Custom(7).kind(), TokenKind::Custom(7));
        assert_ne!(ControlToken::Custom(7).kind(), TokenKind::Custom(8));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ControlToken::EndOfLine.to_string(), "EOL");
        assert_eq!(ControlToken::EndOfFrame.to_string(), "EOF");
        assert_eq!(ControlToken::Custom(3).to_string(), "CTL(3)");
    }
}
