//! A small, dependency-free deterministic RNG.
//!
//! The repository runs in hermetic environments where crates.io is not
//! reachable, so everything that needs randomness — the salt-and-pepper
//! noise plans, the placement annealer, and the randomized test suites —
//! shares this one splitmix64/xoshiro256** generator instead of pulling in
//! the `rand` crate. Determinism in the seed is part of the contract:
//! noise plans and placements are reproducible across runs and platforms.

/// xoshiro256** seeded via splitmix64 — fast, tiny state, good statistical
/// quality for simulation workloads.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (splitmix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `[0, n)`. Panics when `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the small ranges used here and determinism is what matters.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`. Panics when the range is empty.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "gen_range_u32 on empty range");
        lo + self.gen_index((hi - lo) as usize) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn index_in_bounds_and_covers() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..1_000 {
            let v = r.gen_range_u32(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = Rng64::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4000..6000).contains(&trues), "trues = {trues}");
    }
}
