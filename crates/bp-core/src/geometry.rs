//! Two-dimensional geometry for windowed stream access.
//!
//! The block-parallel model parameterizes every kernel input and output by a
//! window *size* (`Dim2`), a *step* (`Step2`) describing how far the window
//! advances per iteration in X and Y, and an *offset* (`Offset2`) from the
//! window origin to the produced output sample. Together with the fixed
//! scan-line data order (left-to-right, top-to-bottom) these fully determine
//! data movement, reuse, and iteration counts — the key simplification the
//! paper makes relative to fully general multidimensional dataflow.

/// A two-dimensional extent in samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dim2 {
    /// Width in samples.
    pub w: u32,
    /// Height in samples (rows).
    pub h: u32,
}

impl Dim2 {
    /// Construct a new extent.
    pub const fn new(w: u32, h: u32) -> Self {
        Self { w, h }
    }

    /// A 1×1 extent (single sample), the grain of raw pixel streams.
    pub const ONE: Dim2 = Dim2 { w: 1, h: 1 };

    /// Total number of samples covered.
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True when either dimension is zero.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }
}

impl std::fmt::Display for Dim2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}x{})", self.w, self.h)
    }
}

/// Per-iteration window advance in X and Y.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step2 {
    /// Advance per iteration along the scan line.
    pub x: u32,
    /// Advance per row of iterations.
    pub y: u32,
}

impl Step2 {
    /// Construct a new step.
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Unit step: window slides one sample at a time (maximal reuse).
    pub const ONE: Step2 = Step2 { x: 1, y: 1 };
}

impl std::fmt::Display for Step2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.x, self.y)
    }
}

/// Offset from the upper-left corner of an input window to the location of
/// the output sample it produces, in input-sample units.
///
/// Fractional offsets are permitted for downsampling kernels (§II-A of the
/// paper), hence `f64` components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Offset2 {
    /// Offset along the scan line.
    pub x: f64,
    /// Offset across rows.
    pub y: f64,
}

impl Offset2 {
    /// Construct a new offset.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Zero offset: output aligned with the window origin.
    pub const ZERO: Offset2 = Offset2 { x: 0.0, y: 0.0 };

    /// The centered offset for a window of the given size: `floor(size/2)`,
    /// matching the convolution example in the paper (`[2.0, 2.0]` for 5×5).
    pub fn centered(size: Dim2) -> Self {
        Self {
            x: (size.w / 2) as f64,
            y: (size.h / 2) as f64,
        }
    }
}

impl std::fmt::Display for Offset2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.1},{:.1}]", self.x, self.y)
    }
}

/// The *halo* of a windowed access: `size - step` in each dimension.
///
/// A 5×5 window with step (1,1) has a 4×4 halo: its iteration grid is 4
/// smaller than the data in each dimension, so the output shrinks by the halo
/// (§III-A).
pub const fn halo(size: Dim2, step: Step2) -> Dim2 {
    Dim2 {
        w: size.w.saturating_sub(step.x),
        h: size.h.saturating_sub(step.y),
    }
}

/// Number of iterations a window of `size` advancing by `step` performs over
/// `data`, or `None` when the window does not fit or the stride does not
/// tile the data exactly.
///
/// `iters = (data - size) / step + 1` per dimension; the paper's data-flow
/// analysis (§III-A) requires the division to be exact so that rates stay
/// statically known.
pub fn iterations(data: Dim2, size: Dim2, step: Step2) -> Option<Dim2> {
    if step.x == 0 || step.y == 0 {
        return None;
    }
    if data.w < size.w || data.h < size.h {
        return None;
    }
    let rx = data.w - size.w;
    let ry = data.h - size.h;
    if !rx.is_multiple_of(step.x) || !ry.is_multiple_of(step.y) {
        return None;
    }
    Some(Dim2::new(rx / step.x + 1, ry / step.y + 1))
}

/// Steady-state data reuse fraction for a windowed input: the share of the
/// window that was already present in the previous iteration once both row
/// and column reuse are available.
///
/// For the paper's 5×5 convolution with step (1,1) this is 24/25 (Fig. 5):
/// each steady-state iteration introduces only `step.x * step.y` new samples.
pub fn steady_state_reuse(size: Dim2, step: Step2) -> f64 {
    let total = size.area() as f64;
    if total == 0.0 {
        return 0.0;
    }
    let fresh = (step.x.min(size.w) as u64 * step.y.min(size.h) as u64) as f64;
    ((total - fresh) / total).max(0.0)
}

/// Number of fresh samples required per iteration in the steady state.
pub fn fresh_samples_per_iteration(size: Dim2, step: Step2) -> u64 {
    step.x.min(size.w) as u64 * step.y.min(size.h) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_display() {
        let d = Dim2::new(5, 5);
        assert_eq!(d.area(), 25);
        assert_eq!(d.to_string(), "(5x5)");
        assert_eq!(Step2::ONE.to_string(), "[1,1]");
        assert_eq!(Offset2::new(2.0, 2.0).to_string(), "[2.0,2.0]");
    }

    #[test]
    fn halo_matches_paper() {
        // 5x5 window, unit step: 4x4 halo (§III-A).
        assert_eq!(halo(Dim2::new(5, 5), Step2::ONE), Dim2::new(4, 4));
        // 3x3 median: 2x2 halo.
        assert_eq!(halo(Dim2::new(3, 3), Step2::ONE), Dim2::new(2, 2));
        // Non-reusing input (step == size): zero halo.
        assert_eq!(halo(Dim2::new(5, 5), Step2::new(5, 5)), Dim2::new(0, 0));
    }

    #[test]
    fn iteration_counts_match_paper_example() {
        // 100x100 input into a 5x5 convolution: 96x96 iterations (§III-A).
        assert_eq!(
            iterations(Dim2::new(100, 100), Dim2::new(5, 5), Step2::ONE),
            Some(Dim2::new(96, 96))
        );
    }

    #[test]
    fn iterations_rejects_nonfitting_windows() {
        assert_eq!(
            iterations(Dim2::new(4, 4), Dim2::new(5, 5), Step2::ONE),
            None
        );
        // Stride does not tile: (10-4)=6 not divisible by 4.
        assert_eq!(
            iterations(Dim2::new(10, 10), Dim2::new(4, 4), Step2::new(4, 4)),
            None
        );
        assert_eq!(
            iterations(Dim2::new(10, 10), Dim2::new(2, 2), Step2::new(2, 2)),
            Some(Dim2::new(5, 5))
        );
        assert_eq!(iterations(Dim2::ONE, Dim2::ONE, Step2::new(0, 1)), None);
    }

    #[test]
    fn reuse_fraction_matches_fig5() {
        // 24 of 25 elements reused for the 5x5 step-(1,1) convolution.
        let r = steady_state_reuse(Dim2::new(5, 5), Step2::ONE);
        assert!((r - 24.0 / 25.0).abs() < 1e-12);
        // Coefficient-style input (step == size): no reuse.
        assert_eq!(steady_state_reuse(Dim2::new(5, 5), Step2::new(5, 5)), 0.0);
        assert_eq!(fresh_samples_per_iteration(Dim2::new(5, 5), Step2::ONE), 1);
        assert_eq!(
            fresh_samples_per_iteration(Dim2::new(5, 5), Step2::new(5, 5)),
            25
        );
    }

    #[test]
    fn reuse_of_empty_window_is_zero() {
        assert_eq!(steady_state_reuse(Dim2::new(0, 0), Step2::ONE), 0.0);
    }
}
