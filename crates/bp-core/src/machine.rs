//! Target machine description and kernel-to-processor mappings.
//!
//! The paper's analyses consume a small set of per-processing-element
//! scalars: compute capacity (cycles/second), local storage, and per-word
//! data access cost. The compiler sizes parallelism against these and the
//! timing-accurate simulator charges them per firing.

/// Description of one target many-core machine's processing elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Compute capacity per PE in cycles per second.
    pub pe_clock_hz: f64,
    /// Local storage per PE in words.
    pub pe_memory_words: u64,
    /// Cycles charged per word read from a kernel input. Fractional values
    /// model PEs that move several words per cycle from local storage.
    pub read_cost_per_word: f64,
    /// Cycles charged per word written to a kernel output.
    pub write_cost_per_word: f64,
    /// Fraction of a PE's cycles the compiler may budget (headroom guard
    /// against scheduling jitter); 1.0 = budget the full PE.
    pub utilization_cap: f64,
}

impl MachineSpec {
    /// The default evaluation machine used throughout the reproduction:
    /// 1 MHz PEs with 320 words of local storage, moving a 16-word line per
    /// cycle to/from local storage (0.0625 cycles per word). These constants are
    /// tuned (see DESIGN.md §6) so the running example reproduces the
    /// paper's Fig. 4 replica counts and so split/join FSMs — which copy
    /// whole windows — stay below one PE at the evaluated rates.
    pub fn default_eval() -> Self {
        Self {
            pe_clock_hz: 1_000_000.0,
            pe_memory_words: 320,
            read_cost_per_word: 0.0625,
            write_cost_per_word: 0.0625,
            utilization_cap: 0.95,
        }
    }

    /// Usable cycles per second after the utilization cap.
    pub fn usable_cycles_per_sec(&self) -> f64 {
        self.pe_clock_hz * self.utilization_cap
    }

    /// A machine with `factor`× the default PE clock (sensitivity sweeps).
    pub fn scaled_clock(factor: f64) -> Self {
        Self {
            pe_clock_hz: 1_000_000.0 * factor,
            ..Self::default_eval()
        }
    }

    /// A storage-starved machine: 60% of the default local memory — still
    /// enough for every kernel instance, but line buffers split earlier.
    pub fn tight_memory() -> Self {
        Self {
            pe_memory_words: 192,
            ..Self::default_eval()
        }
    }

    /// A machine with a narrow (1 word/cycle) local-store port, making data
    /// movement as expensive as the paper's FSM kernels can tolerate.
    pub fn narrow_port() -> Self {
        Self {
            read_cost_per_word: 1.0,
            write_cost_per_word: 1.0,
            ..Self::default_eval()
        }
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::default_eval()
    }
}

/// Configurable inter-PE communication delay model.
///
/// The paper's timed simulator assumes a zero-delay network (§IV-D); this
/// model adds the three terms a mesh-style many-core actually charges:
///
/// * a **base latency** per message between distinct PEs,
/// * a **per-hop** term scaled by the Manhattan distance between the PEs'
///   grid coordinates (placement-aware when [`coords`](Self::coords) is
///   set, otherwise a row-major square mesh is derived from the PE count),
/// * a **per-word serialization** cost: each item occupies its link for
///   `words * per_word_s`, delaying both its own arrival and the next
///   item's departure (store-and-forward).
///
/// Two nodes mapped to the *same* PE exchange data through local memory,
/// which the per-firing word costs already charge, so their channel
/// latency is zero. [`CommModel::zero`] (the `Default`) disables the model
/// entirely and reproduces the paper's original semantics bit for bit.
///
/// A positive minimum latency is also what gives the parallel simulator
/// *lookahead*: events cannot affect another PE sooner than the channel
/// latency, so shards may safely advance that far without synchronizing.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CommModel {
    /// Seconds of latency charged to every inter-PE message.
    pub base_latency_s: f64,
    /// Seconds of link occupancy per word of payload (bandwidth term).
    pub per_word_s: f64,
    /// Additional seconds per grid hop between the two PEs.
    pub per_hop_s: f64,
    /// Optional per-PE grid coordinates (from a placement); when absent,
    /// hop counts come from a derived row-major square mesh.
    pub coords: Option<Vec<(u32, u32)>>,
}

impl CommModel {
    /// The zero-delay network of the paper: all latencies are 0 and both
    /// timed engines behave exactly as they did without a model.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Distance-independent model: every inter-PE message takes
    /// `base_latency_s` plus its serialization time.
    pub fn uniform(base_latency_s: f64, per_word_s: f64) -> Self {
        Self {
            base_latency_s,
            per_word_s,
            ..Self::default()
        }
    }

    /// Grid model: `base_latency_s + per_hop_s * hops` per message, with
    /// hops the Manhattan distance on the PE grid.
    pub fn grid(base_latency_s: f64, per_hop_s: f64, per_word_s: f64) -> Self {
        Self {
            base_latency_s,
            per_word_s,
            per_hop_s,
            ..Self::default()
        }
    }

    /// Attach explicit PE grid coordinates (e.g. from an annealed
    /// placement) for the per-hop term.
    pub fn with_coords(mut self, coords: Vec<(u32, u32)>) -> Self {
        self.coords = Some(coords);
        self
    }

    /// True when the model can never delay anything (every latency is 0).
    pub fn is_zero(&self) -> bool {
        self.base_latency_s <= 0.0 && self.per_word_s <= 0.0 && self.per_hop_s <= 0.0
    }

    /// Manhattan hop count between two PEs: explicit coordinates when
    /// provided, else positions in a derived row-major square mesh of
    /// `ceil(sqrt(num_pes))` columns.
    pub fn hops(&self, src_pe: usize, dst_pe: usize, num_pes: usize) -> u32 {
        let at = |pe: usize| -> (u32, u32) {
            if let Some(coords) = &self.coords {
                if let Some(&c) = coords.get(pe) {
                    return c;
                }
            }
            let w = (num_pes.max(1) as f64).sqrt().ceil() as usize;
            ((pe % w) as u32, (pe / w) as u32)
        };
        let (sx, sy) = at(src_pe);
        let (dx, dy) = at(dst_pe);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// Latency in seconds for one message from `src_pe` to `dst_pe`
    /// (excluding serialization): 0 on the same PE, otherwise
    /// `base + per_hop * hops`.
    pub fn channel_latency_s(&self, src_pe: usize, dst_pe: usize, num_pes: usize) -> f64 {
        if src_pe == dst_pe {
            return 0.0;
        }
        let lat = self.base_latency_s + self.per_hop_s * self.hops(src_pe, dst_pe, num_pes) as f64;
        lat.max(0.0)
    }

    /// Calibrate a distance-independent model from traced channel-dwell
    /// statistics ([`CommProfile`]): the base latency is the *minimum*
    /// observed push-to-consume dwell — the fastest hand-off the traced
    /// run achieved, so the calibrated model never claims a link faster
    /// than anything actually measured, and stays conservative as a
    /// parallel-simulation lookahead. An empty profile yields
    /// [`CommModel::zero`].
    pub fn from_profile(profile: &CommProfile) -> Self {
        if profile.samples == 0 {
            return Self::zero();
        }
        Self::uniform(profile.min_dwell_s.max(0.0), 0.0)
    }
}

/// Aggregate push-to-consume dwell statistics for inter-PE channels,
/// collected from a deterministic trace (`Trace::comm_profile` in bp-sim)
/// and folded into measured latency constants by
/// [`CommModel::from_profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommProfile {
    /// Number of matched push/consume pairs.
    pub samples: u64,
    /// Smallest observed dwell in seconds.
    pub min_dwell_s: f64,
    /// Sum of observed dwells in seconds (for the mean).
    pub sum_dwell_s: f64,
}

impl CommProfile {
    /// Fold one observed dwell into the aggregate.
    pub fn push(&mut self, dwell_s: f64) {
        if self.samples == 0 || dwell_s < self.min_dwell_s {
            self.min_dwell_s = dwell_s;
        }
        self.samples += 1;
        self.sum_dwell_s += dwell_s;
    }

    /// Mean dwell over all samples (0 when empty).
    pub fn mean_dwell_s(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_dwell_s / self.samples as f64
        }
    }
}

/// Assignment of graph nodes to processing elements.
///
/// Produced by the multiplexing pass (§V): either the naive 1:1 mapping or
/// the greedy merged mapping. PE indices are dense in `0..num_pes`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// `pe_of_node[node_id] = pe index`.
    pub pe_of_node: Vec<usize>,
    /// Number of PEs used.
    pub num_pes: usize,
}

impl Mapping {
    /// The 1:1 mapping for a graph with `n` nodes.
    pub fn one_to_one(n: usize) -> Self {
        Self {
            pe_of_node: (0..n).collect(),
            num_pes: n,
        }
    }

    /// Build from an explicit assignment, renumbering PEs densely.
    pub fn from_assignment(assign: Vec<usize>) -> Self {
        let mut remap: Vec<Option<usize>> = vec![None; assign.iter().max().map_or(0, |m| m + 1)];
        let mut next = 0usize;
        let mut pe_of_node = Vec::with_capacity(assign.len());
        for a in assign {
            let pe = *remap[a].get_or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            pe_of_node.push(pe);
        }
        Self {
            pe_of_node,
            num_pes: next,
        }
    }

    /// Nodes resident on each PE.
    pub fn residents(&self) -> Vec<Vec<usize>> {
        let mut v = vec![Vec::new(); self.num_pes];
        for (node, &pe) in self.pe_of_node.iter().enumerate() {
            v[pe].push(node);
        }
        v
    }
}

/// Assignment of processing elements to simulation shards.
///
/// Two PEs must share a shard whenever the mapped application can make them
/// interact: an item routed between nodes on them, or back-pressure (a
/// firing on one frees queue space that re-dispatches the other). Both
/// follow channel edges, so the interaction regions are exactly the weakly
/// connected components of the mapped channel graph projected onto PEs.
/// Components are balanced across at most `max_shards` shards
/// longest-processing-time first, deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPlan {
    /// `shard_of_pe[pe] = shard index`, dense in `0..num_shards`.
    pub shard_of_pe: Vec<usize>,
    /// Number of shards actually used (≤ `max_shards`).
    pub num_shards: usize,
    /// Number of independent PE interaction regions found. Parallelism is
    /// capped by this: a fully connected application has one component and
    /// degrades to sequential execution.
    pub num_components: usize,
}

impl ShardPlan {
    /// Build a plan for `mapping` given the application's channel edges as
    /// `(src_node, dst_node)` pairs (node indices, as in
    /// [`Mapping::pe_of_node`]). Components are weighted by resident node
    /// count.
    pub fn build(mapping: &Mapping, node_edges: &[(usize, usize)], max_shards: usize) -> Self {
        Self::build_weighted(mapping, node_edges, max_shards, &[])
    }

    /// Like [`build`](Self::build), but weight each node by a measured
    /// per-node cost — e.g. traced event counts from a profiling pre-run —
    /// so the LPT balance reflects observed simulation work instead of
    /// resident-node count. `node_weights[i]` weights node `i`; missing or
    /// zero entries count as 1 (every component keeps nonzero weight, so
    /// an all-zero profile degrades to [`build`], not to one shard). An
    /// empty slice is exactly [`build`].
    pub fn build_weighted(
        mapping: &Mapping,
        node_edges: &[(usize, usize)],
        max_shards: usize,
        node_weights: &[u64],
    ) -> Self {
        let n = mapping.num_pes;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for &(a, b) in node_edges {
            let (pa, pb) = (mapping.pe_of_node[a], mapping.pe_of_node[b]);
            let (ra, rb) = (find(&mut parent, pa), find(&mut parent, pb));
            if ra != rb {
                // Union by smaller root index keeps labeling deterministic.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        }
        // Components in ascending root order; weight = sum of per-node
        // weights (resident node count when no profile is supplied).
        let mut comp_of_pe = vec![usize::MAX; n];
        let mut comp_pes: Vec<Vec<usize>> = Vec::new();
        let mut comp_weight: Vec<u64> = Vec::new();
        for pe in 0..n {
            let root = find(&mut parent, pe);
            if comp_of_pe[root] == usize::MAX {
                comp_of_pe[root] = comp_pes.len();
                comp_pes.push(Vec::new());
                comp_weight.push(0);
            }
            comp_of_pe[pe] = comp_of_pe[root];
            comp_pes[comp_of_pe[pe]].push(pe);
        }
        for (node, &pe) in mapping.pe_of_node.iter().enumerate() {
            let w = node_weights.get(node).copied().unwrap_or(1).max(1);
            comp_weight[comp_of_pe[pe]] += w;
        }
        let num_components = comp_pes.len();
        let num_shards = max_shards.clamp(1, num_components.max(1));
        // LPT assignment: heaviest component to the lightest shard, ties by
        // lower indices, so the plan is a pure function of its inputs.
        let mut order: Vec<usize> = (0..num_components).collect();
        order.sort_by(|&a, &b| comp_weight[b].cmp(&comp_weight[a]).then(a.cmp(&b)));
        let mut shard_load = vec![0u64; num_shards];
        let mut shard_of_pe = vec![0usize; n];
        for c in order {
            let shard = (0..num_shards).min_by_key(|&s| (shard_load[s], s)).unwrap();
            shard_load[shard] += comp_weight[c];
            for &pe in &comp_pes[c] {
                shard_of_pe[pe] = shard;
            }
        }
        Self {
            shard_of_pe,
            num_shards,
            num_components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_is_identity() {
        let m = Mapping::one_to_one(4);
        assert_eq!(m.num_pes, 4);
        assert_eq!(m.pe_of_node, vec![0, 1, 2, 3]);
    }

    #[test]
    fn from_assignment_renumbers_densely() {
        let m = Mapping::from_assignment(vec![5, 5, 9, 2]);
        assert_eq!(m.num_pes, 3);
        assert_eq!(m.pe_of_node, vec![0, 0, 1, 2]);
        let r = m.residents();
        assert_eq!(r[0], vec![0, 1]);
        assert_eq!(r[1], vec![2]);
        assert_eq!(r[2], vec![3]);
    }

    #[test]
    fn shard_plan_splits_disconnected_chains() {
        // Two chains of 3 nodes each, 1:1 mapped: nodes 0-1-2 and 3-4-5.
        let m = Mapping::one_to_one(6);
        let edges = [(0, 1), (1, 2), (3, 4), (4, 5)];
        let plan = ShardPlan::build(&m, &edges, 4);
        assert_eq!(plan.num_components, 2);
        assert_eq!(plan.num_shards, 2);
        // Each chain lands wholly in one shard, and the two differ.
        assert_eq!(plan.shard_of_pe[0], plan.shard_of_pe[1]);
        assert_eq!(plan.shard_of_pe[1], plan.shard_of_pe[2]);
        assert_eq!(plan.shard_of_pe[3], plan.shard_of_pe[4]);
        assert_ne!(plan.shard_of_pe[0], plan.shard_of_pe[3]);
    }

    #[test]
    fn shard_plan_connected_graph_is_one_shard() {
        let m = Mapping::one_to_one(4);
        let edges = [(0, 1), (1, 2), (2, 3)];
        let plan = ShardPlan::build(&m, &edges, 8);
        assert_eq!(plan.num_components, 1);
        assert_eq!(plan.num_shards, 1);
        assert!(plan.shard_of_pe.iter().all(|&s| s == 0));
    }

    #[test]
    fn shard_plan_balances_lpt_and_is_deterministic() {
        // Four singleton components with different weights (multiplexed
        // mapping: PE 0 hosts 3 nodes, PE 1 hosts 2, PEs 2 and 3 one each).
        let m = Mapping::from_assignment(vec![0, 0, 0, 1, 1, 2, 3]);
        let plan = ShardPlan::build(&m, &[], 2);
        assert_eq!(plan.num_components, 4);
        assert_eq!(plan.num_shards, 2);
        // LPT: 3 -> shard0, 2 -> shard1, 1 -> shard1, 1 -> shard0.
        assert_eq!(plan.shard_of_pe, vec![0, 1, 1, 0]);
        assert_eq!(plan, ShardPlan::build(&m, &[], 2));
    }

    #[test]
    fn zero_model_is_zero_everywhere() {
        let m = CommModel::zero();
        assert!(m.is_zero());
        assert_eq!(m.channel_latency_s(0, 5, 9), 0.0);
        assert_eq!(m, CommModel::default());
    }

    #[test]
    fn uniform_model_charges_base_between_distinct_pes_only() {
        let m = CommModel::uniform(2e-6, 1e-7);
        assert!(!m.is_zero());
        assert_eq!(
            m.channel_latency_s(3, 3, 16),
            0.0,
            "same PE is local memory"
        );
        assert_eq!(m.channel_latency_s(0, 15, 16), 2e-6);
        assert_eq!(m.channel_latency_s(15, 0, 16), 2e-6);
    }

    #[test]
    fn grid_model_uses_derived_mesh_and_explicit_coords() {
        let m = CommModel::grid(1e-6, 5e-7, 0.0);
        // 9 PEs -> 3x3 row-major mesh; PE 0 = (0,0), PE 8 = (2,2).
        assert_eq!(m.hops(0, 8, 9), 4);
        assert_eq!(m.channel_latency_s(0, 8, 9), 1e-6 + 4.0 * 5e-7);
        assert_eq!(m.channel_latency_s(0, 1, 9), 1e-6 + 5e-7);
        // Explicit coordinates override the derived mesh.
        let m = m.with_coords(vec![(0, 0), (7, 0)]);
        assert_eq!(m.hops(0, 1, 2), 7);
    }

    #[test]
    fn profile_calibration_uses_min_dwell() {
        let mut p = CommProfile::default();
        assert_eq!(CommModel::from_profile(&p), CommModel::zero());
        p.push(4e-6);
        p.push(2e-6);
        p.push(6e-6);
        assert_eq!(p.samples, 3);
        assert_eq!(p.min_dwell_s, 2e-6);
        assert!((p.mean_dwell_s() - 4e-6).abs() < 1e-18);
        let m = CommModel::from_profile(&p);
        assert_eq!(m.base_latency_s, 2e-6);
        assert_eq!(m.per_hop_s, 0.0);
        assert_eq!(m.per_word_s, 0.0);
    }

    #[test]
    fn usable_cycles_respects_cap() {
        let m = MachineSpec::default_eval();
        assert!(m.usable_cycles_per_sec() < m.pe_clock_hz);
        assert!((m.usable_cycles_per_sec() - 950_000.0).abs() < 1e-6);
    }
}
