//! Differential regression tests for the calendar queue under *sparse,
//! far-future* event mixes — the workload shape the communication delay
//! model introduces. Channel latencies push arrivals hundreds to millions
//! of quanta past the cursor (overflow-list territory), and credit
//! returns land at explicitly keyed `push_ord` times; both must pop in
//! exactly the order the reference binary heap produces.

use bp_core::Rng64;
use bp_sim::{BucketQueue, EventQueue, HeapQueue};

/// Drain both queues and assert identical `(t, seq, payload)` pop streams.
fn assert_identical_drain(mut bucket: BucketQueue<u32>, mut heap: HeapQueue<u32>, what: &str) {
    assert_eq!(bucket.len(), heap.len(), "{what}: length mismatch");
    let mut popped = 0usize;
    loop {
        match (bucket.pop(), heap.pop()) {
            (Some(b), Some(h)) => {
                assert_eq!(
                    (b.t.to_bits(), b.seq, b.payload),
                    (h.t.to_bits(), h.seq, h.payload),
                    "{what}: divergence at pop {popped}"
                );
                popped += 1;
            }
            (None, None) => break,
            (b, h) => panic!("{what}: one queue drained early at pop {popped}: {b:?} vs {h:?}"),
        }
    }
}

/// Sparse mix across delay scales: events a few quanta out (in-ring), a
/// few thousand out (next-day), and millions out (deep overflow), pushed
/// in random interleaving with random pops in between.
#[test]
fn sparse_far_future_mix_matches_heap() {
    // Delay scales in quanta: same-bucket, in-ring, one day out, deep
    // overflow — roughly "neighbor hop", "uniform 64-cycle latency",
    // "frame period", "multi-frame latency" at a 1 ns quantum.
    const SCALES: [f64; 4] = [0.5, 100.0, 5_000.0, 3_000_000.0];
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(0x5ba6_5eed ^ (seed * 0x9e37_79b9));
        let mut bucket = BucketQueue::new(1e-9);
        let mut heap = HeapQueue::new();
        let mut now = 0.0f64;
        let mut payload = 0u32;
        for _ in 0..600 {
            if rng.gen_f64() < 0.65 {
                let scale = SCALES[rng.gen_index(SCALES.len())];
                let t = now + rng.gen_range_f64(0.0, scale) * 1e-9;
                payload += 1;
                bucket.push(t, payload);
                heap.push(t, payload);
            } else {
                match (bucket.pop(), heap.pop()) {
                    (Some(b), Some(h)) => {
                        assert_eq!(
                            (b.t.to_bits(), b.seq, b.payload),
                            (h.t.to_bits(), h.seq, h.payload),
                            "seed {seed}: interleaved pop diverged"
                        );
                        now = b.t;
                    }
                    (None, None) => {}
                    (b, h) => panic!("seed {seed}: pops diverged: {b:?} vs {h:?}"),
                }
            }
        }
        assert_identical_drain(bucket, heap, &format!("seed {seed} final drain"));
    }
}

/// Explicitly keyed events (the comm model's band-1 arrival/credit keys)
/// mixed with counter-keyed events at *identical* times: the band-1 bit
/// must sort them after every counter event at that time, the stream and
/// sequence fields must order within the band, and the calendar queue
/// must agree with the heap on all of it.
#[test]
fn band1_push_ord_keys_sort_identically_across_queues() {
    const BAND1: u64 = 1 << 63;
    let band1 = |stream: u64, seq: u64| BAND1 | (stream << 32) | seq;
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(0x0bd1_0000 + seed);
        let mut bucket = BucketQueue::new(1e-9);
        let mut heap = HeapQueue::new();
        let mut payload = 0u32;
        // A handful of distinct times, each receiving a random mix of
        // counter-keyed pushes and band-1 ordinal pushes (random stream ×
        // ascending per-stream sequence, pushed in shuffled order).
        let times: Vec<f64> = (0..6).map(|i| 1e-6 * (i as f64 + 1.0)).collect();
        let mut next_seq = [0u64; 4];
        for _ in 0..240 {
            let t = times[rng.gen_index(times.len())];
            payload += 1;
            if rng.gen_bool() {
                bucket.push(t, payload);
                heap.push(t, payload);
            } else {
                let stream = rng.gen_index(next_seq.len());
                let ord = band1(stream as u64, next_seq[stream]);
                next_seq[stream] += 1;
                bucket.push_ord(t, ord, payload);
                heap.push_ord(t, ord, payload);
            }
        }
        // Within each time, all counter-keyed events must precede all
        // band-1 events (checked on the heap's stream; equality with the
        // bucket queue is checked by the drain).
        let mut check_heap = HeapQueue::new();
        let mut probe = Vec::new();
        while let Some(e) = heap.pop() {
            probe.push((e.t, e.seq, e.payload));
            check_heap.push_ord(e.t, e.seq, e.payload);
        }
        for w in probe.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(
                    !(w[0].1 >= BAND1 && w[1].1 < BAND1),
                    "seed {seed}: band-1 key popped before a counter key at t={}",
                    w[0].0
                );
            }
        }
        assert_identical_drain(bucket, check_heap, &format!("seed {seed} ord drain"));
    }
}

/// Long sparse/far-future run crossing several self-tuning checkpoints:
/// the width must widen from the mis-seeded 1 ns toward the observed
/// multi-microsecond spacing, and every pop across every rebuild must
/// still match the heap bit-for-bit.
#[test]
fn self_tuning_retunes_on_sparse_mix_without_reordering() {
    const SCALES: [f64; 4] = [0.5, 100.0, 5_000.0, 3_000_000.0];
    let mut rng = Rng64::seed_from_u64(0x7e7e_5eed);
    let mut bucket = BucketQueue::new(1e-9);
    let mut heap = HeapQueue::new();
    let mut now = 0.0f64;
    let mut payload = 0u32;
    // Steady-state churn: one push and one pop per step, >> the 4096-pop
    // retune period, with deltas drawn across all four sparsity scales.
    for step in 0..20_000 {
        let scale = SCALES[rng.gen_index(SCALES.len())];
        let t = now + rng.gen_range_f64(0.0, scale) * 1e-9;
        payload += 1;
        bucket.push(t, payload);
        heap.push(t, payload);
        match (bucket.pop(), heap.pop()) {
            (Some(b), Some(h)) => {
                assert_eq!(
                    (b.t.to_bits(), b.seq, b.payload),
                    (h.t.to_bits(), h.seq, h.payload),
                    "pop diverged at step {step} (after {} retunes)",
                    bucket.retunes()
                );
                now = b.t;
            }
            (b, h) => panic!("pops diverged at step {step}: {b:?} vs {h:?}"),
        }
    }
    assert!(
        bucket.retunes() >= 1,
        "20k sparse pops at a 1 ns seed width never retuned"
    );
    assert!(
        bucket.quantum() > 1e-9,
        "width never widened from the mis-seeded 1 ns"
    );
    assert_identical_drain(bucket, heap, "post-retune drain");
}

/// Workload shift: a sparse phase stretches the width out by orders of
/// magnitude, then a dense phase must pull it back — with both
/// transitions popping identically to the heap.
#[test]
fn self_tuning_narrows_back_after_dense_shift() {
    let mut bucket = BucketQueue::new(1e-6);
    let mut heap = HeapQueue::new();
    let mut now = 0.0f64;
    let pump = |bucket: &mut BucketQueue<u32>,
                heap: &mut HeapQueue<u32>,
                now: &mut f64,
                dt: f64,
                steps: u32,
                what: &str| {
        for i in 0..steps {
            bucket.push(*now + dt, i);
            heap.push(*now + dt, i);
            let (b, h) = (bucket.pop().unwrap(), heap.pop().unwrap());
            assert_eq!(
                (b.t.to_bits(), b.seq, b.payload),
                (h.t.to_bits(), h.seq, h.payload),
                "{what}: pop diverged at step {i}"
            );
            *now = b.t;
        }
    };
    pump(
        &mut bucket,
        &mut heap,
        &mut now,
        4e-3,
        10_000,
        "sparse phase",
    );
    let widened = bucket.quantum();
    assert!(widened > 1e-4, "sparse phase did not widen the buckets");
    pump(
        &mut bucket,
        &mut heap,
        &mut now,
        2e-7,
        10_000,
        "dense phase",
    );
    assert!(
        bucket.quantum() < widened / 2.0,
        "dense phase did not narrow the width back (still {:e})",
        bucket.quantum()
    );
    assert_identical_drain(bucket, heap, "post-shift drain");
}

/// Windowed re-insertion (the parallel engine pops an event past the
/// window end and re-pushes it with `push_ord` under its original key)
/// must be loss- and order-preserving even when the re-pushed event sits
/// in deep overflow relative to the cursor.
#[test]
fn repush_after_windowed_pop_preserves_order() {
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(0xeee0_0000 + seed);
        let mut bucket = BucketQueue::new(1e-9);
        let mut heap = HeapQueue::new();
        for p in 0..200u32 {
            // Bimodal: near-term cluster plus far-future stragglers.
            let t = if rng.gen_bool() {
                rng.gen_range_f64(0.0, 2e-6)
            } else {
                rng.gen_range_f64(1e-3, 2e-3)
            };
            bucket.push(t, p);
            heap.push(t, p);
        }
        // Simulate four window rounds: drain everything below the window
        // end; the first event at or past it goes back in under its
        // original (t, seq) via push_ord.
        for end in [5e-7, 1e-6, 1.5e-3, f64::INFINITY] {
            while let (Some(b), Some(h)) = (bucket.pop(), heap.pop()) {
                assert_eq!(
                    (b.t.to_bits(), b.seq, b.payload),
                    (h.t.to_bits(), h.seq, h.payload),
                    "seed {seed}: pop diverged in window ending {end}"
                );
                if b.t >= end {
                    bucket.push_ord(b.t, b.seq, b.payload);
                    heap.push_ord(h.t, h.seq, h.payload);
                    break;
                }
            }
        }
        assert!(
            bucket.is_empty() && heap.is_empty(),
            "seed {seed}: leftovers"
        );
    }
}
