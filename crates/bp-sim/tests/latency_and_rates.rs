//! Tests for the latency metric and the §II-C custom-token rate-bound
//! verification added to the timed simulator.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::OutputSpec;
use bp_core::token::{ControlToken, CustomTokenDecl};
use bp_core::{Dim2, GraphBuilder, Mapping, Window};
use bp_sim::{SimConfig, TimedSimulator};

#[test]
fn latency_is_positive_and_bounded_by_frame_period() {
    let dim = Dim2::new(8, 6);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 20.0);
    let sc = b.add("Scale", bp_kernels::scale(1.0, 0.0));
    let (sdef, _h) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", sc, "in");
    b.connect(sc, "out", snk, "in");
    let g = b.build().unwrap();
    let m = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &m, SimConfig::new(3))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.frame_latencies.len(), 3);
    let period = 1.0 / 20.0;
    for &l in &report.frame_latencies {
        // A frame can only complete after its last sample arrives, so the
        // latency is at least almost a full frame period; the light
        // pipeline adds little on top.
        assert!(l > 0.9 * period, "latency {l}");
        assert!(l < 1.5 * period, "latency {l}");
    }
    assert!(report.avg_latency() > 0.0);
}

#[test]
fn deeper_pipelines_add_latency_but_not_throughput() {
    let build = |stages: usize| {
        let dim = Dim2::new(8, 6);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 20.0);
        let mut prev = src;
        for i in 0..stages {
            let s = b.add(format!("S{i}"), bp_kernels::scale(1.0, 0.0));
            b.connect(prev, "out", s, "in");
            prev = s;
        }
        let (sdef, _h) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(prev, "out", snk, "in");
        b.build().unwrap()
    };
    let run = |stages: usize| {
        let g = build(stages);
        let m = Mapping::one_to_one(g.node_count());
        TimedSimulator::new(&g, &m, SimConfig::new(3))
            .unwrap()
            .run()
            .unwrap()
    };
    let shallow = run(1);
    let deep = run(8);
    assert!(deep.avg_latency() > shallow.avg_latency());
    assert!(shallow.verdict.met && deep.verdict.met);
    // Throughput unaffected, as §IV-D argues for added (communication) delay.
    assert!((deep.verdict.achieved_rate_hz - shallow.verdict.achieved_rate_hz).abs() < 1.0);
}

/// A source that emits one custom token per *pixel* while declaring a
/// once-per-frame bound — a §II-C contract violation.
fn lying_source(dim: Dim2, declared_rate: f64) -> KernelDef {
    struct S {
        dim: Dim2,
        x: u32,
        y: u32,
    }
    impl KernelBehavior for S {
        fn fire(&mut self, _m: &str, _d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", Window::scalar(1.0));
            out.token("out", ControlToken::Custom(3));
            self.x += 1;
            if self.x == self.dim.w {
                self.x = 0;
                out.token("out", ControlToken::EndOfLine);
                self.y += 1;
                if self.y == self.dim.h {
                    self.y = 0;
                    out.token("out", ControlToken::EndOfFrame);
                }
            }
        }
    }
    KernelDef::new(
        KernelSpec::new("lying_source")
            .with_role(NodeRole::Source)
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::source(
                "generate",
                vec!["out".into()],
                MethodCost::new(0, 0),
            ))
            .custom_token(CustomTokenDecl {
                id: 3,
                name: "BURST".into(),
                max_rate_hz: declared_rate,
            }),
        move || S { dim, x: 0, y: 0 },
    )
}

#[test]
fn token_rate_bound_violations_are_reported() {
    let dim = Dim2::new(6, 4);
    let rate = 10.0;
    let mut b = GraphBuilder::new();
    // Declares 10 tokens/s (once per frame) but emits one per pixel (240/s).
    let src = b.add_source("Input", lying_source(dim, rate), dim, rate);
    let (sdef, _h) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", snk, "in");
    let g = b.build().unwrap();
    let m = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &m, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.token_rate_violations.len(), 1);
    let (name, observed, declared) = &report.token_rate_violations[0];
    assert_eq!(name, "Input");
    assert!(
        *observed > *declared * 10.0,
        "observed {observed} declared {declared}"
    );
}

#[test]
fn honest_token_rates_pass_the_check() {
    // Declares a generous bound and emits once per frame: no violation.
    let dim = Dim2::new(6, 4);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", lying_source(dim, 500.0), dim, 10.0);
    let (sdef, _h) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", snk, "in");
    let g = b.build().unwrap();
    let m = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &m, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.token_rate_violations.is_empty());
}
