//! Integration tests for the timing-accurate simulator: equivalence with
//! the functional executor, overload detection, utilization accounting, and
//! multiplexed scheduling.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::{Dim2, GraphBuilder, MachineSpec, Mapping};
use bp_kernels as k;
use bp_sim::{FunctionalExecutor, SimConfig, TimedSimulator};

/// A pass-through kernel with a configurable cycle cost.
fn costly_passthrough(cycles: u64) -> KernelDef {
    struct Pass;
    impl KernelBehavior for Pass {
        fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", bp_core::Window::scalar(d.window("in").as_scalar()));
        }
    }
    KernelDef::new(
        KernelSpec::new("pass")
            .input(InputSpec::stream("in"))
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::on_data(
                "run",
                "in",
                vec!["out".into()],
                MethodCost::new(cycles, 1),
            )),
        || Pass,
    )
}

fn pipeline(cycles: u64, dim: Dim2, rate: f64) -> (bp_core::AppGraph, k::SinkHandle) {
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", k::pattern_source(dim), dim, rate);
    let p = b.add("Pass", costly_passthrough(cycles));
    let (sdef, h) = k::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", p, "in");
    b.connect(p, "out", snk, "in");
    (b.build().unwrap(), h)
}

#[test]
fn timed_and_functional_agree_on_data() {
    let dim = Dim2::new(8, 6);
    let (g1, h1) = pipeline(10, dim, 20.0);
    let (g2, h2) = pipeline(10, dim, 20.0);

    let mut ex = FunctionalExecutor::new(&g1).unwrap();
    ex.run_frames(3).unwrap();

    let mapping = Mapping::one_to_one(g2.node_count());
    TimedSimulator::new(&g2, &mapping, SimConfig::new(3))
        .unwrap()
        .run()
        .unwrap();

    assert_eq!(h1.frames(), h2.frames());
    assert_eq!(h1.frame_count(), 3);
}

#[test]
fn sustained_overload_misses_the_deadline() {
    // 8x6 @ 100 Hz = 4800 samples/s; at 1000 cycles each the kernel needs
    // 4.8 PEs worth of cycles: the source inevitably finds queues full.
    let dim = Dim2::new(8, 6);
    let (g, _h) = pipeline(1000, dim, 100.0);
    let mapping = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &mapping, SimConfig::new(3))
        .unwrap()
        .run()
        .unwrap();
    assert!(!report.verdict.met);
    assert!(report.verdict.violations > 0);
    assert!(report.verdict.achieved_rate_hz < 100.0 * 0.9);
}

#[test]
fn feasible_load_meets_the_deadline_exactly() {
    let dim = Dim2::new(8, 6);
    let (g, _h) = pipeline(50, dim, 100.0);
    let mapping = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &mapping, SimConfig::new(4))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.verdict.met, "{:?}", report.verdict);
    assert!((report.verdict.achieved_rate_hz - 100.0).abs() < 5.0);
    assert_eq!(report.frames_completed, 4);
    assert_eq!(report.residual_items, 0);
}

#[test]
fn utilization_accounting_matches_hand_calculation() {
    // One frame of 8x6 = 48 samples at 10 Hz; the pass kernel costs
    // 100 cycles run + (1 read + 1 write) * cost words per firing.
    let dim = Dim2::new(8, 6);
    let (g, _h) = pipeline(100, dim, 10.0);
    let mapping = Mapping::one_to_one(g.node_count());
    let machine = MachineSpec::default_eval();
    let report = TimedSimulator::new(&g, &mapping, SimConfig::new(1).with_machine(machine))
        .unwrap()
        .run()
        .unwrap();
    let pass = g.find_node("Pass").unwrap();
    let pe = mapping.pe_of_node[pass.0];
    let stats = report.pe_stats[pe];
    // 48 data firings at 100 cycles, plus 7 token forwards (6 EOL + 1 EOF)
    // at 1 cycle each, all charged to run time.
    let expected_run = (48.0 * 100.0 + 7.0) / machine.pe_clock_hz;
    assert!(
        (stats.run - expected_run).abs() < 1e-9,
        "run {} vs {}",
        stats.run,
        expected_run
    );
    // Tokens carry zero words, so reads are exactly one word per sample.
    let expected_read = 48.0 * machine.read_cost_per_word / machine.pe_clock_hz;
    assert!((stats.read - expected_read).abs() < 1e-9);
}

#[test]
fn multiplexed_mapping_matches_one_to_one_results() {
    let dim = Dim2::new(8, 6);
    let (g1, h1) = pipeline(30, dim, 10.0);
    let (g2, h2) = pipeline(30, dim, 10.0);
    let m1 = Mapping::one_to_one(g1.node_count());
    // Everything on a single PE.
    let m2 = Mapping::from_assignment(vec![0; g2.node_count()]);
    let r1 = TimedSimulator::new(&g1, &m1, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    let r2 = TimedSimulator::new(&g2, &m2, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(h1.frames(), h2.frames());
    assert!(r1.verdict.met && r2.verdict.met);
    // The single shared PE is busier than the average 1:1 PE.
    assert!(r2.avg_utilization() > r1.avg_utilization());
}

#[test]
fn source_pacing_is_exact() {
    // 2x2 @ 10 Hz over 2 frames: the last sample is injected at
    // (8 - 1) * (1 / (10*4)) = 0.175 s; total sim time is at least that.
    let dim = Dim2::new(2, 2);
    let (g, _h) = pipeline(1, dim, 10.0);
    let mapping = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &mapping, SimConfig::new(2))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.sim_time >= 0.175);
    assert!(report.sim_time < 0.2);
}

#[test]
fn mapping_size_mismatch_is_rejected() {
    let dim = Dim2::new(2, 2);
    let (g, _h) = pipeline(1, dim, 10.0);
    let bad = Mapping::one_to_one(g.node_count() + 1);
    let err = TimedSimulator::new(&g, &bad, SimConfig::new(1))
        .err()
        .unwrap();
    assert!(err.to_string().contains("mapping"));
}

#[test]
fn sink_roles_collect_frame_completions() {
    let dim = Dim2::new(4, 4);
    let (g, h) = pipeline(5, dim, 25.0);
    // Confirm role bookkeeping: one source, one sink.
    let census = g.role_census();
    assert_eq!(census[&NodeRole::Source], 1);
    assert_eq!(census[&NodeRole::Sink], 1);
    let mapping = Mapping::one_to_one(g.node_count());
    let report = TimedSimulator::new(&g, &mapping, SimConfig::new(5))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.frames_completed, 5);
    assert_eq!(h.frame_count(), 5);
}
