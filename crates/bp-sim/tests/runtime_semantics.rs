//! Tests for the firing semantics of §II-C: custom control tokens, the
//! ready-gate, token-forwarding suppression, and diagnostics.

use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
use bp_core::method::{MethodCost, MethodSpec};
use bp_core::port::{InputSpec, OutputSpec};
use bp_core::token::{ControlToken, CustomTokenDecl, TokenKind};
use bp_core::{Dim2, GraphBuilder, Window};
use bp_sim::{FunctionalExecutor, Program};
use std::sync::{Arc, Mutex};

/// Source emitting pixels 0..n-1 with a custom token after every third
/// pixel, then EOL/EOF.
fn flagging_source(dim: Dim2) -> KernelDef {
    struct S {
        dim: Dim2,
        x: u32,
        y: u32,
        v: f64,
    }
    impl KernelBehavior for S {
        fn fire(&mut self, _m: &str, _d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", Window::scalar(self.v));
            self.v += 1.0;
            if (self.v as u64).is_multiple_of(3) {
                out.token("out", ControlToken::Custom(7));
            }
            self.x += 1;
            if self.x == self.dim.w {
                self.x = 0;
                out.token("out", ControlToken::EndOfLine);
                self.y += 1;
                if self.y == self.dim.h {
                    self.y = 0;
                    out.token("out", ControlToken::EndOfFrame);
                }
            }
        }
    }
    KernelDef::new(
        KernelSpec::new("flagging_source")
            .with_role(NodeRole::Source)
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::source(
                "generate",
                vec!["out".into()],
                MethodCost::new(0, 0),
            ))
            .custom_token(CustomTokenDecl {
                id: 7,
                name: "FLAG".into(),
                max_rate_hz: 1000.0,
            }),
        move || S {
            dim,
            x: 0,
            y: 0,
            v: 0.0,
        },
    )
}

/// Counts custom tokens it handles; passes data through.
fn counting_kernel(counter: Arc<Mutex<u32>>) -> KernelDef {
    struct C {
        counter: Arc<Mutex<u32>>,
    }
    impl KernelBehavior for C {
        fn fire(&mut self, method: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
            match method {
                "pass" => out.window("out", Window::scalar(d.window("in").as_scalar())),
                "onFlag" => *self.counter.lock().unwrap() += 1,
                other => panic!("no method {other}"),
            }
        }
    }
    KernelDef::new(
        KernelSpec::new("counting")
            .input(InputSpec::stream("in"))
            .output(OutputSpec::stream("out"))
            .method(MethodSpec::on_data(
                "pass",
                "in",
                vec!["out".into()],
                MethodCost::new(1, 0),
            ))
            .method(
                MethodSpec::on_token(
                    "onFlag",
                    "in",
                    TokenKind::Custom(7),
                    vec![],
                    MethodCost::new(1, 0),
                )
                .with_max_rate(1000.0),
            ),
        move || C {
            counter: Arc::clone(&counter),
        },
    )
}

#[test]
fn custom_tokens_are_handled_where_registered_and_forwarded_elsewhere() {
    let dim = Dim2::new(3, 2);
    let counter = Arc::new(Mutex::new(0u32));
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", flagging_source(dim), dim, 10.0);
    // The doubler has no Custom handler: tokens pass through automatically.
    let dbl = b.add("Scale", bp_kernels::scale(2.0, 0.0));
    let cnt = b.add("Counter", counting_kernel(Arc::clone(&counter)));
    let (sdef, handle) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", dbl, "in");
    b.connect(dbl, "out", cnt, "in");
    b.connect(cnt, "out", snk, "in");
    let g = b.build().unwrap();

    let mut ex = FunctionalExecutor::new(&g).unwrap();
    ex.run_frames(1).unwrap();
    // 6 pixels, flags after values 3 and 6 (v counts 1-based internally):
    // v=3 and v=6 -> 2 custom tokens, all forwarded through Scale,
    // consumed by Counter.
    assert_eq!(*counter.lock().unwrap(), 2);
    // The counter did not forward them to the sink (it handled them).
    let customs = handle
        .items()
        .iter()
        .filter(|i| matches!(i, bp_core::Item::Control(ControlToken::Custom(_))))
        .count();
    assert_eq!(customs, 0);
    // Data itself is intact and doubled.
    assert_eq!(handle.samples(), vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
}

#[test]
fn unhandled_custom_tokens_reach_the_sink() {
    let dim = Dim2::new(3, 1);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", flagging_source(dim), dim, 10.0);
    let (sdef, handle) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", snk, "in");
    let g = b.build().unwrap();
    // The sink has no Custom handler and its data method's trigger group is
    // just "in": the token forwards to the sink's (absent) outputs — i.e.
    // it is consumed and dropped. Add a custom handler? No: verify the
    // executor doesn't wedge on it.
    let mut ex = FunctionalExecutor::new(&g).unwrap();
    ex.run_frames(1).unwrap();
    assert_eq!(ex.residual_items(), 0);
    assert_eq!(handle.samples(), vec![0.0, 1.0, 2.0]);
}

#[test]
fn ready_gate_defers_until_state_is_loaded() {
    // A conv fed data before coefficients: plan() must not fire
    // runConvolve until loadCoeff has run.
    let dim = Dim2::new(6, 6);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 10.0);
    let buf = b.add(
        "Buf",
        bp_kernels::buffer(Dim2::ONE, Dim2::new(5, 5), bp_core::Step2::ONE, dim),
    );
    let conv = b.add("Conv", bp_kernels::conv2d(5, 5));
    let coeff = b.add(
        "Coeff",
        bp_kernels::const_source("coeff", bp_kernels::identity_coefficients(5, 5)),
    );
    let (sdef, handle) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", buf, "in");
    b.connect(buf, "out", conv, "in");
    b.connect(coeff, "out", conv, "coeff");
    b.connect(conv, "out", snk, "in");
    let g = b.build().unwrap();

    // Manually instantiate and push data BEFORE firing the const.
    let mut prog = Program::instantiate(&g).unwrap();
    let conv_idx = prog.find("Conv").unwrap();
    prog.nodes[conv_idx].queues[0]
        .push_back(bp_core::Item::Window(Window::filled(Dim2::new(5, 5), 1.0)));
    assert!(
        prog.nodes[conv_idx].plan().is_none(),
        "conv must not fire without coefficients"
    );
    // Fire the coefficient provider; now the conv can fire.
    let consts = prog.consts.clone();
    for (node, method) in consts {
        prog.fire_source_method(node, method);
    }
    assert!(prog.step_node(conv_idx), "loadCoeff fires first");
    assert!(prog.step_node(conv_idx), "then runConvolve");
    drop(prog);

    // And the full executor path works end to end.
    let mut ex = FunctionalExecutor::new(&g).unwrap();
    ex.run_frames(1).unwrap();
    assert_eq!(handle.frames().len(), 1);
}

#[test]
fn stuck_report_names_blocked_nodes() {
    // Subtract with deliberately misaligned inputs deadlocks; the report
    // should name it and show queue heads.
    let dim = Dim2::new(8, 8);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 10.0);
    let buf = b.add(
        "Buf",
        bp_kernels::buffer(Dim2::ONE, Dim2::new(3, 3), bp_core::Step2::ONE, dim),
    );
    let med = b.add("Med", bp_kernels::median(3, 3));
    let sub = b.add("Sub", bp_kernels::subtract());
    let (sdef, _h) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", buf, "in");
    b.connect(buf, "out", med, "in");
    b.connect(med, "out", sub, "in0");
    b.connect(src, "out", sub, "in1"); // misaligned: 6x6 vs 8x8
    b.connect(sub, "out", snk, "in");
    let g = b.build().unwrap();

    let mut ex = FunctionalExecutor::new(&g).unwrap();
    ex.run_frames(1).unwrap();
    // The subtract consumed pairs until the median path ran dry; the
    // remaining in1 samples are stranded.
    assert!(ex.residual_items() > 0);
    let report = ex.program().stuck_report();
    assert!(report.contains("Sub"), "{report}");
}

#[test]
fn program_firing_counts_are_tracked() {
    let dim = Dim2::new(4, 2);
    let mut b = GraphBuilder::new();
    let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 10.0);
    let sc = b.add("Scale", bp_kernels::scale(1.0, 0.0));
    let (sdef, _h) = bp_kernels::sink();
    let snk = b.add("Out", sdef);
    b.connect(src, "out", sc, "in");
    b.connect(sc, "out", snk, "in");
    let g = b.build().unwrap();
    let mut ex = FunctionalExecutor::new(&g).unwrap();
    ex.run_frames(2).unwrap();
    let prog = ex.program();
    let sc_idx = prog.find("Scale").unwrap();
    // 16 data + 4 EOL + 2 EOF forwards.
    assert_eq!(prog.nodes[sc_idx].firings, 22);
    assert!(prog.find("nonexistent").is_none());
}
