//! Host-side parallelism for simulation sweeps: run many independent
//! simulations (parameter sweeps, benchmark suites, mapping comparisons)
//! across OS threads. Each simulation itself stays deterministic and
//! single-threaded; only the batch is parallel, so results are identical to
//! a sequential run.
//!
//! The dispatcher is lock-free on the steady-state path: workers claim jobs
//! by bumping one shared atomic index over an immutable job slice, and each
//! result is written to its own pre-sized slot. There is no job-queue mutex
//! to convoy on and no results-vector lock, so batch throughput scales
//! linearly with cores until the jobs themselves saturate memory bandwidth.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A slice of per-job slots that workers write disjointly. Safety: the
/// atomic job counter hands every index to exactly one worker, so no two
/// threads ever touch the same slot.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// Take the value out of slot `i`.
    ///
    /// # Safety
    /// The caller must be the unique owner of slot `i` (each index is handed
    /// to exactly one worker by the atomic job counter).
    unsafe fn take(&self, i: usize) -> Option<T> {
        unsafe { (*self.0[i].get()).take() }
    }

    /// Write `v` into slot `i`. Same safety contract as [`take`](Self::take).
    unsafe fn put(&self, i: usize, v: T) {
        unsafe { *self.0[i].get() = Some(v) };
    }
}

/// A shared vector whose elements are mutated concurrently under an
/// *external* disjoint-ownership discipline — the same idea as [`Slots`],
/// but with ownership decided up front (e.g. a [`bp_core::ShardPlan`]
/// assigning every node to exactly one shard worker) instead of by an
/// atomic claim counter. Used by the epoch-sharded timed simulator to let
/// each worker borrow its own nodes mutably while the vector itself is
/// shared.
pub(crate) struct DisjointSlots<T>(Vec<UnsafeCell<T>>);

unsafe impl<T: Send> Sync for DisjointSlots<T> {}

impl<T> DisjointSlots<T> {
    pub(crate) fn new(items: Vec<T>) -> Self {
        Self(items.into_iter().map(UnsafeCell::new).collect())
    }

    pub(crate) fn len(&self) -> usize {
        self.0.len()
    }

    /// Mutably borrow slot `i`.
    ///
    /// # Safety
    /// The caller must be the unique owner of slot `i` (per the external
    /// partition) and must not hold any other borrow of the same slot.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        unsafe { &mut *self.0[i].get() }
    }

    /// Immutably borrow slot `i`. Same ownership contract as
    /// [`get_mut`](Self::get_mut): only the slot's owner may look, because
    /// a non-owner could race the owner's mutation.
    ///
    /// # Safety
    /// See [`get_mut`](Self::get_mut).
    pub(crate) unsafe fn get(&self, i: usize) -> &T {
        unsafe { &*self.0[i].get() }
    }

    pub(crate) fn into_inner(self) -> Vec<T> {
        self.0.into_iter().map(|c| c.into_inner()).collect()
    }
}

/// Run every job, using up to `std::thread::available_parallelism` worker
/// threads, and return the results in job order.
pub fn run_batch<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    run_batch_with_workers(jobs, workers)
}

/// [`run_batch`] with an explicit worker count, for callers that want to
/// oversubscribe (I/O-bound jobs) or pin concurrency in tests.
pub fn run_batch_with_workers<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n <= 1 || workers <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let workers = workers.min(n);

    // Jobs are also kept in per-slot cells: a worker that claims index `i`
    // takes the closure out of slot `i` and writes the result into result
    // slot `i`. The atomic counter is the only shared mutable word.
    let job_slots = Slots(jobs.into_iter().map(|j| UnsafeCell::new(Some(j))).collect());
    let results: Slots<T> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i` came from a fetch_add, so this thread is the
                // unique owner of job slot `i` and result slot `i`.
                let job = unsafe { job_slots.take(i) }.expect("job claimed twice");
                let r = job();
                unsafe { results.put(i, r) };
            });
        }
    });

    results
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * i);
                f
            })
            .collect();
        let got = run_batch(jobs);
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    /// Job order must hold even when 8 OS threads drain the queue and
    /// earlier jobs outlive later ones. The barrier in the first 8 jobs
    /// forces all 8 workers to run concurrently (a smaller pool would
    /// deadlock); the sleep skew makes later jobs finish first.
    #[test]
    fn job_order_holds_under_eight_threads() {
        use std::sync::Barrier;
        use std::time::Duration;

        let barrier = Barrier::new(8);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = (0..24)
            .map(|i| {
                let b = &barrier;
                let f: Box<dyn FnOnce() -> usize + Send + '_> = Box::new(move || {
                    if i < 8 {
                        b.wait();
                    }
                    std::thread::sleep(Duration::from_millis((24 - i) as u64 % 5));
                    i * 3 + 1
                });
                f
            })
            .collect();
        let got = run_batch_with_workers(jobs, 8);
        assert_eq!(got, (0..24).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let got = run_batch(vec![|| 42]);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let got: Vec<i32> = run_batch(Vec::<fn() -> i32>::new());
        assert!(got.is_empty());
    }

    type SimJob = Box<dyn FnOnce() -> (f64, Vec<f64>) + Send>;

    #[test]
    fn parallel_simulations_match_sequential() {
        use crate::{SimConfig, TimedSimulator};
        use bp_core::Mapping;

        let build = || {
            let dim = bp_core::Dim2::new(8, 6);
            let mut b = bp_core::GraphBuilder::new();
            let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 20.0);
            let sc = b.add("S", bp_kernels::scale(2.0, 0.0));
            let (sdef, h) = bp_kernels::sink();
            let snk = b.add("Out", sdef);
            b.connect(src, "out", sc, "in");
            b.connect(sc, "out", snk, "in");
            (b.build().unwrap(), h)
        };

        let jobs: Vec<SimJob> = (0..8)
            .map(|_| {
                let f: SimJob = Box::new(move || {
                    let (g, h) = build();
                    let m = Mapping::one_to_one(g.node_count());
                    let r = TimedSimulator::new(&g, &m, SimConfig::new(1))
                        .unwrap()
                        .run()
                        .unwrap();
                    (r.sim_time, h.samples())
                });
                f
            })
            .collect();
        let results = run_batch(jobs);
        for (t, samples) in &results {
            assert_eq!(*t, results[0].0, "deterministic sim time");
            assert_eq!(samples, &results[0].1, "deterministic data");
        }
    }
}
