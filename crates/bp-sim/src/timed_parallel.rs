//! Multi-threaded timed simulation with bitwise-identical results
//! (DESIGN.md §9).
//!
//! The simulated machine has no modeled communication delay, so a
//! conservative parallel discrete-event simulator has zero lookahead across
//! any channel: two PEs connected (even transitively) by channels can
//! interact at the very timestamp being processed. What *can* run freely in
//! parallel are the weakly connected components of the mapped channel
//! graph — no item routing, no dispatch wave, and no back-pressure ever
//! crosses between them. [`bp_core::ShardPlan`] groups those components
//! into per-worker shards; each worker runs the ordinary event loop
//! ([`crate::timed::ShardSim`]) over its own PEs to completion.
//!
//! Within one shard, event times and handler effects are independent of the
//! other shards (disjoint state), and the pop order of the shard's events
//! equals the sequential simulator's pop order restricted to that shard:
//! local insertion order is the global insertion order filtered to the
//! shard, and both queues order by `(t, insertion)`. Per-shard artifacts —
//! PE stats, node firings, queue depths — are therefore already bitwise
//! equal to the sequential run's, and are merged by taking each entry from
//! its owning shard.
//!
//! Globally *ordered* artifacts (the interleaving of sink end-of-frame
//! arrivals across shards, which feeds frame accounting) additionally need
//! the sequential pop order across shards. Each worker journals, per
//! processed event, the times of the events it pushed and how many
//! EOFs/frame-starts it recorded ([`crate::timed::ShardLog`]). The merge
//! then *replays* the global heap symbolically: it seeds the startup pushes
//! in program order, pops by `(time, global sequence)`, and consumes each
//! shard's journal in order, reconstructing the exact global event order —
//! and thus the exact `SimReport` — without touching any kernel state.

use crate::events::{EventQueue, HeapQueue};
use crate::parallel::DisjointSlots;
use crate::runtime::RtNode;
use crate::stats::{PeStats, SimReport};
use crate::timed::{
    assemble_report, build_shared, LogEntry, ShardLog, ShardOutcome, ShardSim, Shared, SimConfig,
    TimedSimulator,
};
use crate::trace::{Trace, TraceEvent, TraceMeta, TraceOptions, TraceRecorder};
use bp_core::graph::AppGraph;
use bp_core::machine::{Mapping, ShardPlan};
use bp_core::Result;

/// Timed simulator that executes independent PE interaction regions on
/// worker threads. Produces bitwise-identical [`SimReport`]s to
/// [`TimedSimulator`] for every graph, mapping, and thread count.
pub struct ParallelTimedSimulator {
    nodes: Vec<RtNode>,
    shared: Shared,
    plan: ShardPlan,
}

impl ParallelTimedSimulator {
    /// Instantiate the graph under the given mapping, targeting up to
    /// `threads` worker threads. The usable parallelism is capped by the
    /// number of independent PE regions ([`ShardPlan::num_components`]);
    /// with one region (or `threads <= 1`) the run degrades to the
    /// sequential engine.
    pub fn new(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
    ) -> Result<Self> {
        Self::build(graph, mapping, config, threads, &[])
    }

    /// Like [`new`](Self::new), but balance shards by per-node profiling
    /// weights (e.g. traced event counts from
    /// [`profile_node_weights`]) instead of resident-node counts. The
    /// weighting changes only which worker runs which component — results
    /// stay bitwise identical to the sequential engine.
    pub fn new_weighted(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
        node_weights: &[u64],
    ) -> Result<Self> {
        Self::build(graph, mapping, config, threads, node_weights)
    }

    fn build(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
        node_weights: &[u64],
    ) -> Result<Self> {
        let (nodes, shared) = build_shared(graph, mapping, config)?;
        // Dependency edges carry no runtime traffic, but fold them in
        // anyway: sharding is correctness-critical, and the cost of a
        // merged component is only lost parallelism.
        let mut edges: Vec<(usize, usize)> = graph
            .channels()
            .map(|(_, c)| (c.src.node.0, c.dst.node.0))
            .collect();
        edges.extend(graph.dep_edges().iter().map(|d| (d.src.0, d.dst.0)));
        let plan = ShardPlan::build_weighted(mapping, &edges, threads.max(1), node_weights);
        Ok(Self {
            nodes,
            shared,
            plan,
        })
    }

    /// Worker threads the run will actually use.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards
    }

    /// Run the simulation to completion and report.
    pub fn run(self) -> Result<SimReport> {
        self.run_with_trace().map(|(report, _)| report)
    }

    /// Run the simulation and also return the merged [`Trace`] when
    /// [`SimConfig::trace`] was set (`None` otherwise). The per-shard
    /// streams are interleaved by the journal replay into the global
    /// `(t, seq)` pop order, so — as long as no ring dropped events — the
    /// merged trace is bitwise identical to the sequential engine's at any
    /// thread count.
    pub fn run_with_trace(self) -> Result<(SimReport, Option<Trace>)> {
        let Self {
            nodes,
            shared,
            plan,
        } = self;
        if plan.num_shards <= 1 {
            return TimedSimulator::from_parts(nodes, shared).run_with_trace();
        }
        let n = nodes.len();
        let num_pes = shared.residents.len();
        let slots = DisjointSlots::new(nodes);
        let mut outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.num_shards)
                .map(|shard| {
                    let (shared, slots) = (&shared, &slots);
                    let shard_of_pe = &plan.shard_of_pe[..];
                    scope.spawn(move || {
                        let mut sim = ShardSim::new(shared, slots, shard, shard_of_pe, true);
                        sim.run();
                        sim.into_outcome()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let nodes = slots.into_inner();

        // Disjoint merge: every PE (and node) is written by exactly one
        // shard; take its entries from the owner.
        let mut stats = vec![PeStats::default(); num_pes];
        for (pe, slot) in stats.iter_mut().enumerate() {
            *slot = outcomes[plan.shard_of_pe[pe]].stats[pe];
        }
        let owner = |i: usize| &outcomes[plan.shard_of_pe[shared.pe_of_node[i]]];
        let node_busy: Vec<f64> = (0..n).map(|i| owner(i).node_busy[i]).collect();
        let custom_token_emissions: Vec<u64> =
            (0..n).map(|i| owner(i).custom_token_emissions[i]).collect();
        let budget_overruns: Vec<u64> = (0..n).map(|i| owner(i).budget_overruns[i]).collect();
        let node_max_queue: Vec<usize> = (0..n).map(|i| owner(i).node_max_queue[i]).collect();
        let violations: u64 = outcomes.iter().map(|o| o.violations).sum();
        // The sequential loop leaves `now` at the time of the last popped
        // event; events pop in ascending time, so that is the maximum event
        // time over all shards (pure selection, no arithmetic).
        let now = outcomes.iter().map(|o| o.now).fold(0.0f64, f64::max);

        // Pull the recorders out so the journals (still inside `outcomes`)
        // and the recorders can be walked together during the replay.
        let mut recorders: Vec<Option<TraceRecorder>> =
            outcomes.iter_mut().map(|o| o.trace.take()).collect();
        let tracing = recorders.iter().any(Option::is_some);
        let mut merged_events: Vec<TraceEvent> = Vec::new();
        let (sink_eof_times, frame_start_times) = replay_merge(
            &shared,
            &plan,
            &outcomes,
            &mut recorders,
            &mut merged_events,
        );
        let trace = tracing.then(|| Trace {
            meta: TraceMeta::from_parts(
                &nodes,
                &shared.pe_of_node,
                num_pes,
                shared.machine.pe_clock_hz,
            ),
            events: merged_events,
            dropped: recorders.iter().flatten().map(|r| r.dropped).sum(),
        });

        let report = assemble_report(
            &shared,
            &nodes,
            stats,
            node_busy,
            now,
            violations,
            sink_eof_times,
            frame_start_times,
            &custom_token_emissions,
            budget_overruns,
            node_max_queue,
        )?;
        Ok((report, trace))
    }
}

/// Run a sequential traced pre-run of `graph` under `mapping` and return
/// each node's traced event count — the profiling weights for
/// [`ParallelTimedSimulator::new_weighted`] (ROADMAP: event-rate-aware
/// shard balancing). The pre-run uses the same configuration as the real
/// run, so its event distribution is exactly what the parallel run will
/// execute.
pub fn profile_node_weights(
    graph: &AppGraph,
    mapping: &Mapping,
    config: SimConfig,
) -> Result<Vec<u64>> {
    let config = config.with_trace(TraceOptions::default());
    let (_, trace) = TimedSimulator::new(graph, mapping, config)?.run_with_trace()?;
    Ok(trace.expect("tracing was enabled").node_event_counts())
}

/// Reconstruct the global event pop order from the per-shard journals and
/// emit the globally-ordered artifacts: sink EOF times, frame start times,
/// and (when tracing) the merged trace-event stream, exactly as the
/// sequential simulator would have recorded them. Each journal entry
/// carries its shard's trace-event count for that entry, so consuming an
/// entry also moves that many events from the shard's recorder into
/// `merged` — interleaving the shard streams in global pop order.
fn replay_merge(
    shared: &Shared,
    plan: &ShardPlan,
    outcomes: &[ShardOutcome],
    recorders: &mut [Option<TraceRecorder>],
    merged: &mut Vec<TraceEvent>,
) -> (Vec<f64>, Vec<f64>) {
    let logs: Vec<&ShardLog> = outcomes
        .iter()
        .map(|o| o.log.as_ref().expect("parallel shards record journals"))
        .collect();
    // The replay heap mirrors the sequential engine's: push order assigns
    // the global sequence numbers, pops come back in `(t, seq)` order.
    let mut heap: HeapQueue<usize> = HeapQueue::new();
    let mut push_idx = vec![0usize; logs.len()];
    let mut eofs: Vec<f64> = Vec::new();
    let mut starts: Vec<f64> = Vec::new();

    fn consume(
        sh: usize,
        entry: LogEntry,
        log: &ShardLog,
        push_idx: &mut [usize],
        heap: &mut HeapQueue<usize>,
        eofs: &mut Vec<f64>,
        starts: &mut Vec<f64>,
    ) {
        for _ in 0..entry.pushes {
            let t = log.push_times[push_idx[sh]];
            push_idx[sh] += 1;
            heap.push(t, sh);
        }
        for _ in 0..entry.eofs {
            eofs.push(entry.t);
        }
        for _ in 0..entry.starts {
            starts.push(entry.t);
        }
    }

    // Startup: the sequential engine fires every const in program order
    // (each may schedule events), then seeds one SourceEmit per source in
    // program order. Each shard performed the same steps filtered to its
    // nodes, so its journal entries are consumed as the global order visits
    // its nodes.
    let mut init_idx = vec![0usize; logs.len()];
    for &(node, _) in &shared.tables.consts {
        let sh = plan.shard_of_pe[shared.pe_of_node[node]];
        let entry = logs[sh].init[init_idx[sh]];
        if let Some(rec) = recorders[sh].as_mut() {
            let count = rec.init_counts[init_idx[sh]];
            rec.take(count, merged);
        }
        init_idx[sh] += 1;
        consume(
            sh,
            entry,
            logs[sh],
            &mut push_idx,
            &mut heap,
            &mut eofs,
            &mut starts,
        );
    }
    for s in &shared.tables.sources {
        heap.push(0.0, plan.shard_of_pe[shared.pe_of_node[s.node]]);
    }

    let mut main_idx = vec![0usize; logs.len()];
    while let Some(ev) = heap.pop() {
        let sh = ev.payload;
        let entry = logs[sh].main[main_idx[sh]];
        if let Some(rec) = recorders[sh].as_mut() {
            let count = rec.main_counts[main_idx[sh]];
            rec.take(count, merged);
        }
        main_idx[sh] += 1;
        debug_assert_eq!(
            entry.t.to_bits(),
            ev.t.to_bits(),
            "replay desync on shard {sh}: journal has t={}, heap popped t={} — \
             shards were not independent",
            entry.t,
            ev.t
        );
        consume(
            sh,
            entry,
            logs[sh],
            &mut push_idx,
            &mut heap,
            &mut eofs,
            &mut starts,
        );
    }
    for (sh, log) in logs.iter().enumerate() {
        debug_assert_eq!(
            main_idx[sh],
            log.main.len(),
            "shard {sh} journal not fully replayed"
        );
        debug_assert_eq!(push_idx[sh], log.push_times.len());
        debug_assert_eq!(
            recorders[sh].as_ref().map_or(0, |r| r.remaining()),
            0,
            "shard {sh} trace not fully merged"
        );
    }
    (eofs, starts)
}
