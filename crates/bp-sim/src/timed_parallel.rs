//! Multi-threaded timed simulation with bitwise-identical results
//! (DESIGN.md §9 and §11).
//!
//! Under the zero communication model a conservative parallel
//! discrete-event simulator has zero lookahead across any channel: two PEs
//! connected (even transitively) by channels can interact at the very
//! timestamp being processed. What runs freely in parallel then are the
//! weakly connected components of the *direct* (zero-latency) channel
//! graph — no item routing, no dispatch wave, and no back-pressure ever
//! crosses between them. [`bp_core::ShardPlan`] groups those components
//! into per-worker shards; each worker runs the ordinary event loop
//! ([`crate::timed::ShardSim`]) over its own PEs.
//!
//! A nonzero [`bp_core::CommModel`] is what buys lookahead *within* a
//! component: a delayed channel's effects (arrivals, credit returns) land
//! at least its latency after the event that caused them, so the minimum
//! latency `L` over cross-shard channels bounds how far one shard can run
//! ahead of the others without missing an incoming event — classic
//! conservative (null-message-free, barrier-windowed) PDES. A coordinator
//! repeatedly gathers every shard's earliest pending/in-flight timestamp
//! `m` and releases the workers to process events with `t < m + L`;
//! cross-shard events ride per-shard mutex inboxes and are drained at the
//! next window boundary, which they cannot precede. With positive `L` even
//! a single connected component (e.g. `fig1b`) executes on multiple
//! workers; the zero model degenerates to one infinite window per
//! component, i.e. exactly the pre-model behavior.
//!
//! Within one shard, event times and handler effects are independent of
//! the other shards during a window (disjoint node state; remote effects
//! arrive only beyond the window edge), and the pop order of the shard's
//! events equals the sequential simulator's pop order restricted to that
//! shard: band-0 events (emissions, completions) are keyed by the local
//! insertion counter, which filters the global insertion order, and band-1
//! communication events carry creation-time `(stream, seq)` ordinals that
//! are identical in both engines. Per-shard artifacts — PE stats, node
//! firings, queue depths — are therefore already bitwise equal to the
//! sequential run's, and are merged by taking each entry from its owning
//! shard.
//!
//! Globally *ordered* artifacts (the interleaving of sink end-of-frame
//! arrivals across shards, which feeds frame accounting) additionally need
//! the sequential pop order across shards. Each worker journals, per
//! processed event, the pushes it performed — time, band ordinal, and
//! *target shard* (the destination for cross-shard communication) — and
//! how many EOFs/frame-starts it recorded ([`crate::timed::ShardLog`]).
//! The merge then *replays* the global heap symbolically: it seeds the
//! startup pushes in program order, pops by `(time, band ordinal)`, and
//! consumes the popped event's target-shard journal in order,
//! reconstructing the exact global event order — and thus the exact
//! `SimReport` — without touching any kernel state.

use crate::deadlock::SimOutcome;
use crate::events::{EventQueue, HeapQueue};
use crate::parallel::DisjointSlots;
use crate::runtime::RtNode;
use crate::stats::{PeStats, SimReport};
use crate::timed::{
    assemble_outcome, build_shared, LogEntry, OutMsg, ShardLog, ShardOutcome, ShardSim, Shared,
    SimConfig, TimedSimulator,
};
use crate::trace::{Trace, TraceEvent, TraceMeta, TraceOptions, TraceRecorder};
use bp_core::graph::AppGraph;
use bp_core::machine::{Mapping, ShardPlan};
use bp_core::Result;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Counters describing how a parallel run was scheduled, for scaling
/// analysis and tests (e.g. asserting that a single-component app really
/// executed on several workers once the comm model gave it lookahead).
#[derive(Clone, Debug)]
pub struct ParallelRunStats {
    /// Worker threads the run used (1 = sequential fallback).
    pub shards: usize,
    /// Conservative lookahead: the minimum latency over cross-shard
    /// channels (`+inf` when shards are fully independent — then a single
    /// unbounded window runs each shard to completion).
    pub lookahead_s: f64,
    /// Synchronization windows the coordinator released.
    pub windows: u64,
    /// Events processed by each shard's event loop (empty in the
    /// sequential fallback).
    pub shard_events: Vec<u64>,
}

/// Timed simulator that executes independent PE interaction regions on
/// worker threads. Produces bitwise-identical [`SimReport`]s to
/// [`TimedSimulator`] for every graph, mapping, and thread count.
pub struct ParallelTimedSimulator {
    nodes: Vec<RtNode>,
    shared: Shared,
    plan: ShardPlan,
}

impl ParallelTimedSimulator {
    /// Instantiate the graph under the given mapping, targeting up to
    /// `threads` worker threads. The usable parallelism is capped by the
    /// number of independent PE regions ([`ShardPlan::num_components`]);
    /// with one region (or `threads <= 1`) the run degrades to the
    /// sequential engine.
    pub fn new(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
    ) -> Result<Self> {
        Self::build(graph, mapping, config, threads, &[])
    }

    /// Like [`new`](Self::new), but balance shards by per-node profiling
    /// weights (e.g. traced event counts from
    /// [`profile_node_weights`]) instead of resident-node counts. The
    /// weighting changes only which worker runs which component — results
    /// stay bitwise identical to the sequential engine.
    pub fn new_weighted(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
        node_weights: &[u64],
    ) -> Result<Self> {
        Self::build(graph, mapping, config, threads, node_weights)
    }

    fn build(
        graph: &AppGraph,
        mapping: &Mapping,
        config: SimConfig,
        threads: usize,
        node_weights: &[u64],
    ) -> Result<Self> {
        let (nodes, shared) = build_shared(graph, mapping, config)?;
        // Shards must not be split across *direct* (zero-latency) channels
        // — those deliver synchronously. Delayed channels are exactly the
        // safe cut points: their latency is the lookahead. Dependency
        // edges carry no runtime traffic, but fold them in anyway:
        // sharding is correctness-critical, and the cost of a merged
        // component is only lost parallelism.
        let mut edges: Vec<(usize, usize)> = shared
            .channels
            .iter()
            .filter(|c| c.latency_s <= 0.0)
            .map(|c| (c.src, c.dst))
            .collect();
        edges.extend(graph.dep_edges().iter().map(|d| (d.src.0, d.dst.0)));
        let plan = ShardPlan::build_weighted(mapping, &edges, threads.max(1), node_weights);
        Ok(Self {
            nodes,
            shared,
            plan,
        })
    }

    /// Worker threads the run will actually use.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards
    }

    /// Run the simulation to completion and report. A capacity deadlock
    /// becomes a simulation error carrying the rendered
    /// [`DeadlockReport`](crate::deadlock::DeadlockReport); use
    /// [`run_outcome`](Self::run_outcome) for the structured diagnosis.
    pub fn run(self) -> Result<SimReport> {
        self.run_with_stats().map(|(report, _, _)| report)
    }

    /// Run the simulation and report how it settled: completed, or
    /// capacity-deadlocked with a structured
    /// [`DeadlockReport`](crate::deadlock::DeadlockReport). The outcome —
    /// deadlock diagnosis included — is assembled from the merged shard
    /// state and is bitwise identical to the sequential engine's at any
    /// thread count.
    pub fn run_outcome(self) -> SimOutcome {
        self.run_outcome_with_stats().0
    }

    /// Run the simulation and also return the merged [`Trace`] when
    /// [`SimConfig::trace`] was set (`None` otherwise). The per-shard
    /// streams are interleaved by the journal replay into the global
    /// `(t, ord)` pop order, so — as long as no ring dropped events — the
    /// merged trace is bitwise identical to the sequential engine's at any
    /// thread count.
    pub fn run_with_trace(self) -> Result<(SimReport, Option<Trace>)> {
        self.run_with_stats()
            .map(|(report, trace, _)| (report, trace))
    }

    /// Run and additionally return [`ParallelRunStats`] describing the
    /// parallel schedule (shards, lookahead, windows, per-shard events).
    pub fn run_with_stats(self) -> Result<(SimReport, Option<Trace>, ParallelRunStats)> {
        let (outcome, trace, stats) = self.run_outcome_with_stats();
        Ok((outcome.into_report()?, trace, stats))
    }

    /// [`run_outcome`](Self::run_outcome), plus the merged trace (when
    /// tracing was enabled) and the [`ParallelRunStats`].
    pub fn run_outcome_with_stats(self) -> (SimOutcome, Option<Trace>, ParallelRunStats) {
        let Self {
            nodes,
            shared,
            plan,
        } = self;
        if plan.num_shards <= 1 {
            let (outcome, trace) =
                TimedSimulator::from_parts(nodes, shared).run_outcome_with_trace();
            let stats = ParallelRunStats {
                shards: 1,
                lookahead_s: f64::INFINITY,
                windows: 0,
                shard_events: Vec::new(),
            };
            return (outcome, trace, stats);
        }
        let n = nodes.len();
        let num_pes = shared.residents.len();
        // Conservative lookahead: no cross-shard channel can deliver an
        // effect sooner than this after its cause. Cross-shard channels are
        // delayed by construction (direct edges are never cut), so with any
        // of them present this is positive; with none it is +inf and each
        // shard runs to completion in one window.
        let lookahead_s = shared
            .channels
            .iter()
            .filter(|c| {
                plan.shard_of_pe[shared.pe_of_node[c.src]]
                    != plan.shard_of_pe[shared.pe_of_node[c.dst]]
            })
            .map(|c| c.latency_s)
            .fold(f64::INFINITY, f64::min);
        let slots = DisjointSlots::new(nodes);
        // Cross-shard communication inboxes, one per destination shard.
        let inboxes: Vec<Mutex<Vec<OutMsg>>> = (0..plan.num_shards)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        // Per-shard published timestamps (f64 bits): the earliest pending
        // local event and the earliest message sent to another shard since
        // the last publication. All simulation times are non-negative, so
        // the bit patterns order like the floats.
        let next_t: Vec<AtomicU64> = (0..plan.num_shards)
            .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
            .collect();
        let min_out: Vec<AtomicU64> = (0..plan.num_shards)
            .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
            .collect();
        let window = AtomicU64::new(f64::INFINITY.to_bits());
        let stop = AtomicBool::new(false);
        // Workers + coordinator rendezvous twice per round: once so every
        // worker has published its timestamps, once so the coordinator has
        // set the window (or the stop flag).
        let barrier = Barrier::new(plan.num_shards + 1);
        let mut windows = 0u64;
        let mut outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.num_shards)
                .map(|shard| {
                    let (shared, slots) = (&shared, &slots);
                    let (inboxes, barrier) = (&inboxes[..], &barrier);
                    let (next_t, min_out) = (&next_t[..], &min_out[..]);
                    let (window, stop) = (&window, &stop);
                    let shard_of_pe = &plan.shard_of_pe[..];
                    scope.spawn(move || {
                        let mut sim =
                            ShardSim::new(shared, slots, shard, shard_of_pe, true, Some(inboxes));
                        sim.init();
                        next_t[shard].store(sim.next_pending().to_bits(), Ordering::SeqCst);
                        min_out[shard].store(sim.take_min_out().to_bits(), Ordering::SeqCst);
                        loop {
                            barrier.wait();
                            barrier.wait();
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let end = f64::from_bits(window.load(Ordering::SeqCst));
                            sim.drain_inbox();
                            let nt = sim.run_window(end);
                            next_t[shard].store(nt.to_bits(), Ordering::SeqCst);
                            min_out[shard].store(sim.take_min_out().to_bits(), Ordering::SeqCst);
                        }
                        sim.into_outcome()
                    })
                })
                .collect();
            // Coordinator: release windows until every shard is idle with
            // nothing in flight. Any message a worker sent this round is
            // visible in its `min_out` publication, so "all +inf" is a
            // sound global-quiescence test.
            loop {
                barrier.wait();
                let horizon = (0..plan.num_shards)
                    .map(|s| {
                        f64::from_bits(next_t[s].load(Ordering::SeqCst))
                            .min(f64::from_bits(min_out[s].load(Ordering::SeqCst)))
                    })
                    .fold(f64::INFINITY, f64::min);
                if horizon.is_infinite() {
                    stop.store(true, Ordering::SeqCst);
                } else {
                    window.store((horizon + lookahead_s).to_bits(), Ordering::SeqCst);
                    windows += 1;
                }
                barrier.wait();
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let nodes = slots.into_inner();

        // Disjoint merge: every PE (and node) is written by exactly one
        // shard; take its entries from the owner.
        let mut stats = vec![PeStats::default(); num_pes];
        for (pe, slot) in stats.iter_mut().enumerate() {
            *slot = outcomes[plan.shard_of_pe[pe]].stats[pe];
        }
        let owner = |i: usize| &outcomes[plan.shard_of_pe[shared.pe_of_node[i]]];
        let node_busy: Vec<f64> = (0..n).map(|i| owner(i).node_busy[i]).collect();
        let custom_token_emissions: Vec<u64> =
            (0..n).map(|i| owner(i).custom_token_emissions[i]).collect();
        let budget_overruns: Vec<u64> = (0..n).map(|i| owner(i).budget_overruns[i]).collect();
        let node_max_queue: Vec<usize> = (0..n).map(|i| owner(i).node_max_queue[i]).collect();
        // A channel's credits live with its *source* shard (the spender).
        let credits: Vec<i64> = shared
            .channels
            .iter()
            .enumerate()
            .map(|(ci, c)| outcomes[plan.shard_of_pe[shared.pe_of_node[c.src]]].credits[ci])
            .collect();
        let violations: u64 = outcomes.iter().map(|o| o.violations).sum();
        // The sequential loop leaves `now` at the time of the last popped
        // event; events pop in ascending time, so that is the maximum event
        // time over all shards (pure selection, no arithmetic).
        let now = outcomes.iter().map(|o| o.now).fold(0.0f64, f64::max);

        // Pull the recorders out so the journals (still inside `outcomes`)
        // and the recorders can be walked together during the replay.
        let mut recorders: Vec<Option<TraceRecorder>> =
            outcomes.iter_mut().map(|o| o.trace.take()).collect();
        let tracing = recorders.iter().any(Option::is_some);
        let mut merged_events: Vec<TraceEvent> = Vec::new();
        let (sink_eof_times, frame_start_times) = replay_merge(
            &shared,
            &plan,
            &outcomes,
            &mut recorders,
            &mut merged_events,
        );
        let trace = tracing.then(|| Trace {
            meta: TraceMeta::from_parts(
                &nodes,
                &shared.pe_of_node,
                num_pes,
                shared.machine.pe_clock_hz,
                &shared.channels,
            ),
            events: merged_events,
            dropped: recorders.iter().flatten().map(|r| r.dropped).sum(),
        });

        let run_stats = ParallelRunStats {
            shards: plan.num_shards,
            lookahead_s,
            windows,
            shard_events: outcomes
                .iter()
                .map(|o| o.log.as_ref().map_or(0, |l| l.main.len() as u64))
                .collect(),
        };
        let outcome = assemble_outcome(
            &shared,
            &nodes,
            stats,
            node_busy,
            now,
            violations,
            sink_eof_times,
            frame_start_times,
            &custom_token_emissions,
            budget_overruns,
            node_max_queue,
            &credits,
        );
        (outcome, trace, run_stats)
    }
}

/// Run a sequential traced pre-run of `graph` under `mapping` and return
/// each node's traced event count — the profiling weights for
/// [`ParallelTimedSimulator::new_weighted`] (ROADMAP: event-rate-aware
/// shard balancing). The pre-run uses the same configuration as the real
/// run, so its event distribution is exactly what the parallel run will
/// execute.
pub fn profile_node_weights(
    graph: &AppGraph,
    mapping: &Mapping,
    config: SimConfig,
) -> Result<Vec<u64>> {
    let config = config.with_trace(TraceOptions::default());
    let (_, trace) = TimedSimulator::new(graph, mapping, config)?.run_with_trace()?;
    Ok(trace.expect("tracing was enabled").node_event_counts())
}

/// Reconstruct the global event pop order from the per-shard journals and
/// emit the globally-ordered artifacts: sink EOF times, frame start times,
/// and (when tracing) the merged trace-event stream, exactly as the
/// sequential simulator would have recorded them. Each journal entry
/// carries its shard's trace-event count for that entry, so consuming an
/// entry also moves that many events from the shard's recorder into
/// `merged` — interleaving the shard streams in global pop order.
fn replay_merge(
    shared: &Shared,
    plan: &ShardPlan,
    outcomes: &[ShardOutcome],
    recorders: &mut [Option<TraceRecorder>],
    merged: &mut Vec<TraceEvent>,
) -> (Vec<f64>, Vec<f64>) {
    let logs: Vec<&ShardLog> = outcomes
        .iter()
        .map(|o| o.log.as_ref().expect("parallel shards record journals"))
        .collect();
    // The replay heap mirrors the sequential engine's: push order assigns
    // the global sequence numbers, pops come back in `(t, seq)` order.
    let mut heap: HeapQueue<usize> = HeapQueue::new();
    let mut push_idx = vec![0usize; logs.len()];
    let mut eofs: Vec<f64> = Vec::new();
    let mut starts: Vec<f64> = Vec::new();

    fn consume(
        sh: usize,
        entry: LogEntry,
        log: &ShardLog,
        push_idx: &mut [usize],
        heap: &mut HeapQueue<usize>,
        eofs: &mut Vec<f64>,
        starts: &mut Vec<f64>,
    ) {
        for _ in 0..entry.pushes {
            let rec = log.pushes[push_idx[sh]];
            push_idx[sh] += 1;
            // Band-0 pushes take the replay heap's insertion counter —
            // reproducing the sequential engine's counter stream, because
            // the replay performs the pushes in the sequential order.
            // Band-1 pushes carry their creation-time ordinal. The payload
            // is the shard whose journal the event consumes when popped:
            // the *destination* shard for cross-shard communication.
            if rec.ord == 0 {
                heap.push(rec.t, rec.target as usize);
            } else {
                heap.push_ord(rec.t, rec.ord, rec.target as usize);
            }
        }
        for _ in 0..entry.eofs {
            eofs.push(entry.t);
        }
        for _ in 0..entry.starts {
            starts.push(entry.t);
        }
    }

    // Startup: the sequential engine fires every const in program order
    // (each may schedule events), then seeds one SourceEmit per source in
    // program order. Each shard performed the same steps filtered to its
    // nodes, so its journal entries are consumed as the global order visits
    // its nodes.
    let mut init_idx = vec![0usize; logs.len()];
    for &(node, _) in &shared.tables.consts {
        let sh = plan.shard_of_pe[shared.pe_of_node[node]];
        let entry = logs[sh].init[init_idx[sh]];
        if let Some(rec) = recorders[sh].as_mut() {
            let count = rec.init_counts[init_idx[sh]];
            rec.take(count, merged);
        }
        init_idx[sh] += 1;
        consume(
            sh,
            entry,
            logs[sh],
            &mut push_idx,
            &mut heap,
            &mut eofs,
            &mut starts,
        );
    }
    for s in &shared.tables.sources {
        heap.push(0.0, plan.shard_of_pe[shared.pe_of_node[s.node]]);
    }

    let mut main_idx = vec![0usize; logs.len()];
    while let Some(ev) = heap.pop() {
        let sh = ev.payload;
        let entry = logs[sh].main[main_idx[sh]];
        if let Some(rec) = recorders[sh].as_mut() {
            let count = rec.main_counts[main_idx[sh]];
            rec.take(count, merged);
        }
        main_idx[sh] += 1;
        debug_assert_eq!(
            entry.t.to_bits(),
            ev.t.to_bits(),
            "replay desync on shard {sh}: journal has t={}, heap popped t={} — \
             shards were not independent",
            entry.t,
            ev.t
        );
        consume(
            sh,
            entry,
            logs[sh],
            &mut push_idx,
            &mut heap,
            &mut eofs,
            &mut starts,
        );
    }
    for (sh, log) in logs.iter().enumerate() {
        debug_assert_eq!(
            main_idx[sh],
            log.main.len(),
            "shard {sh} journal not fully replayed"
        );
        debug_assert_eq!(push_idx[sh], log.pushes.len());
        debug_assert_eq!(
            recorders[sh].as_ref().map_or(0, |r| r.remaining()),
            0,
            "shard {sh} trace not fully merged"
        );
    }
    (eofs, starts)
}
