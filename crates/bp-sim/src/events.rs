//! Event queues for the discrete-event simulators.
//!
//! The timed simulator's pending-event set is dominated by periodic
//! `SourceEmit` ticks and `PeDone` completions drawn from a handful of
//! distinct deltas, so event times cluster tightly. [`BucketQueue`] exploits
//! that with an index-min calendar queue: events are hashed into a ring of
//! buckets by quantized time, the cursor walks the ring, and each pop scans
//! one small bucket for the true minimum. Ordering is **exactly** the
//! ordering of the previous `BinaryHeap` implementation — ascending time,
//! ties broken by insertion order (`seq`) — because quantization only picks
//! the bucket to scan, never the winner within it. [`HeapQueue`] keeps the
//! binary-heap implementation for differential testing and benchmarking
//! (`bp-bench/benches/event_queue.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pending event: a timestamp, an insertion sequence number for
/// deterministic tie-breaking, and an engine-defined payload.
#[derive(Clone, Copy, Debug)]
pub struct Event<P> {
    /// Event time in simulated seconds.
    pub t: f64,
    /// Insertion order, assigned by the queue; ties on `t` pop in
    /// ascending `seq`.
    pub seq: u64,
    /// Engine payload (e.g. which PE finished).
    pub payload: P,
}

/// Common interface of the two queue implementations, so benchmarks and
/// differential tests can drive either.
pub trait EventQueue<P> {
    /// Insert an event at time `t`; later insertions at the same `t` pop
    /// later.
    fn push(&mut self, t: f64, payload: P);
    /// Insert an event with an explicit, caller-assigned ordering key
    /// instead of the internal insertion counter. The queue's counter is
    /// not advanced, so `push` ordering among counter-keyed events is
    /// unaffected. Used for two purposes: re-inserting a popped event
    /// unchanged (windowed execution), and *cross-engine deterministic*
    /// keys for communication events — the delay model keys channel
    /// arrivals and credit returns by `(1 << 63) | stream | sequence`,
    /// which sorts after every counter-keyed event at the same time and
    /// identically in the sequential and parallel engines.
    fn push_ord(&mut self, t: f64, ord: u64, payload: P);
    /// Remove and return the earliest event (smallest `(t, seq)`).
    fn pop(&mut self) -> Option<Event<P>>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary-heap reference implementation.
// ---------------------------------------------------------------------------

struct HeapEntry<P> {
    t: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: smaller time first; ties resolved by insertion order.
        other
            .t
            .partial_cmp(&self.t)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The pre-optimization `BinaryHeap` event queue, kept as the ordering
/// reference for tests and the comparison microbenchmark.
pub struct HeapQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    seq: u64,
}

impl<P> Default for HeapQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> HeapQueue<P> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<P> EventQueue<P> for HeapQueue<P> {
    fn push(&mut self, t: f64, payload: P) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            t,
            seq: self.seq,
            payload,
        });
    }

    fn push_ord(&mut self, t: f64, ord: u64, payload: P) {
        self.heap.push(HeapEntry {
            t,
            seq: ord,
            payload,
        });
    }

    fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|e| Event {
            t: e.t,
            seq: e.seq,
            payload: e.payload,
        })
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar / bucket queue.
// ---------------------------------------------------------------------------

/// Ring size; a power of two so bucket indexing is a mask.
const RING: usize = 1024;

/// Pops between bucket-width retuning checkpoints. Large enough that the
/// measured mean inter-pop delta is stable and the O(pending) rebuild
/// amortizes to noise, small enough to catch a workload shift (e.g. the
/// engine leaving its dense startup transient) within a few thousand
/// events.
const RETUNE_PERIOD: u32 = 4096;

struct BucketEntry<P> {
    t: f64,
    seq: u64,
    /// Quantized absolute key, cached so pops never re-derive it.
    key: u64,
    payload: P,
}

/// An index-min bucket (calendar) queue keyed on quantized time.
///
/// `quantum` is the bucket width in simulated seconds; the constructor
/// argument seeds it, and the queue then **self-tunes** it to the observed
/// event spacing (see below). Events within the ring horizon (`RING`
/// quanta ahead of the cursor) go into their bucket; further events wait
/// in an overflow list that is drained ring-wise as the cursor crosses
/// into each new "day" (one full ring revolution). A pop scans the
/// cursor's bucket for the minimum `(t, seq)` among entries of the
/// current key, so same-bucket events of different days or sub-quantum
/// time offsets are still popped in exact order.
///
/// # Self-tuning bucket width
///
/// A calendar queue is only fast when the bucket width matches the event
/// spacing: too narrow and typical deltas overshoot the ring horizon, so
/// every push lands in the overflow list and every ring drain pays an
/// O(overflow) migration scan; too wide and the pending set collapses
/// into a few buckets whose linear min-scans recreate the heap's cost.
/// The engine cannot pick a good width up front — it depends on the
/// application's firing durations and source rates. So every
/// [`RETUNE_PERIOD`] pops the queue measures the mean inter-pop time
/// delta over the elapsed window (the classic calendar-queue rule:
/// width ≈ mean gap ⇒ the cursor advances about one bucket per pop) and,
/// when the current width is off by more than 2× either way, rebuilds the
/// ring with the new width in O(pending). Retuning never changes pop
/// order: the quantum only selects which bucket an entry waits in, and
/// the pop scan always resolves exact `(t, seq)` order within the
/// earliest occupied bucket, so any monotone re-bucketing pops the same
/// sequence ([`tests`] pin this differentially against [`HeapQueue`]).
pub struct BucketQueue<P> {
    buckets: Vec<Vec<BucketEntry<P>>>,
    /// One bit per ring bucket ("occupied"), so the cursor jumps straight
    /// to the next non-empty bucket instead of probing empties one by one —
    /// the "index" of index-min. Sparse queues with long deltas (a 5 ms
    /// source period is ~10^6 cycle-quanta) would otherwise walk the whole
    /// ring between pops.
    occupied: [u64; RING / 64],
    inv_quantum: f64,
    /// Quantized key the cursor is standing on.
    cur_key: u64,
    /// Entries with keys at or beyond the current day's horizon.
    overflow: Vec<BucketEntry<P>>,
    /// Entries currently stored in ring buckets.
    ring_len: usize,
    len: usize,
    seq: u64,
    /// Timestamp of the most recent pop (0 before the first), the anchor
    /// both for the next retune window and for the rebuilt cursor.
    last_pop_t: f64,
    /// Pops since the last retune checkpoint.
    tune_pops: u32,
    /// `last_pop_t` at the last checkpoint.
    tune_t0: f64,
    /// Completed bucket-width rebuilds (observability for tests/benches).
    retunes: u64,
}

impl<P> BucketQueue<P> {
    /// Queue with the given bucket width in seconds (must be positive).
    pub fn new(quantum: f64) -> Self {
        assert!(quantum > 0.0, "bucket quantum must be positive");
        Self {
            buckets: (0..RING).map(|_| Vec::new()).collect(),
            occupied: [0; RING / 64],
            inv_quantum: 1.0 / quantum,
            cur_key: 0,
            overflow: Vec::new(),
            ring_len: 0,
            len: 0,
            seq: 0,
            last_pop_t: 0.0,
            tune_pops: 0,
            tune_t0: 0.0,
            retunes: 0,
        }
    }

    /// The current bucket width in seconds (the constructor's seed until
    /// the first retune).
    pub fn quantum(&self) -> f64 {
        1.0 / self.inv_quantum
    }

    /// How many times the queue has rebuilt itself with a retuned width.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    #[inline]
    fn quantize(&self, t: f64) -> u64 {
        (t * self.inv_quantum) as u64
    }

    /// End (exclusive) of the day the cursor is in: the horizon beyond
    /// which pushed entries go to the overflow list.
    #[inline]
    fn day_end(&self) -> u64 {
        (self.cur_key / RING as u64 + 1) * RING as u64
    }

    fn store(&mut self, e: BucketEntry<P>) {
        if e.key < self.day_end() {
            let idx = (e.key as usize) & (RING - 1);
            self.buckets[idx].push(e);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.ring_len += 1;
        } else {
            self.overflow.push(e);
        }
    }

    /// Move overflow entries that now fall inside the cursor's day into
    /// their ring buckets.
    fn migrate(&mut self) {
        let horizon = self.day_end();
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].key < horizon {
                let e = self.overflow.swap_remove(i);
                let idx = (e.key as usize) & (RING - 1);
                self.buckets[idx].push(e);
                self.occupied[idx / 64] |= 1 << (idx % 64);
                self.ring_len += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Checkpoint the pop stream and, when the observed mean inter-pop
    /// delta says the bucket width is off by more than 2× in either
    /// direction, rebuild with the measured width. Called once per pop;
    /// everything but the counter bump is amortized behind the
    /// `RETUNE_PERIOD` gate.
    #[inline]
    fn maybe_retune(&mut self) {
        self.tune_pops += 1;
        if self.tune_pops < RETUNE_PERIOD {
            return;
        }
        let span = self.last_pop_t - self.tune_t0;
        self.tune_pops = 0;
        self.tune_t0 = self.last_pop_t;
        // An all-ties window (or a zero-span startup burst) measures no
        // spacing; keep the current width rather than dividing by zero.
        if span <= 0.0 {
            return;
        }
        let target = span / RETUNE_PERIOD as f64;
        let cur = 1.0 / self.inv_quantum;
        // 2× hysteresis: bucket occupancy degrades linearly with the
        // width ratio, so small drifts are not worth an O(pending)
        // rebuild (and re-quantization churn) every checkpoint.
        if target < 2.0 * cur && 2.0 * target > cur {
            return;
        }
        self.rebuild(target);
    }

    /// Re-bucket every pending entry under a new quantum. The cursor moves
    /// to the new quantization of the last popped time; entry keys clamp
    /// to it exactly as pushes do, so the store invariants (keys in
    /// `[cur_key, ∞)`, ring entries within the cursor's day) are restored
    /// and pop order — resolved by exact `(t, seq)` within a bucket — is
    /// untouched.
    fn rebuild(&mut self, quantum: f64) {
        self.retunes += 1;
        self.inv_quantum = 1.0 / quantum;
        let mut pending: Vec<BucketEntry<P>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            pending.append(bucket);
        }
        pending.append(&mut self.overflow);
        self.occupied = [0; RING / 64];
        self.ring_len = 0;
        self.cur_key = self.quantize(self.last_pop_t);
        for mut e in pending {
            e.key = self.quantize(e.t).max(self.cur_key);
            self.store(e);
        }
    }

    /// First occupied bucket index at or after `from`, if any. Every ring
    /// entry's key lies in `[cur_key, day_end)`, so with `from` at the
    /// cursor's ring position there is never an occupied bucket behind it.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == RING / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

impl<P> EventQueue<P> for BucketQueue<P> {
    fn push(&mut self, t: f64, payload: P) {
        self.seq += 1;
        // Events are never scheduled before the cursor's time (discrete
        // event simulation only schedules at or after `now`), but clamp so
        // that a same-time push whose key would round below the cursor —
        // after the cursor already advanced within the quantum — is still
        // reachable.
        let key = self.quantize(t).max(self.cur_key);
        self.len += 1;
        self.store(BucketEntry {
            t,
            seq: self.seq,
            key,
            payload,
        });
    }

    fn push_ord(&mut self, t: f64, ord: u64, payload: P) {
        let key = self.quantize(t).max(self.cur_key);
        self.len += 1;
        self.store(BucketEntry {
            t,
            seq: ord,
            key,
            payload,
        });
    }

    fn pop(&mut self) -> Option<Event<P>> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Everything pending is in overflow: jump the cursor to the
            // start of the earliest overflow entry's day and migrate. The
            // minimum key lands in that day, so the ring is non-empty after.
            let min_key = self
                .overflow
                .iter()
                .map(|e| e.key)
                .min()
                .expect("len > 0 but no entries");
            self.cur_key = min_key - min_key % RING as u64;
            self.migrate();
        }
        let day_start = self.cur_key - self.cur_key % RING as u64;
        let idx = self
            .next_occupied((self.cur_key - day_start) as usize)
            .expect("ring entries are always within the cursor's day");
        self.cur_key = day_start + idx as u64;
        let bucket = &mut self.buckets[idx];
        // Within one day the bucket index determines the key, so every
        // entry here is at `cur_key` exactly; scan for the min `(t, seq)`.
        let mut best = 0usize;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            debug_assert_eq!(e.key, self.cur_key);
            let (bt, bs) = (bucket[best].t, bucket[best].seq);
            if e.t < bt || (e.t == bt && e.seq < bs) {
                best = i;
            }
        }
        let e = bucket.swap_remove(best);
        if bucket.is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.ring_len -= 1;
        self.len -= 1;
        self.last_pop_t = e.t;
        self.maybe_retune();
        Some(Event {
            t: e.t,
            seq: e.seq,
            payload: e.payload,
        })
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::Rng64;

    /// Drive both queues with an identical randomized push/pop schedule and
    /// demand bit-identical pop sequences (times, payloads, and implied
    /// insertion order).
    fn differential(quantum: f64, deltas: &[f64], seed: u64, ops: usize) {
        let mut bucket: BucketQueue<u32> = BucketQueue::new(quantum);
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let mut rng = Rng64::seed_from_u64(seed);
        let mut now = 0.0f64;
        let mut id = 0u32;
        for _ in 0..ops {
            let burst = (rng.next_u64() % 4) as usize;
            for _ in 0..burst {
                let dt = deltas[(rng.next_u64() as usize) % deltas.len()];
                bucket.push(now + dt, id);
                heap.push(now + dt, id);
                id += 1;
            }
            if !rng.next_u64().is_multiple_of(3) {
                let a = bucket.pop();
                let b = heap.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.t.to_bits(), y.t.to_bits(), "pop time diverged");
                        assert_eq!(x.payload, y.payload, "pop order diverged");
                        now = x.t;
                    }
                    _ => panic!("queue lengths diverged"),
                }
            }
            assert_eq!(bucket.len(), heap.len());
        }
        // Drain both to the end.
        loop {
            match (bucket.pop(), heap.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.t.to_bits(), y.t.to_bits());
                    assert_eq!(x.payload, y.payload);
                }
                _ => panic!("drain lengths diverged"),
            }
        }
    }

    #[test]
    fn matches_heap_on_simulation_like_deltas() {
        // Deltas shaped like the timed simulator's: a few distinct firing
        // durations plus a periodic source tick, all near the quantum.
        let deltas = [1.0e-6, 2.5e-6, 5.2083e-6, 1.5625e-7, 9.7e-6];
        differential(1.0e-6, &deltas, 0x5eed, 4000);
    }

    #[test]
    fn matches_heap_with_identical_times() {
        // Heavy tie traffic: every event lands on one of two instants per
        // step, exercising seq-order tie-breaking inside one bucket.
        let deltas = [2.0e-6, 2.0e-6, 4.0e-6];
        differential(1.0e-6, &deltas, 42, 3000);
    }

    #[test]
    fn matches_heap_across_overflow_horizon() {
        // Deltas far beyond the ring horizon (1024 quanta) force the
        // overflow path and day migration.
        let deltas = [0.5e-6, 3.0e-3, 9.0e-3, 2.0e-2];
        differential(1.0e-6, &deltas, 7, 1500);
    }

    #[test]
    fn push_ord_orders_after_counter_events_at_same_time() {
        // Counter-keyed (band-0) events at time t pop before any explicitly
        // keyed (band-1) event at the same t, and band-1 events order by
        // their explicit keys — identically in both implementations.
        const BAND1: u64 = 1 << 63;
        let mut bucket: BucketQueue<u32> = BucketQueue::new(1e-6);
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        for q in [
            &mut bucket as &mut dyn EventQueue<u32>,
            &mut heap as &mut dyn EventQueue<u32>,
        ] {
            q.push_ord(2e-6, BAND1 | (7 << 32) | 1, 10);
            q.push(2e-6, 0);
            q.push_ord(2e-6, BAND1 | (3 << 32) | 9, 11);
            q.push(1e-6, 1);
            q.push(2e-6, 2);
        }
        let order = |q: &mut dyn EventQueue<u32>| {
            let mut v = Vec::new();
            while let Some(e) = q.pop() {
                v.push(e.payload);
            }
            v
        };
        let b = order(&mut bucket);
        assert_eq!(b, vec![1, 0, 2, 11, 10]);
        assert_eq!(b, order(&mut heap));
    }

    #[test]
    fn retunes_toward_observed_spacing_without_reordering() {
        // Seed the width three decades too narrow for the traffic (every
        // delta is 1000–5000 quanta, so pushes overshoot the ring horizon
        // constantly). The differential harness runs >> RETUNE_PERIOD ops,
        // so the queue must retune — and keep popping in heap order while
        // and after it does.
        let deltas = [1.0e-3, 2.5e-3, 5.0e-3];
        differential(1.0e-6, &deltas, 0xabcd, 9000);
        // Observability: the same traffic, driven directly.
        let mut q: BucketQueue<u32> = BucketQueue::new(1.0e-6);
        let mut now = 0.0;
        for i in 0..2 * RETUNE_PERIOD {
            q.push(now + 1.0e-3, i);
            now = q.pop().unwrap().t;
        }
        assert!(q.retunes() >= 1, "mis-seeded width was never retuned");
        let w = q.quantum();
        assert!(
            w > 0.25e-3 && w < 4.0e-3,
            "retuned width {w:e} is not near the 1e-3 observed spacing"
        );
    }

    #[test]
    fn width_stays_put_when_well_tuned() {
        // Spacing equal to the seeded width: the measured target sits
        // inside the 2x hysteresis band, so no rebuild should ever fire.
        let mut q: BucketQueue<u32> = BucketQueue::new(1.0e-6);
        let mut now = 0.0;
        for i in 0..4 * RETUNE_PERIOD {
            q.push(now + 1.0e-6, i);
            now = q.pop().unwrap().t;
        }
        assert_eq!(q.retunes(), 0);
        assert_eq!(q.quantum(), 1.0e-6);
    }

    #[test]
    fn empty_pops_none() {
        let mut q: BucketQueue<()> = BucketQueue::new(1e-6);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        q.push(0.0, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().t, 0.0);
        assert!(q.pop().is_none());
    }
}
