//! Structured capacity-deadlock diagnostics.
//!
//! When a timed simulation settles with a node still holding a fireable
//! plan, the only thing that can have stopped it is downstream capacity —
//! a genuine capacity deadlock. Both engines assemble the same
//! [`DeadlockReport`] from the settled (merged, for the parallel engine)
//! program state: the wait-for cycle of filled channels with per-channel
//! occupancy, the minimal single-channel capacity bump that would unblock a
//! producer, and the classic stuck-node dump. The report is `PartialEq` and
//! fingerprintable, so cross-engine bitwise identity is assertable exactly
//! like [`SimReport`](crate::stats::SimReport) equality on successful runs.

use crate::stats::SimReport;
use bp_core::{BpError, Result};
use std::fmt::Write as _;

/// One hop of the wait-for cycle: a blocked producer's first full output
/// channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockHop {
    /// Producing node's instance name.
    pub src: String,
    /// Producing output port name.
    pub src_port: String,
    /// Consuming node's instance name.
    pub dst: String,
    /// Consuming input port name.
    pub dst_port: String,
    /// Items currently held by the channel (queued plus, for a delayed
    /// channel, in flight).
    pub occupancy: usize,
    /// The channel's resolved capacity.
    pub capacity: usize,
}

impl DeadlockHop {
    /// True when the hop channel blocks its producer (`occupancy + 2 >
    /// capacity`, the engine's space rule). Always true for wait-for-cycle
    /// hops; a starved-loop cycle also lists the hops that still have room.
    pub fn is_full(&self) -> bool {
        self.occupancy + 2 > self.capacity
    }

    /// `"Src.out -> Dst.in (occ/cap full)"`, the wait-for-cycle hop format
    /// (the ` full` marker only appears on hops that block their producer).
    pub fn render(&self) -> String {
        format!(
            "{}.{} -> {}.{} ({}/{}{})",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.occupancy,
            self.capacity,
            if self.is_full() { " full" } else { "" }
        )
    }
}

/// The smallest single-channel capacity increase that would let one blocked
/// producer on the cycle fire again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityBump {
    /// The channel to grow, as `"Src.out -> Dst.in"`.
    pub channel: String,
    /// Its current capacity.
    pub current: usize,
    /// The capacity that would unblock its producer (occupancy plus the
    /// engine's 2-item emission slack).
    pub required: usize,
}

/// A structured capacity-deadlock diagnosis, produced identically by the
/// sequential and parallel timed engines.
#[derive(Clone, Debug, PartialEq)]
pub struct DeadlockReport {
    /// Total items queued across every node at settlement.
    pub queued_items: usize,
    /// The cycle of channels implicated in the deadlock, in walk order;
    /// empty when no cycle could be identified (a blocked chain
    /// dead-ending outside any loop).
    pub cycle: Vec<DeadlockHop>,
    /// True when `cycle` is a *wait-for* cycle: every hop's producer is
    /// blocked on the (full) hop channel. False when the blocked producers
    /// form a chain instead and `cycle` is the feedback loop the chain's
    /// head starves on — the loop's circulating population no longer fits
    /// its channel capacities, so only some hops are full.
    pub blocked_cycle: bool,
    /// The minimal single-channel capacity bump that would unblock a
    /// producer on the cycle (`None` when no cycle was found).
    pub min_capacity_bump: Option<CapacityBump>,
    /// The stuck-node dump (per-node queue occupancy), rendered by
    /// [`crate::runtime::stuck_report`].
    pub stuck: String,
}

impl DeadlockReport {
    /// Render the diagnostic message — the exact string
    /// `TimedSimulator::run` returns as its simulation error. The
    /// wait-for-cycle form is byte-identical to the legacy diagnostic.
    pub fn render(&self) -> String {
        if self.cycle.is_empty() {
            return format!(
                "capacity deadlock with {} items queued:\n{}",
                self.queued_items, self.stuck
            );
        }
        let mut s = format!(
            "capacity deadlock with {} items queued; {}: ",
            self.queued_items,
            if self.blocked_cycle {
                "wait-for cycle"
            } else {
                "starved feedback loop"
            }
        );
        for (k, hop) in self.cycle.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}", hop.render());
        }
        s.push('\n');
        s.push_str(&self.stuck);
        s
    }

    /// FNV-1a hash over every field; two reports fingerprint equal iff they
    /// are bitwise identical (every variable-length field folds its length
    /// in first).
    pub fn fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            fn word(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
            fn text(&mut self, s: &str) {
                self.word(s.len() as u64);
                for b in s.bytes() {
                    self.byte(b);
                }
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        h.word(self.queued_items as u64);
        h.word(self.blocked_cycle as u64);
        h.word(self.cycle.len() as u64);
        for hop in &self.cycle {
            h.text(&hop.src);
            h.text(&hop.src_port);
            h.text(&hop.dst);
            h.text(&hop.dst_port);
            h.word(hop.occupancy as u64);
            h.word(hop.capacity as u64);
        }
        match &self.min_capacity_bump {
            None => h.word(0),
            Some(b) => {
                h.word(1);
                h.text(&b.channel);
                h.word(b.current as u64);
                h.word(b.required as u64);
            }
        }
        h.text(&self.stuck);
        h.0
    }
}

/// How a timed simulation settled: a completed [`SimReport`], or a capacity
/// deadlock with its structured diagnosis. Returned by
/// `TimedSimulator::run_outcome` and `ParallelTimedSimulator::run_outcome`;
/// the plain `run` APIs convert a deadlock into a simulation error carrying
/// [`DeadlockReport::render`].
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum SimOutcome {
    /// The simulation drained cleanly.
    Completed(SimReport),
    /// The simulation settled with blocked producers.
    Deadlocked(DeadlockReport),
}

impl SimOutcome {
    /// The completed report, or the deadlock rendered as a simulation error
    /// (the legacy `run()` contract).
    pub fn into_report(self) -> Result<SimReport> {
        match self {
            SimOutcome::Completed(report) => Ok(report),
            SimOutcome::Deadlocked(d) => Err(BpError::Simulation(d.render())),
        }
    }

    /// The deadlock diagnosis, if the run deadlocked.
    pub fn deadlock(&self) -> Option<&DeadlockReport> {
        match self {
            SimOutcome::Completed(_) => None,
            SimOutcome::Deadlocked(d) => Some(d),
        }
    }

    /// True when the run drained cleanly.
    pub fn is_completed(&self) -> bool {
        matches!(self, SimOutcome::Completed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(occ: usize) -> DeadlockHop {
        DeadlockHop {
            src: "A".into(),
            src_port: "out".into(),
            dst: "B".into(),
            dst_port: "in".into(),
            occupancy: occ,
            capacity: 64,
        }
    }

    #[test]
    fn render_matches_legacy_shape() {
        let r = DeadlockReport {
            queued_items: 189,
            cycle: vec![hop(63), hop(127)],
            blocked_cycle: true,
            min_capacity_bump: None,
            stuck: "stuck".into(),
        };
        assert_eq!(
            r.render(),
            "capacity deadlock with 189 items queued; wait-for cycle: \
             A.out -> B.in (63/64 full), A.out -> B.in (127/64 full)\nstuck"
        );
        // A starved loop also lists hops with room; those drop the marker.
        let starved = DeadlockReport {
            blocked_cycle: false,
            cycle: vec![hop(63), hop(1)],
            ..r.clone()
        };
        assert_eq!(
            starved.render(),
            "capacity deadlock with 189 items queued; starved feedback loop: \
             A.out -> B.in (63/64 full), A.out -> B.in (1/64)\nstuck"
        );
        let no_cycle = DeadlockReport {
            queued_items: 5,
            cycle: vec![],
            blocked_cycle: false,
            min_capacity_bump: None,
            stuck: "stuck".into(),
        };
        assert_eq!(
            no_cycle.render(),
            "capacity deadlock with 5 items queued:\nstuck"
        );
    }

    #[test]
    fn fingerprint_separates_fields() {
        let a = DeadlockReport {
            queued_items: 1,
            cycle: vec![hop(63)],
            blocked_cycle: true,
            min_capacity_bump: None,
            stuck: String::new(),
        };
        let mut b = a.clone();
        b.cycle[0].occupancy = 62;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        let mut c = a.clone();
        c.blocked_cycle = false;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
