//! Simulation statistics: per-PE utilization broken down into run/read/write
//! time (as in the paper's Fig. 13) and real-time verdicts.

/// Busy-time accounting for one processing element, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeStats {
    /// Time spent executing kernel method bodies.
    pub run: f64,
    /// Time spent reading kernel inputs.
    pub read: f64,
    /// Time spent writing kernel outputs.
    pub write: f64,
}

impl PeStats {
    /// Total busy time.
    pub fn busy(&self) -> f64 {
        self.run + self.read + self.write
    }
}

/// Outcome of checking the simulated execution against the application's
/// real-time input rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RealTimeVerdict {
    /// True when every input pixel could be accepted on schedule and all
    /// frames completed.
    pub met: bool,
    /// Number of input samples that found their destination queue full at
    /// their scheduled arrival time (each is a missed real-time deadline).
    pub violations: u64,
    /// The required frame rate (from the application input specification).
    pub required_rate_hz: f64,
    /// The achieved steady-state output frame rate.
    pub achieved_rate_hz: f64,
}

/// Full report of one timed simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-PE busy time.
    pub pe_stats: Vec<PeStats>,
    /// Per-node firing counts (indexed like the graph's nodes).
    pub node_firings: Vec<u64>,
    /// Per-node busy seconds (run+read+write attributed to the node).
    pub node_busy: Vec<f64>,
    /// Total simulated time in seconds.
    pub sim_time: f64,
    /// Frames observed complete at each sink (EOF arrivals).
    pub frames_completed: u32,
    /// Items left queued at the end (nonzero only for feedback loops, whose
    /// final frame legitimately keeps circulating).
    pub residual_items: u64,
    /// Per-node count of firings whose reported actual cycles exceeded the
    /// method's declared budget — the runtime resource exceptions of §VII.
    pub budget_overruns: Vec<u64>,
    /// Deepest single input queue observed at each node — how much of the
    /// channel slack the schedule actually used.
    pub node_max_queue: Vec<usize>,
    /// Latency of each completed frame: first sample injection to the last
    /// sink's end-of-frame. Communication/placement delay would add to this
    /// but not to throughput, as §IV-D observes.
    pub frame_latencies: Vec<f64>,
    /// Kernels that emitted user-defined control tokens faster than their
    /// declared §II-C bound: `(name, observed Hz, declared Hz)`.
    pub token_rate_violations: Vec<(String, f64, f64)>,
    /// Real-time verdict.
    pub verdict: RealTimeVerdict,
}

impl SimReport {
    /// Mean utilization across PEs: busy time / simulated time.
    pub fn avg_utilization(&self) -> f64 {
        if self.pe_stats.is_empty() || self.sim_time <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.pe_stats.iter().map(|p| p.busy()).sum();
        busy / (self.pe_stats.len() as f64 * self.sim_time)
    }

    /// Aggregate utilization split into (run, read, write) fractions of
    /// total PE-time, matching the stacked bars of Fig. 13.
    pub fn utilization_breakdown(&self) -> (f64, f64, f64) {
        if self.pe_stats.is_empty() || self.sim_time <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let denom = self.pe_stats.len() as f64 * self.sim_time;
        let run: f64 = self.pe_stats.iter().map(|p| p.run).sum();
        let read: f64 = self.pe_stats.iter().map(|p| p.read).sum();
        let write: f64 = self.pe_stats.iter().map(|p| p.write).sum();
        (run / denom, read / denom, write / denom)
    }

    /// Number of PEs used.
    pub fn num_pes(&self) -> usize {
        self.pe_stats.len()
    }

    /// Total runtime resource exceptions across all nodes (§VII).
    pub fn total_budget_overruns(&self) -> u64 {
        self.budget_overruns.iter().sum()
    }

    /// Mean per-frame latency in seconds (0 when no frame completed).
    pub fn avg_latency(&self) -> f64 {
        if self.frame_latencies.is_empty() {
            return 0.0;
        }
        self.frame_latencies.iter().sum::<f64>() / self.frame_latencies.len() as f64
    }

    /// FNV-1a hash over every field of the report, with floats folded in by
    /// their exact bit patterns. Two reports fingerprint equal iff they are
    /// bitwise identical — the equivalence the parallel timed simulator
    /// guarantees against the sequential one, checked in tests and by the
    /// `sim_scaling` benchmark.
    pub fn fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            fn word(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
            fn float(&mut self, v: f64) {
                self.word(v.to_bits());
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        // Every variable-length field folds its length in first, so data
        // sliding across the boundary of two adjacent vectors (or two
        // adjacent strings) can never collide.
        h.word(self.pe_stats.len() as u64);
        for p in &self.pe_stats {
            h.float(p.run);
            h.float(p.read);
            h.float(p.write);
        }
        h.word(self.node_firings.len() as u64);
        for &f in &self.node_firings {
            h.word(f);
        }
        h.word(self.node_busy.len() as u64);
        for &b in &self.node_busy {
            h.float(b);
        }
        h.float(self.sim_time);
        h.word(self.frames_completed as u64);
        h.word(self.residual_items);
        h.word(self.budget_overruns.len() as u64);
        for &b in &self.budget_overruns {
            h.word(b);
        }
        h.word(self.node_max_queue.len() as u64);
        for &q in &self.node_max_queue {
            h.word(q as u64);
        }
        h.word(self.frame_latencies.len() as u64);
        for &l in &self.frame_latencies {
            h.float(l);
        }
        h.word(self.token_rate_violations.len() as u64);
        for (name, obs, decl) in &self.token_rate_violations {
            h.word(name.len() as u64);
            for b in name.bytes() {
                h.byte(b);
            }
            h.float(*obs);
            h.float(*decl);
        }
        h.word(self.verdict.met as u64);
        h.word(self.verdict.violations);
        h.float(self.verdict.required_rate_hz);
        h.float(self.verdict.achieved_rate_hz);
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            pe_stats: vec![
                PeStats {
                    run: 0.5,
                    read: 0.25,
                    write: 0.25,
                },
                PeStats {
                    run: 0.0,
                    read: 0.0,
                    write: 0.0,
                },
            ],
            node_firings: vec![1, 2],
            node_busy: vec![1.0, 0.0],
            sim_time: 1.0,
            frames_completed: 1,
            residual_items: 0,
            budget_overruns: vec![0, 0],
            node_max_queue: vec![1, 1],
            frame_latencies: vec![0.01],
            token_rate_violations: vec![],
            verdict: RealTimeVerdict {
                met: true,
                violations: 0,
                required_rate_hz: 50.0,
                achieved_rate_hz: 50.0,
            },
        }
    }

    #[test]
    fn utilization_averages_over_pes() {
        let r = report();
        assert!((r.avg_utilization() - 0.5).abs() < 1e-12);
        let (run, read, write) = r.utilization_breakdown();
        assert!((run - 0.25).abs() < 1e-12);
        assert!((read - 0.125).abs() < 1e-12);
        assert!((write - 0.125).abs() < 1e-12);
        assert_eq!(r.num_pes(), 2);
    }

    /// Moving a value across the boundary of two adjacent vectors must
    /// change the fingerprint (the length separators at work): without
    /// them, `node_firings = [1, 2]` and `node_firings = [1]` followed by
    /// a `node_busy` entry with bit pattern 2 hash the same byte stream.
    #[test]
    fn fingerprint_separates_vector_boundaries() {
        let mut a = report();
        a.node_firings = vec![1, 2];
        a.node_busy = vec![];
        let mut b = report();
        b.node_firings = vec![1];
        b.node_busy = vec![f64::from_bits(2)];
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_report_is_zero() {
        let r = SimReport {
            pe_stats: vec![],
            node_firings: vec![],
            node_busy: vec![],
            sim_time: 0.0,
            frames_completed: 0,
            residual_items: 0,
            budget_overruns: vec![],
            node_max_queue: vec![],
            frame_latencies: vec![],
            token_rate_violations: vec![],
            verdict: RealTimeVerdict {
                met: false,
                violations: 0,
                required_rate_hz: 0.0,
                achieved_rate_hz: 0.0,
            },
        };
        assert_eq!(r.avg_utilization(), 0.0);
        assert_eq!(r.utilization_breakdown(), (0.0, 0.0, 0.0));
    }
}
