//! Deterministic event tracing for the timed simulators.
//!
//! A [`TraceRecorder`] rides inside each [`crate::timed::ShardSim`] and
//! captures the per-event dynamics the aggregate [`crate::SimReport`]
//! throws away: firing begin/end per PE, queue-depth changes per channel,
//! control-token arrivals, and PE stall transitions with cause attribution
//! ([`StallCause`]). Recording is strictly read-only with respect to the
//! simulation — every recorded value is computed from state the engine
//! already produced — so enabling tracing cannot change a single bit of
//! the `SimReport` (pinned by `tests/trace_determinism.rs`).
//!
//! **Determinism across engines.** The sequential engine emits trace
//! events in global event-pop order, so its buffer *is* the canonical
//! trace. Each parallel worker records its shard's events in shard-local
//! pop order plus a per-journal-entry event count; the journal replay
//! (`timed_parallel::replay_merge`) then interleaves the shard streams in
//! the reconstructed global `(t, seq)` order, yielding a merged trace
//! **bitwise identical** to the sequential one at any thread count — as
//! long as no bounded ring dropped an event ([`Trace::dropped`] is the
//! check; per-shard drop sets differ by sharding, so a wrapped ring
//! forfeits cross-engine equality but nothing else).
//!
//! On top of the raw stream, [`Trace`] derives the metrics the ROADMAP
//! items need: per-node event counts (the profiling weights for
//! [`bp_core::machine::ShardPlan::build_weighted`]), per-channel occupancy
//! high-water marks, and sliding-window PE utilization. The
//! [`crate::chrome`] module exports the stream as Chrome trace-event JSON
//! loadable in Perfetto.

use crate::runtime::RtNode;
use bp_core::token::ControlToken;
use std::collections::VecDeque;

/// Why a PE is not executing a firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// No resident node has any queued input: the PE has nothing to do.
    Idle,
    /// Some resident node has queued items but no method's trigger group is
    /// complete — the PE is waiting for upstream data.
    InputStarved,
    /// A resident node could fire right now but a destination queue lacks
    /// space — the PE is back-pressured by a downstream consumer.
    OutputBlocked,
}

impl StallCause {
    /// Stable short name (used by the Chrome exporter and diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            StallCause::Idle => "idle",
            StallCause::InputStarved => "input-starved",
            StallCause::OutputBlocked => "output-blocked",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            StallCause::Idle => 0,
            StallCause::InputStarved => 1,
            StallCause::OutputBlocked => 2,
        }
    }
}

/// One traced simulator event. Timestamps are simulated seconds; node,
/// method, port and PE values are the dense indices the engines use, with
/// names resolved via [`TraceMeta`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node began a firing on its PE. `cycles` is the charged cycle count
    /// (actual for data-dependent-cost kernels, declared otherwise); source
    /// and const firings are recorded with `cycles == 0` and a matching
    /// [`TraceEvent::FiringEnd`] at the same timestamp, since the engine
    /// charges them no PE time.
    FiringBegin {
        /// Event time in simulated seconds.
        t: f64,
        /// Firing node index.
        node: u32,
        /// Method index into the node's compiled table.
        method: u32,
        /// PE the node is resident on.
        pe: u32,
        /// Charged cycle count.
        cycles: u64,
    },
    /// The firing begun by the matching [`TraceEvent::FiringBegin`] on this
    /// PE completed.
    FiringEnd {
        /// Event time in simulated seconds.
        t: f64,
        /// Firing node index.
        node: u32,
        /// PE the node is resident on.
        pe: u32,
    },
    /// An input queue's depth changed (an item was enqueued or consumed).
    QueueDepth {
        /// Event time in simulated seconds.
        t: f64,
        /// Owning (destination) node index.
        node: u32,
        /// Input port index on that node.
        port: u32,
        /// Depth after the change.
        depth: u32,
    },
    /// A control token arrived at an input queue.
    Token {
        /// Event time in simulated seconds.
        t: f64,
        /// Destination node index.
        node: u32,
        /// Input port index on that node.
        port: u32,
        /// The token.
        token: ControlToken,
    },
    /// A PE transitioned into a stalled state (recorded only when the
    /// attributed cause differs from the PE's previous state).
    Stall {
        /// Event time in simulated seconds.
        t: f64,
        /// The stalled PE.
        pe: u32,
        /// Attributed cause.
        cause: StallCause,
    },
    /// An item was launched onto a delayed channel (nonzero
    /// [`bp_core::CommModel`] only). Paired with the
    /// [`TraceEvent::CommArrival`] at `arrival`, this attributes in-flight
    /// network occupancy per channel.
    CommSend {
        /// Send (push) time in simulated seconds.
        t: f64,
        /// Channel index into [`TraceMeta::channels`].
        chan: u32,
        /// Payload size in words (drives the serialization term).
        words: u32,
        /// Scheduled arrival time (send + serialization + latency).
        arrival: f64,
    },
    /// An in-flight item landed in its destination queue (the matching
    /// [`TraceEvent::QueueDepth`] follows at the same timestamp).
    CommArrival {
        /// Arrival time in simulated seconds.
        t: f64,
        /// Channel index into [`TraceMeta::channels`].
        chan: u32,
    },
}

impl TraceEvent {
    /// Simulated time of the event.
    pub fn t(&self) -> f64 {
        match *self {
            TraceEvent::FiringBegin { t, .. }
            | TraceEvent::FiringEnd { t, .. }
            | TraceEvent::QueueDepth { t, .. }
            | TraceEvent::Token { t, .. }
            | TraceEvent::Stall { t, .. }
            | TraceEvent::CommSend { t, .. }
            | TraceEvent::CommArrival { t, .. } => t,
        }
    }

    /// Node the event is attributed to, if any (stalls attribute to a PE).
    pub fn node(&self) -> Option<u32> {
        match *self {
            TraceEvent::FiringBegin { node, .. }
            | TraceEvent::FiringEnd { node, .. }
            | TraceEvent::QueueDepth { node, .. }
            | TraceEvent::Token { node, .. } => Some(node),
            TraceEvent::Stall { .. }
            | TraceEvent::CommSend { .. }
            | TraceEvent::CommArrival { .. } => None,
        }
    }

    /// Fold the event into an FNV-1a stream by its exact bit patterns
    /// (used by [`Trace::digest`]).
    fn fold(&self, h: &mut Fnv) {
        match *self {
            TraceEvent::FiringBegin {
                t,
                node,
                method,
                pe,
                cycles,
            } => {
                h.byte(0);
                h.word(t.to_bits());
                h.word(node as u64);
                h.word(method as u64);
                h.word(pe as u64);
                h.word(cycles);
            }
            TraceEvent::FiringEnd { t, node, pe } => {
                h.byte(1);
                h.word(t.to_bits());
                h.word(node as u64);
                h.word(pe as u64);
            }
            TraceEvent::QueueDepth {
                t,
                node,
                port,
                depth,
            } => {
                h.byte(2);
                h.word(t.to_bits());
                h.word(node as u64);
                h.word(port as u64);
                h.word(depth as u64);
            }
            TraceEvent::Token {
                t,
                node,
                port,
                token,
            } => {
                h.byte(3);
                h.word(t.to_bits());
                h.word(node as u64);
                h.word(port as u64);
                match token {
                    ControlToken::EndOfLine => h.byte(0),
                    ControlToken::EndOfFrame => h.byte(1),
                    ControlToken::Custom(id) => {
                        h.byte(2);
                        h.word(id as u64);
                    }
                }
            }
            TraceEvent::Stall { t, pe, cause } => {
                h.byte(4);
                h.word(t.to_bits());
                h.word(pe as u64);
                h.byte(cause.tag());
            }
            TraceEvent::CommSend {
                t,
                chan,
                words,
                arrival,
            } => {
                h.byte(5);
                h.word(t.to_bits());
                h.word(chan as u64);
                h.word(words as u64);
                h.word(arrival.to_bits());
            }
            TraceEvent::CommArrival { t, chan } => {
                h.byte(6);
                h.word(t.to_bits());
                h.word(chan as u64);
            }
        }
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
}

/// Tracing configuration carried inside [`crate::SimConfig`].
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Ring capacity in events **per shard**. When a shard's recorder
    /// fills, the oldest events are dropped (counted in
    /// [`Trace::dropped`]); a trace with `dropped == 0` is complete and —
    /// for the parallel engine — bitwise identical to the sequential
    /// engine's at any thread count.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        // Roughly 50 MB of events; far beyond any bundled app's run, so
        // default traces never wrap. The cap is a memory safety valve for
        // long custom simulations.
        Self { capacity: 1 << 20 }
    }
}

impl TraceOptions {
    /// A ring bounded at `capacity` events per shard.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self { capacity }
    }
}

/// Bounded per-shard event ring, aligned with the journal-entry structure
/// so the parallel merge can interleave shard streams in replay order.
pub(crate) struct TraceRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events recorded per startup (const-firing) entry, in shard order.
    pub(crate) init_counts: Vec<u32>,
    /// Events recorded per popped-event entry, in shard pop order.
    pub(crate) main_counts: Vec<u32>,
    /// Events in the currently open entry.
    cur: u32,
    /// Oldest events discarded after the ring filled.
    pub(crate) dropped: u64,
    /// Trim cursors: first entry whose events may still be in the ring.
    trim_init: usize,
    trim_main: usize,
}

impl TraceRecorder {
    pub(crate) fn new(opts: TraceOptions) -> Self {
        Self {
            capacity: opts.capacity.max(1),
            events: VecDeque::new(),
            init_counts: Vec::new(),
            main_counts: Vec::new(),
            cur: 0,
            dropped: 0,
            trim_init: 0,
            trim_main: 0,
        }
    }

    /// Append one event, dropping the oldest if the ring is full. Dropping
    /// also decrements the owning (oldest non-empty) entry count so the
    /// per-entry alignment used by the parallel merge stays exact.
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
            loop {
                if self.trim_init < self.init_counts.len() {
                    if self.init_counts[self.trim_init] == 0 {
                        self.trim_init += 1;
                        continue;
                    }
                    self.init_counts[self.trim_init] -= 1;
                } else if self.trim_main < self.main_counts.len() {
                    if self.main_counts[self.trim_main] == 0 {
                        self.trim_main += 1;
                        continue;
                    }
                    self.main_counts[self.trim_main] -= 1;
                } else {
                    debug_assert!(self.cur > 0, "dropped event belongs to no entry");
                    self.cur -= 1;
                }
                break;
            }
        }
        self.events.push_back(ev);
        self.cur += 1;
    }

    /// Close the current entry (mirrors `ShardSim::end_entry`).
    pub(crate) fn end_entry(&mut self, init: bool) {
        if init {
            self.init_counts.push(self.cur);
        } else {
            self.main_counts.push(self.cur);
        }
        self.cur = 0;
    }

    /// Pop the `n` oldest events (the parallel merge consumes entries in
    /// replay order).
    pub(crate) fn take(&mut self, n: u32, out: &mut Vec<TraceEvent>) {
        for _ in 0..n {
            out.push(self.events.pop_front().expect("trace/journal desync"));
        }
    }

    /// Events still in the ring (0 after a complete merge).
    pub(crate) fn remaining(&self) -> usize {
        self.events.len()
    }

    /// Drain the whole ring in recording order (the sequential engine's
    /// buffer is already globally ordered).
    pub(crate) fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.events.into_iter().collect(), self.dropped)
    }
}

/// One channel's endpoints and resolved latency, for resolving the `chan`
/// indices in [`TraceEvent::CommSend`]/[`TraceEvent::CommArrival`] and for
/// restricting trace analyses to cross-PE channels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceChannel {
    /// Producing node index.
    pub src_node: u32,
    /// Output port index on the producer.
    pub src_port: u32,
    /// Consuming node index.
    pub dst_node: u32,
    /// Input port index on the consumer.
    pub dst_port: u32,
    /// Resolved one-way latency (0 = direct same-cycle delivery).
    pub latency_s: f64,
}

/// Name tables resolving the dense indices in [`TraceEvent`]s, captured
/// from the instantiated program at trace-assembly time.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    /// Node instance names, indexed by node.
    pub node_names: Vec<String>,
    /// Input port names per node.
    pub input_ports: Vec<Vec<String>>,
    /// Method names per node.
    pub methods: Vec<Vec<String>>,
    /// PE each node is resident on.
    pub pe_of_node: Vec<usize>,
    /// Number of PEs in the simulated machine.
    pub num_pes: usize,
    /// PE clock, for cycle/second conversions in viewers.
    pub pe_clock_hz: f64,
    /// Every graph channel in runtime channel order.
    pub channels: Vec<TraceChannel>,
}

impl TraceMeta {
    pub(crate) fn from_parts(
        nodes: &[RtNode],
        pe_of_node: &[usize],
        num_pes: usize,
        pe_clock_hz: f64,
        channels: &[crate::timed::ChannelRt],
    ) -> Self {
        Self {
            node_names: nodes.iter().map(|n| n.name.clone()).collect(),
            input_ports: nodes
                .iter()
                .map(|n| n.spec.inputs.iter().map(|i| i.name.clone()).collect())
                .collect(),
            methods: nodes
                .iter()
                .map(|n| n.spec.methods.iter().map(|m| m.name.clone()).collect())
                .collect(),
            pe_of_node: pe_of_node.to_vec(),
            num_pes,
            pe_clock_hz,
            channels: channels
                .iter()
                .map(|c| TraceChannel {
                    src_node: c.src as u32,
                    src_port: c.src_port as u32,
                    dst_node: c.dst as u32,
                    dst_port: c.dst_port as u32,
                    latency_s: c.latency_s,
                })
                .collect(),
        }
    }
}

/// Occupancy high-water mark of one channel (input queue).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelHighWater {
    /// Destination node index.
    pub node: usize,
    /// Input port index.
    pub port: usize,
    /// Deepest observed queue depth.
    pub depth: u32,
    /// First simulated time the high-water mark was reached.
    pub t: f64,
}

/// A complete deterministic trace of one timed simulation.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Index-to-name resolution tables.
    pub meta: TraceMeta,
    /// Events in global event-pop order (identical between the sequential
    /// and parallel engines when `dropped == 0`).
    pub events: Vec<TraceEvent>,
    /// Events discarded because a per-shard ring filled. Nonzero drops
    /// void the cross-engine bitwise-equality guarantee (per-shard rings
    /// trim different oldest events), but the retained stream is still
    /// per-shard deterministic.
    pub dropped: u64,
}

impl Trace {
    /// FNV-1a digest over every event's exact bit patterns: two traces
    /// digest equal iff they are bitwise identical.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.events.len() as u64);
        for e in &self.events {
            e.fold(&mut h);
        }
        h.0
    }

    /// Total traced events attributed to each node (firings, queue
    /// movement, token arrivals). This is the profiling weight the
    /// event-rate-aware shard planner consumes
    /// ([`bp_core::machine::ShardPlan::build_weighted`]): a pre-run's
    /// counts balance shards by observed simulation work instead of
    /// resident-node count.
    pub fn node_event_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.meta.node_names.len()];
        for e in &self.events {
            if let Some(n) = e.node() {
                counts[n as usize] += 1;
            }
        }
        counts
    }

    /// Per-channel occupancy high-water marks, ordered by `(node, port)`.
    /// `SimReport::node_max_queue` keeps only the per-node max; this adds
    /// the port and *when* the peak first occurred — the signal a future
    /// buffer-sizing pass needs.
    pub fn channel_high_water(&self) -> Vec<ChannelHighWater> {
        let mut best: Vec<Vec<Option<(u32, f64)>>> = self
            .meta
            .input_ports
            .iter()
            .map(|ports| vec![None; ports.len()])
            .collect();
        for e in &self.events {
            if let TraceEvent::QueueDepth {
                t,
                node,
                port,
                depth,
            } = *e
            {
                let slot = &mut best[node as usize][port as usize];
                match slot {
                    Some((d, _)) if *d >= depth => {}
                    _ => *slot = Some((depth, t)),
                }
            }
        }
        let mut out = Vec::new();
        for (node, ports) in best.iter().enumerate() {
            for (port, slot) in ports.iter().enumerate() {
                if let Some((depth, t)) = *slot {
                    out.push(ChannelHighWater {
                        node,
                        port,
                        depth,
                        t,
                    });
                }
            }
        }
        out
    }

    /// Busy fraction of each PE over consecutive windows of `window_s`
    /// simulated seconds: `result[pe][w]` covers
    /// `[w * window_s, (w + 1) * window_s)`. Derived from firing
    /// begin/end pairs, so it resolves the within-run utilization
    /// *timeline* that `SimReport`'s whole-run averages flatten.
    pub fn pe_utilization(&self, window_s: f64) -> Vec<Vec<f64>> {
        assert!(window_s > 0.0, "window must be positive");
        let end = self.events.last().map_or(0.0, |e| e.t());
        let windows = (end / window_s).floor() as usize + 1;
        let mut util = vec![vec![0.0f64; windows]; self.meta.num_pes];
        // Begin/end pairs nest only for the zero-duration source/const
        // firings recorded while a real firing is in flight on the same
        // PE, so a per-PE stack pairs them correctly.
        let mut open: Vec<Vec<f64>> = vec![Vec::new(); self.meta.num_pes];
        for e in &self.events {
            match *e {
                TraceEvent::FiringBegin { t, pe, .. } => open[pe as usize].push(t),
                TraceEvent::FiringEnd { t, pe, .. } => {
                    if let Some(t0) = open[pe as usize].pop() {
                        let (mut w, last) = ((t0 / window_s) as usize, (t / window_s) as usize);
                        while w <= last.min(windows - 1) {
                            let lo = t0.max(w as f64 * window_s);
                            let hi = t.min((w + 1) as f64 * window_s);
                            util[pe as usize][w] += (hi - lo).max(0.0);
                            w += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        for row in &mut util {
            for v in row.iter_mut() {
                *v /= window_s;
            }
        }
        util
    }

    /// Per-channel send/consume dwell statistics for cross-PE channels,
    /// the input to [`bp_core::CommModel::from_profile`] (ROADMAP:
    /// calibrate a delay model from traces). Each item's dwell is the time
    /// from its hand-off on the producer to its consumption, FIFO-matched
    /// per destination port. For delayed channels the hand-off is the
    /// [`TraceEvent::CommSend`] departure — so the dwell *includes* wire
    /// time and the calibrated base latency never undercuts the true
    /// model; for direct channels it is the enqueue seen in the
    /// [`TraceEvent::QueueDepth`] stream — measurable under the zero
    /// model too, which is what makes calibration from an undelayed
    /// baseline trace possible.
    pub fn comm_profile(&self) -> bp_core::CommProfile {
        let mut profile = bp_core::CommProfile::default();
        let mut cross: Vec<Vec<bool>> = self
            .meta
            .input_ports
            .iter()
            .map(|ports| vec![false; ports.len()])
            .collect();
        // Ports fed by a delayed channel take their enqueue times from the
        // CommSend stream instead (each input port has exactly one
        // in-channel, so the (node, port) key is unambiguous).
        let mut delayed = cross.clone();
        for c in &self.meta.channels {
            if self.meta.pe_of_node[c.src_node as usize]
                != self.meta.pe_of_node[c.dst_node as usize]
            {
                cross[c.dst_node as usize][c.dst_port as usize] = true;
                if c.latency_s > 0.0 {
                    delayed[c.dst_node as usize][c.dst_port as usize] = true;
                }
            }
        }
        let mut prev: Vec<Vec<u32>> = cross.iter().map(|p| vec![0; p.len()]).collect();
        let mut pending: Vec<Vec<VecDeque<f64>>> = cross
            .iter()
            .map(|p| p.iter().map(|_| VecDeque::new()).collect())
            .collect();
        for e in &self.events {
            match *e {
                TraceEvent::CommSend { t, chan, .. } => {
                    let c = &self.meta.channels[chan as usize];
                    let (n, p) = (c.dst_node as usize, c.dst_port as usize);
                    if cross[n][p] {
                        pending[n][p].push_back(t);
                    }
                }
                TraceEvent::QueueDepth {
                    t,
                    node,
                    port,
                    depth,
                } => {
                    let (n, p) = (node as usize, port as usize);
                    if !cross[n][p] {
                        continue;
                    }
                    let old = prev[n][p];
                    if depth > old {
                        if !delayed[n][p] {
                            for _ in 0..depth - old {
                                pending[n][p].push_back(t);
                            }
                        }
                    } else {
                        for _ in 0..old - depth {
                            if let Some(t0) = pending[n][p].pop_front() {
                                profile.push(t - t0);
                            }
                        }
                    }
                    prev[n][p] = depth;
                }
                _ => {}
            }
        }
        profile
    }

    /// Maximum number of simultaneously in-flight items per channel,
    /// derived from [`TraceEvent::CommSend`]/[`TraceEvent::CommArrival`]
    /// pairs (all zeros under the zero model, which has no flight time).
    /// Indexed like [`TraceMeta::channels`].
    pub fn comm_in_flight_peak(&self) -> Vec<u32> {
        let mut cur = vec![0i64; self.meta.channels.len()];
        let mut peak = vec![0u32; self.meta.channels.len()];
        for e in &self.events {
            match *e {
                TraceEvent::CommSend { chan, .. } => {
                    let c = chan as usize;
                    cur[c] += 1;
                    peak[c] = peak[c].max(cur[c] as u32);
                }
                TraceEvent::CommArrival { chan, .. } => cur[chan as usize] -= 1,
                _ => {}
            }
        }
        peak
    }

    /// Number of stall transitions per cause, across all PEs.
    pub fn stall_counts(&self) -> [(StallCause, u64); 3] {
        let mut counts = [
            (StallCause::Idle, 0u64),
            (StallCause::InputStarved, 0),
            (StallCause::OutputBlocked, 0),
        ];
        for e in &self.events {
            if let TraceEvent::Stall { cause, .. } = e {
                counts[cause.tag() as usize].1 += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(t: f64, node: u32, pe: u32, cycles: u64) -> TraceEvent {
        TraceEvent::FiringBegin {
            t,
            node,
            method: 0,
            pe,
            cycles,
        }
    }
    fn fe(t: f64, node: u32, pe: u32) -> TraceEvent {
        TraceEvent::FiringEnd { t, node, pe }
    }

    fn meta(nodes: usize, pes: usize) -> TraceMeta {
        TraceMeta {
            node_names: (0..nodes).map(|i| format!("n{i}")).collect(),
            input_ports: vec![vec!["in".into()]; nodes],
            methods: vec![vec!["run".into()]; nodes],
            pe_of_node: (0..nodes).map(|i| i % pes).collect(),
            num_pes: pes,
            pe_clock_hz: 1e6,
            channels: vec![],
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRecorder::new(TraceOptions::with_capacity(2));
        r.record(fb(0.0, 0, 0, 1));
        r.end_entry(true);
        r.record(fb(1.0, 1, 0, 1));
        r.record(fb(2.0, 2, 0, 1));
        r.end_entry(false);
        assert_eq!(r.dropped, 1);
        // The init entry's event was trimmed away.
        assert_eq!(r.init_counts, vec![0]);
        assert_eq!(r.main_counts, vec![2]);
        let (events, dropped) = r.into_events();
        assert_eq!(dropped, 1);
        assert_eq!(events, vec![fb(1.0, 1, 0, 1), fb(2.0, 2, 0, 1)]);
    }

    #[test]
    fn digest_detects_any_change() {
        let t = Trace {
            meta: meta(2, 1),
            events: vec![fb(0.0, 0, 0, 5), fe(5e-6, 0, 0)],
            dropped: 0,
        };
        let mut t2 = t.clone();
        let d = t.digest();
        assert_eq!(d, t2.digest());
        t2.events[0] = fb(0.0, 0, 0, 6);
        assert_ne!(d, t2.digest());
    }

    #[test]
    fn node_event_counts_attribute_per_node() {
        let t = Trace {
            meta: meta(3, 1),
            events: vec![
                fb(0.0, 0, 0, 1),
                fe(1e-6, 0, 0),
                TraceEvent::QueueDepth {
                    t: 1e-6,
                    node: 1,
                    port: 0,
                    depth: 1,
                },
                TraceEvent::Stall {
                    t: 1e-6,
                    pe: 0,
                    cause: StallCause::Idle,
                },
            ],
            dropped: 0,
        };
        assert_eq!(t.node_event_counts(), vec![2, 1, 0]);
        assert_eq!(t.stall_counts()[0].1, 1);
    }

    #[test]
    fn channel_high_water_tracks_first_peak() {
        let q = |t: f64, depth: u32| TraceEvent::QueueDepth {
            t,
            node: 1,
            port: 0,
            depth,
        };
        let t = Trace {
            meta: meta(2, 1),
            events: vec![q(1.0, 1), q(2.0, 3), q(3.0, 3), q(4.0, 2)],
            dropped: 0,
        };
        let hw = t.channel_high_water();
        assert_eq!(hw.len(), 1);
        assert_eq!(
            hw[0],
            ChannelHighWater {
                node: 1,
                port: 0,
                depth: 3,
                t: 2.0,
            }
        );
    }

    #[test]
    fn comm_profile_fifo_matches_cross_pe_dwell() {
        // Two nodes on different PEs connected by one channel; items queue
        // at t=1,2 and are consumed at t=3,5 → dwells 2 and 3.
        let mut m = meta(2, 2);
        m.channels = vec![TraceChannel {
            src_node: 0,
            src_port: 0,
            dst_node: 1,
            dst_port: 0,
            latency_s: 0.0,
        }];
        let q = |t: f64, depth: u32| TraceEvent::QueueDepth {
            t,
            node: 1,
            port: 0,
            depth,
        };
        let t = Trace {
            meta: m,
            events: vec![q(1.0, 1), q(2.0, 2), q(3.0, 1), q(5.0, 0)],
            dropped: 0,
        };
        let p = t.comm_profile();
        assert_eq!(p.samples, 2);
        assert_eq!(p.min_dwell_s, 2.0);
        assert_eq!(p.mean_dwell_s(), 2.5);
        // Same-PE traffic is excluded: with both nodes on PE 0 the profile
        // is empty.
        let mut t2 = t.clone();
        t2.meta.pe_of_node = vec![0, 0];
        assert_eq!(t2.comm_profile().samples, 0);
    }

    #[test]
    fn comm_profile_counts_wire_time_for_delayed_channels() {
        // One delayed channel (latency 1): the item departs at t=1,
        // arrives (enqueues) at t=2, is consumed at t=3. The dwell must be
        // measured from departure — 2.0, not the 1.0 of queue time alone —
        // so a model calibrated from the profile never undercuts the wire.
        let mut m = meta(2, 2);
        m.channels = vec![TraceChannel {
            src_node: 0,
            src_port: 0,
            dst_node: 1,
            dst_port: 0,
            latency_s: 1.0,
        }];
        let q = |t: f64, depth: u32| TraceEvent::QueueDepth {
            t,
            node: 1,
            port: 0,
            depth,
        };
        let t = Trace {
            meta: m,
            events: vec![
                TraceEvent::CommSend {
                    t: 1.0,
                    chan: 0,
                    words: 1,
                    arrival: 2.0,
                },
                q(2.0, 1),
                TraceEvent::CommArrival { t: 2.0, chan: 0 },
                q(3.0, 0),
            ],
            dropped: 0,
        };
        let p = t.comm_profile();
        assert_eq!(p.samples, 1);
        assert_eq!(p.min_dwell_s, 2.0);
    }

    #[test]
    fn comm_in_flight_peak_pairs_sends_and_arrivals() {
        let mut m = meta(2, 2);
        m.channels = vec![TraceChannel {
            src_node: 0,
            src_port: 0,
            dst_node: 1,
            dst_port: 0,
            latency_s: 1.0,
        }];
        let send = |t: f64, arrival: f64| TraceEvent::CommSend {
            t,
            chan: 0,
            words: 4,
            arrival,
        };
        let arr = |t: f64| TraceEvent::CommArrival { t, chan: 0 };
        let t = Trace {
            meta: m,
            events: vec![
                send(0.0, 1.0),
                send(0.5, 1.5),
                arr(1.0),
                send(1.2, 2.2),
                arr(1.5),
            ],
            dropped: 0,
        };
        assert_eq!(t.comm_in_flight_peak(), vec![2]);
    }

    #[test]
    fn pe_utilization_windows_split_firings() {
        // One firing spanning [0.5, 2.5) over 1-second windows on PE 0.
        let t = Trace {
            meta: meta(1, 2),
            events: vec![fb(0.5, 0, 0, 1), fe(2.5, 0, 0)],
            dropped: 0,
        };
        let u = t.pe_utilization(1.0);
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].len(), 3);
        assert!((u[0][0] - 0.5).abs() < 1e-12);
        assert!((u[0][1] - 1.0).abs() < 1e-12);
        assert!((u[0][2] - 0.5).abs() < 1e-12);
        assert!(u[1].iter().all(|&v| v == 0.0));
    }
}
