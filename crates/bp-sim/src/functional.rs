//! Untimed functional execution — the golden semantics.
//!
//! Fires sources one pixel at a time and drains the graph to quiescence in a
//! canonical (topological) node order, so results are deterministic. The
//! timing-accurate simulator reuses the same firing machinery, making the
//! two observationally equivalent on data.

use crate::runtime::Program;
use bp_core::graph::AppGraph;
use bp_core::{BpError, Result};

/// Safety cap on firings per drain to turn kernel bugs (e.g. a kernel that
/// re-emits its input forever) into errors instead of hangs.
const MAX_STEPS_PER_DRAIN: u64 = 200_000_000;

/// Deterministic untimed executor.
pub struct FunctionalExecutor {
    program: Program,
    order: Vec<usize>,
}

impl FunctionalExecutor {
    /// Instantiate the graph for functional execution.
    pub fn new(graph: &AppGraph) -> Result<Self> {
        let order = graph.topo_order()?.iter().map(|n| n.0).collect();
        let program = Program::instantiate(graph)?;
        Ok(Self { program, order })
    }

    /// Access the underlying program (e.g. for firing counts).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Run `frames` frames through every application input and drain to
    /// quiescence. Constants fire once before the first frame.
    pub fn run_frames(&mut self, frames: u32) -> Result<()> {
        let consts = self.program.consts.clone();
        for (node, method) in consts {
            self.program.fire_source_method(node, method);
        }
        self.drain()?;
        let sources = self.program.sources.clone();
        for _ in 0..frames {
            for s in &sources {
                let pixels = s.frame.area();
                for _ in 0..pixels {
                    self.program.fire_source_method(s.node, s.method);
                }
            }
            self.drain()?;
        }
        Ok(())
    }

    /// Items still queued after execution (0 for a fully-consumed run).
    pub fn residual_items(&self) -> usize {
        self.program.queued_items()
    }

    fn drain(&mut self) -> Result<()> {
        let mut steps: u64 = 0;
        loop {
            let mut progressed = false;
            for i in 0..self.order.len() {
                let node = self.order[i];
                while self.program.step_node(node) {
                    progressed = true;
                    steps += 1;
                    if steps > MAX_STEPS_PER_DRAIN {
                        return Err(BpError::Simulation(format!(
                            "functional drain exceeded {MAX_STEPS_PER_DRAIN} steps; \
                             a kernel is likely emitting unboundedly"
                        )));
                    }
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::item::{Item, Window};
    use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelDef, KernelSpec, NodeRole};
    use bp_core::method::{MethodCost, MethodSpec};
    use bp_core::port::{InputSpec, OutputSpec};
    use bp_core::token::{ControlToken, TokenKind};
    use bp_core::{Dim2, GraphBuilder};
    use std::sync::{Arc, Mutex};

    /// Minimal frame source: emits pixel values 0,1,2,... with EOL/EOF.
    struct TestSource {
        w: u32,
        h: u32,
        x: u32,
        y: u32,
        v: f64,
    }
    impl KernelBehavior for TestSource {
        fn fire(&mut self, _m: &str, _d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", Window::scalar(self.v));
            self.v += 1.0;
            self.x += 1;
            if self.x == self.w {
                self.x = 0;
                out.token("out", ControlToken::EndOfLine);
                self.y += 1;
                if self.y == self.h {
                    self.y = 0;
                    out.token("out", ControlToken::EndOfFrame);
                }
            }
        }
    }

    fn test_source_def(w: u32, h: u32) -> KernelDef {
        KernelDef::new(
            KernelSpec::new("source")
                .with_role(NodeRole::Source)
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::source(
                    "gen",
                    vec!["out".into()],
                    MethodCost::new(0, 0),
                )),
            move || TestSource {
                w,
                h,
                x: 0,
                y: 0,
                v: 0.0,
            },
        )
    }

    /// Doubles each sample; passes tokens through automatically.
    struct Doubler;
    impl KernelBehavior for Doubler {
        fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
            out.window("out", Window::scalar(d.window("in").as_scalar() * 2.0));
        }
    }

    fn doubler_def() -> KernelDef {
        KernelDef::new(
            KernelSpec::new("doubler")
                .input(InputSpec::stream("in"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_data(
                    "run",
                    "in",
                    vec!["out".into()],
                    MethodCost::new(1, 0),
                )),
            || Doubler,
        )
    }

    /// Collects all received items into a shared store.
    struct Collector(Arc<Mutex<Vec<Item>>>);
    impl KernelBehavior for Collector {
        fn fire(&mut self, _m: &str, d: &FireData<'_>, _o: &mut Emitter<'_>) {
            self.0.lock().unwrap().push(d.item("in").clone());
        }
    }

    fn collector_def() -> (KernelDef, Arc<Mutex<Vec<Item>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&store);
        let def = KernelDef::new(
            KernelSpec::new("sink")
                .with_role(NodeRole::Sink)
                .input(InputSpec::stream("in"))
                .method(MethodSpec::on_data(
                    "take",
                    "in",
                    vec![],
                    MethodCost::new(0, 0),
                ))
                .method(MethodSpec::on_token(
                    "eol",
                    "in",
                    TokenKind::EndOfLine,
                    vec![],
                    MethodCost::new(0, 0),
                ))
                .method(MethodSpec::on_token(
                    "eof",
                    "in",
                    TokenKind::EndOfFrame,
                    vec![],
                    MethodCost::new(0, 0),
                )),
            move || Collector(Arc::clone(&s2)),
        );
        (def, store)
    }

    #[test]
    fn pipeline_doubles_and_orders_tokens() {
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", test_source_def(3, 2), Dim2::new(3, 2), 10.0);
        let k = b.add("Double", doubler_def());
        let (sdef, store) = collector_def();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", k, "in");
        b.connect(k, "out", snk, "in");
        let g = b.build().unwrap();

        let mut ex = FunctionalExecutor::new(&g).unwrap();
        ex.run_frames(1).unwrap();
        assert_eq!(ex.residual_items(), 0);

        let got = store.lock().unwrap();
        // 3 pixels, EOL, 3 pixels, EOL, EOF — doubled values.
        let datums: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(datums, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        // token positions: after pixel 3 and 6
        assert!(matches!(got[3], Item::Control(ControlToken::EndOfLine)));
        assert!(matches!(got[7], Item::Control(ControlToken::EndOfLine)));
        assert!(matches!(got[8], Item::Control(ControlToken::EndOfFrame)));
    }

    /// Subtract-style kernel consuming two inputs; tokens must synchronize.
    struct Sub;
    impl KernelBehavior for Sub {
        fn fire(&mut self, _m: &str, d: &FireData<'_>, out: &mut Emitter<'_>) {
            let a = d.window("in0").as_scalar();
            let b = d.window("in1").as_scalar();
            out.window("out", Window::scalar(a - b));
        }
    }

    #[test]
    fn two_input_kernel_forwards_tokens_once() {
        let sub_def = KernelDef::new(
            KernelSpec::new("sub")
                .input(InputSpec::stream("in0"))
                .input(InputSpec::stream("in1"))
                .output(OutputSpec::stream("out"))
                .method(MethodSpec::on_all_data(
                    "sub",
                    &["in0", "in1"],
                    vec!["out".into()],
                    MethodCost::new(2, 0),
                )),
            || Sub,
        );
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", test_source_def(2, 2), Dim2::new(2, 2), 10.0);
        let d1 = b.add("D1", doubler_def());
        let sub = b.add("Sub", sub_def);
        let (sdef, store) = collector_def();
        let snk = b.add("Out", sdef);
        // in0 = 2x, in1 = x  => out = x
        b.connect(src, "out", d1, "in");
        b.connect(d1, "out", sub, "in0");
        b.connect(src, "out", sub, "in1");
        b.connect(sub, "out", snk, "in");
        let g = b.build().unwrap();

        let mut ex = FunctionalExecutor::new(&g).unwrap();
        ex.run_frames(1).unwrap();
        let got = store.lock().unwrap();
        let datums: Vec<f64> = got
            .iter()
            .filter_map(|i| i.window().map(|w| w.as_scalar()))
            .collect();
        assert_eq!(datums, vec![0.0, 1.0, 2.0, 3.0]);
        // Exactly 2 EOLs and 1 EOF forwarded (not duplicated per input).
        let eols = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfLine)))
            .count();
        let eofs = got
            .iter()
            .filter(|i| matches!(i, Item::Control(ControlToken::EndOfFrame)))
            .count();
        assert_eq!(eols, 2);
        assert_eq!(eofs, 1);
        assert_eq!(ex.residual_items(), 0);
    }

    #[test]
    fn multi_frame_run_counts_firings() {
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", test_source_def(3, 2), Dim2::new(3, 2), 10.0);
        let k = b.add("Double", doubler_def());
        let (sdef, _store) = collector_def();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", k, "in");
        b.connect(k, "out", snk, "in");
        let g = b.build().unwrap();
        let mut ex = FunctionalExecutor::new(&g).unwrap();
        ex.run_frames(3).unwrap();
        let prog = ex.program();
        let k = prog.find("Double").unwrap();
        // 18 data firings + 6 EOL forwards + 3 EOF forwards
        assert_eq!(prog.nodes[k].firings, 18 + 9);
    }
}
