//! Shared runtime machinery: node instances, method trigger matching, and
//! automatic control-token forwarding (§II-C of the paper).
//!
//! Both the untimed functional executor and the timing-accurate simulator
//! drive the same [`Program`] structure, so functional results are identical
//! between the two by construction.
//!
//! All name resolution happens once, at [`Program::instantiate`]: every
//! method's trigger inputs, outputs, and cost are compiled into index
//! tables ([`CompiledMethod`]), so the per-firing hot path — planning,
//! consuming, firing, routing — touches no strings and, in steady state,
//! performs no allocation (consume/emit buffers are recycled per node).

use bp_core::graph::AppGraph;
use bp_core::item::Item;
use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelSpec, NodeRole};
use bp_core::method::TriggerOn;
use bp_core::token::{ControlToken, TokenKind};
use bp_core::{BpError, Result};
use std::collections::VecDeque;

/// What a node can do next, given its input queue heads. Actions are plain
/// indices into the node's compiled method table, so planning allocates
/// nothing and actions are freely copyable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Fire a registered method, consuming one item from each trigger input
    /// (the ports are in the method's [`CompiledMethod::triggers`]).
    Fire {
        /// Method index into the node's method/compiled tables.
        method: usize,
    },
    /// Pass an unhandled control token through: consume it from every input
    /// of a data method's trigger group and re-emit it once, in order, on
    /// the method's outputs (§II-C).
    Forward {
        /// The token being forwarded.
        token: ControlToken,
        /// The data method whose trigger group forwards the token.
        method: usize,
    },
}

/// A method's firing plan with every port name resolved to an index,
/// computed once at instantiation.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    /// `(input port index, trigger condition)` per trigger.
    pub triggers: Vec<(usize, TriggerOn)>,
    /// Output port indices, in declaration order.
    pub outputs: Vec<usize>,
    /// Declared cycle cost.
    pub cost_cycles: u64,
    /// True for data methods (every trigger fires on data).
    pub is_data: bool,
    /// Token kinds some method of this kernel handles on one of this
    /// method's trigger inputs — these suppress automatic forwarding.
    pub handled_tokens: Vec<TokenKind>,
}

fn compile_methods(spec: &KernelSpec) -> Vec<CompiledMethod> {
    spec.methods
        .iter()
        .map(|m| {
            let triggers: Vec<(usize, TriggerOn)> = m
                .triggers
                .iter()
                .map(|t| {
                    (
                        spec.input_index(&t.input).expect("validated trigger input"),
                        t.on,
                    )
                })
                .collect();
            let outputs: Vec<usize> = m
                .outputs
                .iter()
                .filter_map(|o| spec.output_index(o))
                .collect();
            let ins: Vec<usize> = triggers.iter().map(|&(p, _)| p).collect();
            let mut handled_tokens = Vec::new();
            for h in &spec.methods {
                for t in &h.triggers {
                    if let TriggerOn::Token(kind) = t.on {
                        if ins.contains(&spec.input_index(&t.input).expect("validated input"))
                            && !handled_tokens.contains(&kind)
                        {
                            handled_tokens.push(kind);
                        }
                    }
                }
            }
            CompiledMethod {
                triggers,
                outputs,
                cost_cycles: m.cost.cycles,
                is_data: m.is_data_method(),
                handled_tokens,
            }
        })
        .collect()
}

/// A kernel instance at run time: spec, private behavior state, and one FIFO
/// queue per input port.
pub struct RtNode {
    /// Instance name (for diagnostics).
    pub name: String,
    /// Static spec (cloned from the graph node).
    pub spec: KernelSpec,
    /// Index-resolved firing plans, one per method.
    pub compiled: Vec<CompiledMethod>,
    /// Executable state.
    pub behavior: Box<dyn KernelBehavior>,
    /// One queue per input port.
    pub queues: Vec<VecDeque<Item>>,
    /// Total firings, for reports.
    pub firings: u64,
    /// Recycled consume buffer (steady-state firing allocates nothing).
    consumed_buf: Vec<(usize, Item)>,
    /// Recycled emit buffer, handed back by the routing code.
    out_buf: Vec<(usize, Item)>,
}

impl RtNode {
    fn new(name: String, spec: KernelSpec, behavior: Box<dyn KernelBehavior>) -> Self {
        let compiled = compile_methods(&spec);
        let queues = vec![VecDeque::new(); spec.inputs.len()];
        Self {
            name,
            spec,
            compiled,
            behavior,
            queues,
            firings: 0,
            consumed_buf: Vec::new(),
            out_buf: Vec::new(),
        }
    }

    #[inline]
    fn matches(&self, port: usize, on: TriggerOn) -> bool {
        match self.queues[port].front() {
            None => false,
            Some(Item::Window(_)) => on == TriggerOn::Data,
            Some(Item::Control(t)) => on == TriggerOn::Token(t.kind()),
        }
    }

    /// Decide the next action for this node, or `None` if it cannot progress.
    ///
    /// Methods are tried in registration order; automatic token forwarding is
    /// considered only when no method fires. A token is forwarded for a data
    /// method's trigger group when the *same* token kind is at the head of
    /// every input in the group and no method of the kernel handles that
    /// token on any of those inputs — this implements both the single-input
    /// pass-through and the "same control token must arrive on both inputs"
    /// rule for multi-input kernels.
    pub fn plan(&self) -> Option<Action> {
        for (mi, cm) in self.compiled.iter().enumerate() {
            if cm.triggers.is_empty() {
                continue; // source method; fired externally
            }
            let all = cm.triggers.iter().all(|&(p, on)| self.matches(p, on));
            if all && self.behavior.ready(&self.spec.methods[mi].name) {
                return Some(Action::Fire { method: mi });
            }
        }
        // Token forwarding over data-method trigger groups.
        for (mi, cm) in self.compiled.iter().enumerate() {
            if !cm.is_data {
                continue;
            }
            let mut token: Option<ControlToken> = None;
            let mut all_tokens = true;
            for &(i, _) in &cm.triggers {
                match self.queues[i].front() {
                    Some(Item::Control(t)) => match token {
                        None => token = Some(*t),
                        Some(prev) if prev == *t => {}
                        Some(_) => {
                            all_tokens = false;
                            break;
                        }
                    },
                    _ => {
                        all_tokens = false;
                        break;
                    }
                }
            }
            let Some(tok) = token else { continue };
            if !all_tokens {
                continue;
            }
            // Suppress forwarding when any method handles this token on any
            // input of the group (it will fire via the rules above once its
            // own triggers align).
            if cm.handled_tokens.contains(&tok.kind()) {
                continue;
            }
            return Some(Action::Forward {
                token: tok,
                method: mi,
            });
        }
        None
    }

    /// Execute an action, returning the emitted `(output port, item)` pairs.
    pub fn execute(&mut self, action: Action) -> Vec<(usize, Item)> {
        self.execute_with_cost(action).0
    }

    /// Execute an action, returning the emitted items plus the behavior's
    /// reported actual cycle count (for data-dependent-cost kernels; `None`
    /// means the declared method cost applies). The returned vector is the
    /// node's recycled emit buffer — hand it back via
    /// [`recycle_out_buf`](Self::recycle_out_buf) after routing.
    pub fn execute_with_cost(&mut self, action: Action) -> (Vec<(usize, Item)>, Option<u64>) {
        self.firings += 1;
        match action {
            Action::Fire { method } => {
                let mut consumed = std::mem::take(&mut self.consumed_buf);
                let out_storage = std::mem::take(&mut self.out_buf);
                consumed.clear();
                {
                    let RtNode {
                        compiled, queues, ..
                    } = self;
                    for &(p, _) in &compiled[method].triggers {
                        consumed
                            .push((p, queues[p].pop_front().expect("planned input disappeared")));
                    }
                }
                let RtNode {
                    ref spec,
                    ref mut behavior,
                    ..
                } = *self;
                let mname: &str = &spec.methods[method].name;
                let data = FireData::new(spec, &consumed);
                let mut out = Emitter::with_buffer(spec, out_storage);
                behavior.fire(mname, &data, &mut out);
                let parts = out.into_parts();
                consumed.clear();
                self.consumed_buf = consumed;
                parts
            }
            Action::Forward { token, method } => {
                {
                    let RtNode {
                        compiled, queues, ..
                    } = self;
                    for &(p, _) in &compiled[method].triggers {
                        let it = queues[p].pop_front().expect("planned token disappeared");
                        debug_assert!(matches!(it, Item::Control(t) if t == token));
                    }
                }
                let mut out = std::mem::take(&mut self.out_buf);
                out.clear();
                out.extend(
                    self.compiled[method]
                        .outputs
                        .iter()
                        .map(|&o| (o, Item::Control(token))),
                );
                (out, None)
            }
        }
    }

    /// Fire a trigger-less (source/const/init) method, returning the emitted
    /// items in the node's recycled emit buffer.
    pub fn fire_untriggered(&mut self, method: usize) -> Vec<(usize, Item)> {
        self.firings += 1;
        let out_storage = std::mem::take(&mut self.out_buf);
        let RtNode {
            ref spec,
            ref mut behavior,
            ..
        } = *self;
        let mname: &str = &spec.methods[method].name;
        let consumed: [(usize, Item); 0] = [];
        let data = FireData::new(spec, &consumed);
        let mut out = Emitter::with_buffer(spec, out_storage);
        behavior.fire(mname, &data, &mut out);
        out.into_items()
    }

    /// [`fire_untriggered`](Self::fire_untriggered) through the behavior's
    /// index-dispatched fast path (compiled backend), falling back to the
    /// name dispatch when the kernel has none.
    pub(crate) fn fire_untriggered_fast(&mut self, method: usize) -> Vec<(usize, Item)> {
        self.firings += 1;
        let out_storage = std::mem::take(&mut self.out_buf);
        let RtNode {
            ref spec,
            ref mut behavior,
            ..
        } = *self;
        let consumed: [(usize, Item); 0] = [];
        let data = FireData::new(spec, &consumed);
        let mut out = Emitter::with_buffer(spec, out_storage);
        if !behavior.fire_fast(method, &data, &mut out) {
            behavior.fire(&spec.methods[method].name, &data, &mut out);
        }
        out.into_items()
    }

    /// Run a direct-threaded fire routine (compiled backend) against this
    /// node's queues, behavior, and recycled buffers. The returned vector
    /// is the node's emit buffer — hand it back via
    /// [`recycle_out_buf`](Self::recycle_out_buf) after routing, exactly
    /// like [`execute_with_cost`](Self::execute_with_cost).
    pub(crate) fn fire_threaded(
        &mut self,
        fire: &bp_codegen::FireFn,
    ) -> (Vec<(usize, Item)>, bp_codegen::FireResult) {
        self.firings += 1;
        let mut consumed = std::mem::take(&mut self.consumed_buf);
        let mut emitted = std::mem::take(&mut self.out_buf);
        let res = fire(&mut bp_codegen::FireArgs {
            spec: &self.spec,
            queues: &mut self.queues,
            behavior: self.behavior.as_mut(),
            consumed: &mut consumed,
            emitted: &mut emitted,
        });
        self.consumed_buf = consumed;
        (emitted, res)
    }

    /// Direct-threaded token forward (compiled backend): pop the trigger
    /// group's tokens and emit the token on every output — the lowered
    /// equivalent of [`Action::Forward`] under
    /// [`execute_with_cost`](Self::execute_with_cost).
    pub(crate) fn forward_threaded(
        &mut self,
        tm: &bp_codegen::ThreadedMethod,
        token: ControlToken,
    ) -> Vec<(usize, Item)> {
        self.firings += 1;
        for &p in &tm.trigger_ports {
            let popped = self.queues[p]
                .pop_front()
                .expect("planned token disappeared");
            debug_assert!(matches!(popped, Item::Control(t) if t == token));
            drop(popped);
        }
        let mut out = std::mem::take(&mut self.out_buf);
        out.clear();
        out.extend(tm.outputs.iter().map(|&o| (o, Item::Control(token))));
        out
    }

    /// Return a drained emit buffer to this node for reuse by its next
    /// firing.
    pub fn recycle_out_buf(&mut self, mut buf: Vec<(usize, Item)>) {
        buf.clear();
        if buf.capacity() > self.out_buf.capacity() {
            self.out_buf = buf;
        }
    }

    /// Total items currently queued on this node's inputs.
    pub fn queued_items(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Per-source runtime info: how the scheduler paces its firings.
#[derive(Clone, Copy, Debug)]
pub struct SourceRt {
    /// Node index in [`Program::nodes`].
    pub node: usize,
    /// Index of the source method to fire.
    pub method: usize,
    /// Frame dimensions (pixels are emitted one per firing).
    pub frame: bp_core::Dim2,
    /// Frames per second.
    pub rate_hz: f64,
}

/// The read-only half of an instantiated program: routing tables and
/// source/const pacing info. Splitting this from the mutable node instances
/// (see [`Program::split`]) lets the sharded timed simulator share one
/// `ProgramTables` across worker threads while each worker mutably owns a
/// disjoint subset of the [`RtNode`]s.
pub struct ProgramTables {
    /// `routes[node][out_port]` → destinations `(node, in_port)`.
    pub routes: Vec<Vec<Vec<(usize, usize)>>>,
    /// Application inputs (role `Source`), paced per their rate.
    pub sources: Vec<SourceRt>,
    /// Constant providers (role `Const`) and feedback primers, fired once
    /// at startup in node order.
    pub consts: Vec<(usize, usize)>,
}

/// An executable instantiation of an [`AppGraph`].
pub struct Program {
    /// Node instances, indexed like the graph's nodes.
    pub nodes: Vec<RtNode>,
    /// `routes[node][out_port]` → destinations `(node, in_port)`.
    pub routes: Vec<Vec<Vec<(usize, usize)>>>,
    /// Application inputs (role `Source`), paced per their rate.
    pub sources: Vec<SourceRt>,
    /// Constant providers (role `Const`), fired once at startup.
    pub consts: Vec<(usize, usize)>,
}

impl Program {
    /// Instantiate a validated graph: create behaviors, compile method
    /// tables, and build routing tables.
    pub fn instantiate(graph: &AppGraph) -> Result<Self> {
        graph.validate()?;
        let mut nodes = Vec::with_capacity(graph.node_count());
        let mut routes = Vec::with_capacity(graph.node_count());
        for (_, n) in graph.nodes() {
            let spec = n.spec().clone();
            routes.push(vec![Vec::new(); spec.outputs.len()]);
            nodes.push(RtNode::new(n.name.clone(), spec, (n.def.factory)()));
        }
        for (_, c) in graph.channels() {
            routes[c.src.node.0][c.src.port].push((c.dst.node.0, c.dst.port));
        }
        let mut sources = Vec::new();
        let mut consts = Vec::new();
        for (id, n) in graph.nodes() {
            let spec = n.spec();
            let src_method = spec.methods.iter().position(|m| m.is_source());
            match spec.role {
                NodeRole::Source => {
                    let method = src_method.ok_or_else(|| {
                        BpError::Validation(format!(
                            "source node '{}' has no source method",
                            n.name
                        ))
                    })?;
                    let info = graph.source_info(id).ok_or_else(|| {
                        BpError::Validation(format!("source node '{}' missing info", n.name))
                    })?;
                    sources.push(SourceRt {
                        node: id.0,
                        method,
                        frame: info.frame,
                        rate_hz: info.rate_hz,
                    });
                }
                NodeRole::Const => {
                    let method = src_method.ok_or_else(|| {
                        BpError::Validation(format!("const node '{}' has no source method", n.name))
                    })?;
                    consts.push((id.0, method));
                }
                // Feedback kernels prime their loop once at startup
                // (§III-D) via their trigger-less init method.
                NodeRole::Feedback => {
                    if let Some(method) = src_method {
                        consts.push((id.0, method));
                    }
                }
                _ => {}
            }
        }
        Ok(Self {
            nodes,
            routes,
            sources,
            consts,
        })
    }

    /// Split into mutable node instances and shared read-only tables.
    pub fn split(self) -> (Vec<RtNode>, ProgramTables) {
        (
            self.nodes,
            ProgramTables {
                routes: self.routes,
                sources: self.sources,
                consts: self.consts,
            },
        )
    }

    /// Deliver emitted items to the successor queues (fan-out clones share
    /// window storage). The drained buffer is recycled to the firing node.
    pub fn route(&mut self, from: usize, mut emitted: Vec<(usize, Item)>) {
        for (port, item) in emitted.drain(..) {
            let n_dests = self.routes[from][port].len();
            match n_dests {
                0 => {} // unconnected output: items are dropped
                1 => {
                    let (dn, dp) = self.routes[from][port][0];
                    self.nodes[dn].queues[dp].push_back(item);
                }
                _ => {
                    for di in 0..n_dests {
                        let (dn, dp) = self.routes[from][port][di];
                        self.nodes[dn].queues[dp].push_back(item.clone());
                    }
                }
            }
        }
        self.nodes[from].recycle_out_buf(emitted);
    }

    /// Fire a node's externally-driven (source) method once and route the
    /// emissions.
    pub fn fire_source_method(&mut self, node: usize, method: usize) {
        let emitted = self.nodes[node].fire_untriggered(method);
        self.route(node, emitted);
    }

    /// Fire the node's next planned action if any; returns whether it fired.
    pub fn step_node(&mut self, node: usize) -> bool {
        let Some(action) = self.nodes[node].plan() else {
            return false;
        };
        let emitted = self.nodes[node].execute(action);
        self.route(node, emitted);
        true
    }

    /// Total queued items across all nodes (0 = quiescent).
    pub fn queued_items(&self) -> usize {
        self.nodes.iter().map(|n| n.queued_items()).sum()
    }

    /// Node id for a given instance name (diagnostics helper).
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Describe stuck state for deadlock diagnostics: nodes with queued
    /// input that cannot fire.
    pub fn stuck_report(&self) -> String {
        stuck_report(&self.nodes)
    }
}

/// Describe stuck state for deadlock diagnostics over a bare node slice
/// (the timed simulators hold nodes outside a [`Program`]).
pub fn stuck_report(nodes: &[RtNode]) -> String {
    let mut s = String::new();
    for n in nodes {
        if n.queued_items() > 0 && n.plan().is_none() {
            let heads: Vec<String> = n
                .queues
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let head = match q.front() {
                        None => "-".to_string(),
                        Some(Item::Window(w)) => format!("W{}", w.dim()),
                        Some(Item::Control(t)) => t.to_string(),
                    };
                    format!("{}:{} (depth {})", n.spec.inputs[i].name, head, q.len())
                })
                .collect();
            s.push_str(&format!("  node '{}': {}\n", n.name, heads.join(", ")));
        }
    }
    s
}
