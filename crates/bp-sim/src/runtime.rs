//! Shared runtime machinery: node instances, method trigger matching, and
//! automatic control-token forwarding (§II-C of the paper).
//!
//! Both the untimed functional executor and the timing-accurate simulator
//! drive the same [`Program`] structure, so functional results are identical
//! between the two by construction.

use bp_core::graph::AppGraph;
use bp_core::item::Item;
use bp_core::kernel::{Emitter, FireData, KernelBehavior, KernelSpec, NodeRole};
use bp_core::method::TriggerOn;
use bp_core::token::ControlToken;
use bp_core::{BpError, Result};
use std::collections::VecDeque;

/// What a node can do next, given its input queue heads.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Fire a registered method, consuming one item from each trigger input.
    Fire {
        /// Method index into the spec's method list.
        method: usize,
        /// Input port indices to consume from (trigger order).
        consume: Vec<usize>,
    },
    /// Pass an unhandled control token through: consume it from every input
    /// of a data method's trigger group and re-emit it once, in order, on
    /// the method's outputs (§II-C).
    Forward {
        /// The token being forwarded.
        token: ControlToken,
        /// Input port indices to consume from.
        consume: Vec<usize>,
        /// Output port indices to emit to.
        outputs: Vec<usize>,
    },
}

/// A kernel instance at run time: spec, private behavior state, and one FIFO
/// queue per input port.
pub struct RtNode {
    /// Instance name (for diagnostics).
    pub name: String,
    /// Static spec (cloned from the graph node).
    pub spec: KernelSpec,
    /// Executable state.
    pub behavior: Box<dyn KernelBehavior>,
    /// One queue per input port.
    pub queues: Vec<VecDeque<Item>>,
    /// Total firings, for reports.
    pub firings: u64,
}

impl RtNode {
    fn matches(&self, port: usize, on: TriggerOn) -> bool {
        match self.queues[port].front() {
            None => false,
            Some(Item::Window(_)) => on == TriggerOn::Data,
            Some(Item::Control(t)) => on == TriggerOn::Token(t.kind()),
        }
    }

    /// Decide the next action for this node, or `None` if it cannot progress.
    ///
    /// Methods are tried in registration order; automatic token forwarding is
    /// considered only when no method fires. A token is forwarded for a data
    /// method's trigger group when the *same* token kind is at the head of
    /// every input in the group and no method of the kernel handles that
    /// token on any of those inputs — this implements both the single-input
    /// pass-through and the "same control token must arrive on both inputs"
    /// rule for multi-input kernels.
    pub fn plan(&self) -> Option<Action> {
        for (mi, m) in self.spec.methods.iter().enumerate() {
            if m.triggers.is_empty() {
                continue; // source method; fired externally
            }
            let all = m
                .triggers
                .iter()
                .all(|t| self.matches(self.spec.input_index(&t.input).unwrap(), t.on));
            if all && self.behavior.ready(&m.name) {
                let consume = m
                    .triggers
                    .iter()
                    .map(|t| self.spec.input_index(&t.input).unwrap())
                    .collect();
                return Some(Action::Fire {
                    method: mi,
                    consume,
                });
            }
        }
        // Token forwarding over data-method trigger groups.
        for m in &self.spec.methods {
            if !m.is_data_method() {
                continue;
            }
            let ins: Vec<usize> = m
                .triggers
                .iter()
                .map(|t| self.spec.input_index(&t.input).unwrap())
                .collect();
            let mut token: Option<ControlToken> = None;
            let mut all_tokens = true;
            for &i in &ins {
                match self.queues[i].front() {
                    Some(Item::Control(t)) => match token {
                        None => token = Some(*t),
                        Some(prev) if prev == *t => {}
                        Some(_) => {
                            all_tokens = false;
                            break;
                        }
                    },
                    _ => {
                        all_tokens = false;
                        break;
                    }
                }
            }
            let Some(tok) = token else { continue };
            if !all_tokens {
                continue;
            }
            // Suppress forwarding when any method handles this token on any
            // input of the group (it will fire via the rules above once its
            // own triggers align).
            let handled = self.spec.methods.iter().any(|h| {
                h.triggers.iter().any(|t| {
                    t.on == TriggerOn::Token(tok.kind())
                        && ins.contains(&self.spec.input_index(&t.input).unwrap())
                })
            });
            if handled {
                continue;
            }
            let outputs = m
                .outputs
                .iter()
                .filter_map(|o| self.spec.output_index(o))
                .collect();
            return Some(Action::Forward {
                token: tok,
                consume: ins,
                outputs,
            });
        }
        None
    }

    /// Execute an action, returning the emitted `(output port, item)` pairs.
    pub fn execute(&mut self, action: &Action) -> Vec<(usize, Item)> {
        self.execute_with_cost(action).0
    }

    /// Execute an action, returning the emitted items plus the behavior's
    /// reported actual cycle count (for data-dependent-cost kernels; `None`
    /// means the declared method cost applies).
    pub fn execute_with_cost(&mut self, action: &Action) -> (Vec<(usize, Item)>, Option<u64>) {
        self.firings += 1;
        match action {
            Action::Fire { method, consume } => {
                let consumed: Vec<(usize, Item)> = consume
                    .iter()
                    .map(|&p| {
                        (
                            p,
                            self.queues[p]
                                .pop_front()
                                .expect("planned input disappeared"),
                        )
                    })
                    .collect();
                let mname = self.spec.methods[*method].name.clone();
                let data = FireData::new(&self.spec, &consumed);
                let mut out = Emitter::new(&self.spec);
                self.behavior.fire(&mname, &data, &mut out);
                out.into_parts()
            }
            Action::Forward {
                token,
                consume,
                outputs,
            } => {
                for &p in consume {
                    let it = self.queues[p].pop_front().expect("planned token disappeared");
                    debug_assert!(matches!(it, Item::Control(t) if t == *token));
                }
                (
                    outputs
                        .iter()
                        .map(|&o| (o, Item::Control(*token)))
                        .collect(),
                    None,
                )
            }
        }
    }

    /// Total items currently queued on this node's inputs.
    pub fn queued_items(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Per-source runtime info: how the scheduler paces its firings.
#[derive(Clone, Copy, Debug)]
pub struct SourceRt {
    /// Node index in [`Program::nodes`].
    pub node: usize,
    /// Index of the source method to fire.
    pub method: usize,
    /// Frame dimensions (pixels are emitted one per firing).
    pub frame: bp_core::Dim2,
    /// Frames per second.
    pub rate_hz: f64,
}

/// An executable instantiation of an [`AppGraph`].
pub struct Program {
    /// Node instances, indexed like the graph's nodes.
    pub nodes: Vec<RtNode>,
    /// `routes[node][out_port]` → destinations `(node, in_port)`.
    pub routes: Vec<Vec<Vec<(usize, usize)>>>,
    /// Application inputs (role `Source`), paced per their rate.
    pub sources: Vec<SourceRt>,
    /// Constant providers (role `Const`), fired once at startup.
    pub consts: Vec<(usize, usize)>,
}

impl Program {
    /// Instantiate a validated graph: create behaviors and routing tables.
    pub fn instantiate(graph: &AppGraph) -> Result<Self> {
        graph.validate()?;
        let mut nodes = Vec::with_capacity(graph.node_count());
        let mut routes = Vec::with_capacity(graph.node_count());
        for (_, n) in graph.nodes() {
            let spec = n.spec().clone();
            let queues = vec![VecDeque::new(); spec.inputs.len()];
            routes.push(vec![Vec::new(); spec.outputs.len()]);
            nodes.push(RtNode {
                name: n.name.clone(),
                spec,
                behavior: (n.def.factory)(),
                queues,
                firings: 0,
            });
        }
        for (_, c) in graph.channels() {
            routes[c.src.node.0][c.src.port].push((c.dst.node.0, c.dst.port));
        }
        let mut sources = Vec::new();
        let mut consts = Vec::new();
        for (id, n) in graph.nodes() {
            let spec = n.spec();
            let src_method = spec.methods.iter().position(|m| m.is_source());
            match spec.role {
                NodeRole::Source => {
                    let method = src_method.ok_or_else(|| {
                        BpError::Validation(format!(
                            "source node '{}' has no source method",
                            n.name
                        ))
                    })?;
                    let info = graph.source_info(id).ok_or_else(|| {
                        BpError::Validation(format!("source node '{}' missing info", n.name))
                    })?;
                    sources.push(SourceRt {
                        node: id.0,
                        method,
                        frame: info.frame,
                        rate_hz: info.rate_hz,
                    });
                }
                NodeRole::Const => {
                    let method = src_method.ok_or_else(|| {
                        BpError::Validation(format!(
                            "const node '{}' has no source method",
                            n.name
                        ))
                    })?;
                    consts.push((id.0, method));
                }
                // Feedback kernels prime their loop once at startup
                // (§III-D) via their trigger-less init method.
                NodeRole::Feedback => {
                    if let Some(method) = src_method {
                        consts.push((id.0, method));
                    }
                }
                _ => {}
            }
        }
        Ok(Self {
            nodes,
            routes,
            sources,
            consts,
        })
    }

    /// Deliver emitted items to the successor queues (fan-out duplicates).
    pub fn route(&mut self, from: usize, emitted: Vec<(usize, Item)>) {
        for (port, item) in emitted {
            let dests = &self.routes[from][port];
            match dests.len() {
                0 => {} // unconnected output: items are dropped
                1 => {
                    let (dn, dp) = dests[0];
                    self.nodes[dn].queues[dp].push_back(item);
                }
                _ => {
                    let dests = dests.clone();
                    for (dn, dp) in dests {
                        self.nodes[dn].queues[dp].push_back(item.clone());
                    }
                }
            }
        }
    }

    /// Fire a node's externally-driven (source) method once.
    pub fn fire_source_method(&mut self, node: usize, method: usize) {
        let n = &mut self.nodes[node];
        let mname = n.spec.methods[method].name.clone();
        let consumed: Vec<(usize, Item)> = Vec::new();
        let data = FireData::new(&n.spec, &consumed);
        let mut out = Emitter::new(&n.spec);
        n.behavior.fire(&mname, &data, &mut out);
        n.firings += 1;
        let emitted = out.into_items();
        self.route(node, emitted);
    }

    /// Fire the node's next planned action if any; returns whether it fired.
    pub fn step_node(&mut self, node: usize) -> bool {
        let Some(action) = self.nodes[node].plan() else {
            return false;
        };
        let emitted = self.nodes[node].execute(&action);
        self.route(node, emitted);
        true
    }

    /// Total queued items across all nodes (0 = quiescent).
    pub fn queued_items(&self) -> usize {
        self.nodes.iter().map(|n| n.queued_items()).sum()
    }

    /// Node id for a given instance name (diagnostics helper).
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Describe stuck state for deadlock diagnostics: nodes with queued
    /// input that cannot fire.
    pub fn stuck_report(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            if n.queued_items() > 0 && n.plan().is_none() {
                let heads: Vec<String> = n
                    .queues
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        let head = match q.front() {
                            None => "-".to_string(),
                            Some(Item::Window(w)) => format!("W{}", w.dim()),
                            Some(Item::Control(t)) => t.to_string(),
                        };
                        format!("{}:{} (depth {})", n.spec.inputs[i].name, head, q.len())
                    })
                    .collect();
                s.push_str(&format!("  node '{}': {}\n", n.name, heads.join(", ")));
            }
        }
        s
    }
}
