//! Chrome trace-event JSON export for [`Trace`]s, plus a dependency-free
//! JSON well-formedness checker used by tests and CI smoke steps.
//!
//! The exporter emits the subset of the Trace Event Format that Perfetto
//! (`https://ui.perfetto.dev`) and `chrome://tracing` render natively:
//!
//! - PE lanes as *duration* events (`"B"`/`"E"`): one track per PE under
//!   the `PEs` process, one slice per firing, with method name and charged
//!   cycles in `args`;
//! - channel occupancy as *counter* events (`"C"`) under the `channels`
//!   process, one counter per `Node.port` input queue;
//! - in-flight items on delayed channels (nonzero comm model) as counter
//!   events under the `network` process, one counter per channel, stepped
//!   up at each send and down at each arrival;
//! - control-token arrivals and stall transitions as *instant* events
//!   (`"i"`), tokens on the destination node's PE lane and stalls on the
//!   stalled PE's lane.
//!
//! Timestamps are microseconds of simulated time (the format's native
//! unit), written with fixed precision so output is deterministic. The
//! JSON is assembled with the same `writeln!`-into-`String` style the
//! `bench_json` harness uses — no serializer dependency.

use crate::trace::{Trace, TraceEvent};
use std::fmt::Write as _;

/// Seconds of simulated time to microseconds, fixed precision (picosecond
/// resolution — far below one PE cycle on any plausible clock).
fn us(t: f64) -> String {
    format!("{:.6}", t * 1e6)
}

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `trace` as a Chrome trace-event JSON document.
///
/// Load the result in Perfetto or `chrome://tracing`; see EXPERIMENTS.md
/// for a walkthrough on `camera_bank`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let meta = &trace.meta;
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut events: Vec<String> = Vec::new();

    // Process/thread naming metadata: PEs are threads of process 0,
    // channel counters live under process 1.
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"PEs\"}}"
            .to_string(),
    );
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"channels\"}}"
            .to_string(),
    );
    if trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::CommSend { .. }))
    {
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"network\"}}"
                .to_string(),
        );
    }
    for pe in 0..meta.num_pes {
        let residents: Vec<&str> = meta
            .pe_of_node
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == pe)
            .map(|(n, _)| meta.node_names[n].as_str())
            .collect();
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\
             \"args\":{{\"name\":\"PE {pe} [{}]\"}}}}",
            esc(&residents.join(","))
        ));
    }

    let channel = |node: u32, port: u32| {
        format!(
            "{}.{}",
            esc(&meta.node_names[node as usize]),
            esc(&meta.input_ports[node as usize][port as usize])
        )
    };
    // Per-channel in-flight occupancy, stepped while scanning (the event
    // stream is in global time order).
    let wire_name = |chan: u32| {
        let c = &meta.channels[chan as usize];
        format!(
            "{} -> {}",
            esc(&meta.node_names[c.src_node as usize]),
            channel(c.dst_node, c.dst_port)
        )
    };
    let mut in_flight = vec![0i64; meta.channels.len()];
    for e in &trace.events {
        match *e {
            TraceEvent::FiringBegin {
                t,
                node,
                method,
                pe,
                cycles,
            } => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"firing\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":0,\"tid\":{pe},\"args\":{{\"method\":\"{}\",\"cycles\":{cycles}}}}}",
                esc(&meta.node_names[node as usize]),
                us(t),
                esc(&meta.methods[node as usize][method as usize]),
            )),
            TraceEvent::FiringEnd { t, node, pe } => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"firing\",\"ph\":\"E\",\"ts\":{},\
                 \"pid\":0,\"tid\":{pe}}}",
                esc(&meta.node_names[node as usize]),
                us(t),
            )),
            TraceEvent::QueueDepth {
                t,
                node,
                port,
                depth,
            } => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"queue\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":1,\"tid\":0,\"args\":{{\"depth\":{depth}}}}}",
                channel(node, port),
                us(t),
            )),
            TraceEvent::Token {
                t,
                node,
                port,
                token,
            } => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"token\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"channel\":\"{}\"}}}}",
                esc(&token.to_string()),
                us(t),
                meta.pe_of_node[node as usize],
                channel(node, port),
            )),
            TraceEvent::Stall { t, pe, cause } => events.push(format!(
                "{{\"name\":\"stall:{}\",\"cat\":\"stall\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":0,\"tid\":{pe},\"s\":\"t\"}}",
                cause.name(),
                us(t),
            )),
            TraceEvent::CommSend { t, chan, words, .. } => {
                in_flight[chan as usize] += 1;
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"network\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":2,\"tid\":0,\"args\":{{\"in_flight\":{},\"words\":{words}}}}}",
                    wire_name(chan),
                    us(t),
                    in_flight[chan as usize],
                ));
            }
            TraceEvent::CommArrival { t, chan } => {
                in_flight[chan as usize] -= 1;
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"network\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":2,\"tid\":0,\"args\":{{\"in_flight\":{}}}}}",
                    wire_name(chan),
                    us(t),
                    in_flight[chan as usize],
                ));
            }
        }
    }

    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 < events.len() { "," } else { "" };
        let _ = writeln!(out, "    {e}{sep}");
    }
    let _ = writeln!(
        out,
        "  ],\n  \"otherData\": {{\"dropped_events\": {}, \"pe_clock_hz\": {:.1}}}\n}}",
        trace.dropped, meta.pe_clock_hz
    );
    out
}

/// Check that `src` is one well-formed JSON value (with nothing but
/// whitespace after it). Returns the byte offset and a message on the
/// first error. This is a structural validator only — it does not build a
/// document — and exists so CI can verify exported traces without any
/// JSON dependency.
pub fn validate_json(src: &str) -> std::result::Result<(), String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> std::result::Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> std::result::Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> std::result::Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("expected 4 hex digits")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> std::result::Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> std::result::Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_wellformed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a": [1, 2, {"b": "x\ny", "c": true}], "d": null}"#,
            "  { \"ts\": 0.125 }  ",
            r#""é""#,
        ] {
            assert!(validate_json(ok).is_ok(), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "{\"a\": }",
            "[1 2]",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted invalid JSON: {bad}");
        }
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert!(validate_json(&format!("\"{}\"", esc("quote\" back\\ nl\n"))).is_ok());
    }
}
